"""Setuptools shim so legacy editable installs work in offline environments.

``pip install -e . --no-build-isolation --no-use-pep517`` (or
``python setup.py develop``) works without network access or the ``wheel``
package; the project metadata itself lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
