"""Packaging metadata for the CogSys reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console
script (the experiment CLI, also reachable as ``python -m repro``).
``pip install -e . --no-build-isolation`` works without network access or
the ``wheel`` package in offline environments.
"""

from pathlib import Path

from setuptools import find_packages, setup

_VERSION = {}
exec((Path(__file__).parent / "src" / "repro" / "_version.py").read_text(), _VERSION)

setup(
    name="cogsys-repro",
    version=_VERSION["__version__"],
    description=(
        "Reproduction of CogSys: efficient and scalable neurosymbolic "
        "cognition via algorithm-hardware co-design (HPCA 2025)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").is_file()
    else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
            "hypothesis>=6",
        ],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
