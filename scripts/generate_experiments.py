"""Regenerate EXPERIMENTS.md: paper-reported vs measured results.

Run with ``python scripts/generate_experiments.py`` (takes a couple of
minutes).  Every table/figure of the paper's evaluation is regenerated via
``repro.evaluation.experiments`` and written next to the number the paper
reports, so the document always reflects the current state of the models.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation import experiments as E  # noqa: E402
from repro.evaluation.reporting import format_markdown_table  # noqa: E402


def table(rows) -> str:
    if isinstance(rows, dict):
        rows = [rows]
    headers = list(rows[0].keys())
    return format_markdown_table(headers, [[row[h] for h in headers] for row in rows])


def main() -> None:
    sections: list[str] = []
    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Every table and figure of the CogSys evaluation, regenerated with this\n"
        "repository's models (`python scripts/generate_experiments.py`).  Absolute\n"
        "numbers are not expected to match silicon/GPU measurements — the\n"
        "hardware side is an analytical/cycle-level model and the workloads are\n"
        "synthetic (see DESIGN.md) — but the *shape* (who wins, by roughly what\n"
        "factor, where crossovers fall) is the reproduction target and is asserted\n"
        "by the harnesses under `benchmarks/`.\n"
    )

    sections.append("## Fig. 4a/b — runtime breakdown across devices\n"
                    "Paper: symbolic stage dominates runtime (up to ~87 % for NVSA on GPU); "
                    "no device reaches real-time.\n\n" + table(E.characterization_runtime()))
    sections.append("## Fig. 4c — task-size scalability (NVSA)\n"
                    "Paper: total runtime grows ~5x from 2x2 to 3x3 while the symbolic share stays stable "
                    "(91.6 % -> 87.4 %). Measured growth is milder because the workload model scales with "
                    "panel count only, but the share stays stable.\n\n" + table(E.characterization_scaling()))
    sections.append("## Fig. 4d — memory footprint\n"
                    "Paper: 10.8-48.2 MB per workload, dominated by weights plus symbolic codebooks.\n\n"
                    + table(E.characterization_memory()))
    sections.append("## Fig. 5 — roofline placement (RTX 2080Ti)\n"
                    "Paper: neural kernels are compute-bound, symbolic kernels memory-bound.\n\n"
                    + table(E.characterization_roofline()))
    sections.append("## Fig. 6 — symbolic operation breakdown (NVSA)\n"
                    "Paper: circular convolution + vector-vector multiplication account for ~80 % of "
                    "symbolic runtime.\n\n" + table([E.symbolic_breakdown()]))
    sections.append("## Tab. II — kernel-level inefficiency profile\n"
                    "Published measurements (reproduced as reference data and used to calibrate the "
                    "device models).\n\n"
                    + table([{"kernel": k, **v} for k, v in E.kernel_profile().items()]))
    sections.append("## Fig. 8 — factorization efficiency\n"
                    "Paper: 13,560 KB -> 190 KB (71.4x) codebook memory, 11.7 s -> 2.88 s (4.1x) runtime.\n\n"
                    + table([E.factorization_efficiency()]))
    sections.append("## Tab. III — algorithm optimization impact\n"
                    "Paper: factorization and stochasticity increase accuracy and reduce latency/memory; "
                    "quantization trades a little accuracy for 4x memory.\n\n"
                    + table(E.optimization_impact(num_tasks=8)))
    sections.append("## Tab. IV — accelerator comparison (per circular convolution)\n"
                    "Paper: CogSys is the only design with O(d) footprint and column-wise parallelism.\n\n"
                    + table(E.accelerator_comparison()))
    sections.append("## Tab. V — reconfigurable vs heterogeneous PEs\n"
                    "Paper: heterogeneous PEs cost 1.96x area (same latency) or 2x latency (same area) "
                    "and halve utilization.\n\n" + table(E.pe_design_choice()))
    sections.append("## Fig. 11 — bubble-streaming dataflow\n"
                    "Paper: 3 circular convolutions of d=3 finish in 8 cycles on CogSys vs 24 on a "
                    "TPU-like cell; BS dataflow is compute-bound, GEMV lowering memory-bound.\n\n"
                    + table([E.bs_dataflow_comparison()]) + "\n\n" + table(E.bs_roofline()))
    sections.append("## Fig. 12 — spatial/temporal mapping\n"
                    "Paper: temporal mapping chosen for NVSA (k=210) and LVRF (k=2575) at d=1024; spatial "
                    "mapping reduces bandwidth by N/2.\n\n" + table(E.st_mapping_tradeoff()))
    sections.append("## Tab. VII — factorization accuracy\n"
                    "Paper: ~95.4 % average across constellations, ~93.5 % across rules.\n\n"
                    + table(E.factorization_accuracy_by_constellation(tasks_per_constellation=3))
                    + "\n\n" + table(E.factorization_accuracy_by_rule(tasks_per_rule=3)))
    sections.append("## Tab. VIII — reasoning accuracy\n"
                    "Paper: RAVEN 98.7 %, I-RAVEN 99.0 %, PGM 68.6 % with factorization+stochasticity; "
                    "parameters 38 MB -> 32 MB -> 8 MB.\n\n" + table(E.reasoning_accuracy(tasks_per_dataset=10)))
    sections.append("## Tab. IX / Fig. 14 — precision, area, power\n"
                    "Paper: FP8 array 9.9 mm^2 / 1.24 W, INT8 3.8 mm^2 / 1.10 W, 4.8 % reconfigurability "
                    "overhead at FP8; accelerator 4.0 mm^2, 1.48 W.\n\n" + table(E.precision_impact(num_tasks=8)))
    sections.append("## Fig. 15 — end-to-end runtime vs CPU/GPU/edge SoCs\n"
                    "Paper: ~90.8x / 56.8x / 15.9x / 4.6x over TX2 / NX / Xeon / RTX; CogSys <0.3 s per task.\n\n"
                    + table(E.end_to_end_speedups()))
    sections.append("## Fig. 16 — energy efficiency\n"
                    "Paper: ~0.44 J per task on CogSys; two to three orders of magnitude better "
                    "performance per watt than CPU/GPU.\n\n" + table(E.energy_efficiency()))
    sections.append("## Fig. 17 — circular convolution speedup sweep\n"
                    "Paper: up to 75.96x over a TPU-like array and 18.9x over the GPU, growing with "
                    "vector dimension and batch size.\n\n" + table(E.circconv_speedup_sweep()))
    sections.append("## Fig. 18 — comparison with ML accelerators\n"
                    "Paper: comparable neural performance, 13.6-127.5x faster symbolic execution, "
                    "1.7-3.7x end-to-end over TPU/MTIA/Gemmini-like designs (NVSA/LVRF/MIMONet).\n\n"
                    + table(E.ml_accelerator_comparison()))
    sections.append("## Fig. 19 — hardware technique ablation\n"
                    "Paper: adSCH trims runtime by 28 %; with the scalable array and nsPE the reduction "
                    "reaches 61 % and 71 % (normalized runtime ~0.29 for the full design).\n\n"
                    + table(E.hardware_ablation()))
    sections.append("## Tab. X — co-design ablation\n"
                    "Paper: CogSys algorithm on Xavier NX keeps ~89.5 % of the NVSA runtime; algorithm + "
                    "accelerator reduces it to ~1.76 %.\n\n" + table(E.codesign_ablation()))
    sections.append("## Dataset accuracy overview (supports Fig. 15/16 claims)\n\n"
                    + table(E.task_accuracy_overview(tasks_per_dataset=10)))

    output = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    output.write_text("\n\n".join(sections) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
