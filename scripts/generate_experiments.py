"""Regenerate EXPERIMENTS.md: paper-reported vs measured results.

Legacy wrapper kept for muscle memory — the document is now produced by the
experiment registry through ``repro report`` (or ``python -m repro report``).
Run with ``python scripts/generate_experiments.py``; results are served from
the on-disk cache when the code has not changed, so repeated runs are fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["report", "--output", str(_ROOT / "EXPERIMENTS.md")]))
