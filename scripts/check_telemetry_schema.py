#!/usr/bin/env python
"""Validate an exported telemetry JSONL file against the frozen schema.

CI exports telemetry from a smoke run and pipes the file through this
check, so any drift in the export schema — a renamed field, a reordered
header, a row that stops conserving counts — fails the build instead of
silently breaking downstream consumers.

Checks, in order:

* the header carries the expected format tag / version and its
  ``fields`` list equals :data:`repro.serving.telemetry.TELEMETRY_FIELDS`
  exactly (names *and* order),
* every row's keys equal the frozen field list, window indices are
  consecutive and window geometry matches ``window_s``,
* per-chip columns (``queue_depth``, ``inflight``) have ``num_chips``
  entries everywhere,
* the header totals are conserved: ``sum(arrivals) == requests``,
  ``sum(completions) == completed`` and ``num_windows`` matches the
  row count.

Usage::

    python scripts/check_telemetry_schema.py telemetry.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving.exporters import TELEMETRY_FORMAT  # noqa: E402
from repro.serving.telemetry import TELEMETRY_FIELDS  # noqa: E402


def _fail(message: str) -> None:
    raise SystemExit(f"telemetry schema check failed: {message}")


def check_file(path: Path) -> dict:
    """Validate one export; returns the parsed header on success."""
    lines = path.read_text().splitlines()
    if not lines:
        _fail(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("format") != TELEMETRY_FORMAT:
        _fail(f"bad format tag {header.get('format')!r}")
    if header.get("version") != 1:
        _fail(f"unknown version {header.get('version')!r}")
    if header.get("fields") != list(TELEMETRY_FIELDS):
        _fail(
            "header fields drifted from TELEMETRY_FIELDS:\n"
            f"  header: {header.get('fields')}\n"
            f"  frozen: {list(TELEMETRY_FIELDS)}"
        )
    rows = [json.loads(line) for line in lines[1:]]
    if len(rows) != header["num_windows"]:
        _fail(
            f"header says {header['num_windows']} windows, "
            f"file has {len(rows)} rows"
        )
    if not rows:
        _fail("export contains no window rows")
    num_chips = header["num_chips"]
    window_s = header["window_s"]
    first = rows[0]["window"]
    for offset, row in enumerate(rows):
        if list(row) != list(TELEMETRY_FIELDS):
            _fail(f"row {offset} keys drifted: {list(row)}")
        if row["window"] != first + offset:
            _fail(
                f"window indices not consecutive at row {offset}: "
                f"{row['window']} != {first + offset}"
            )
        if abs(row["end_s"] - row["start_s"] - window_s) > 1e-9:
            _fail(f"row {offset} geometry != window_s={window_s}")
        for column in ("queue_depth", "inflight"):
            if len(row[column]) != num_chips:
                _fail(
                    f"row {offset} {column} has {len(row[column])} entries "
                    f"for {num_chips} chips"
                )
    arrivals = sum(row["arrivals"] for row in rows)
    completions = sum(row["completions"] for row in rows)
    if arrivals != header["requests"]:
        _fail(f"sum(arrivals)={arrivals} != header requests={header['requests']}")
    if completions != header["completed"]:
        _fail(
            f"sum(completions)={completions} != "
            f"header completed={header['completed']}"
        )
    return header


def main(argv=None) -> int:
    """CLI entry: validate every file named on the command line."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path)
    args = parser.parse_args(argv)
    for path in args.files:
        header = check_file(path)
        print(
            f"{path}: ok — {header['num_windows']} windows, "
            f"{header['requests']} requests, "
            f"{header['num_chips']} chips, window {header['window_s']:g}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
