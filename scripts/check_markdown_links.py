#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (stdlib only).

Validates every ``[text](target)`` link in the given markdown files:

* relative file targets must exist (checked from the linking file's
  directory, with any ``#fragment`` stripped),
* in-document anchors (``#section``) must match a heading of the linked
  file (GitHub-style slugs: lowercased, punctuation dropped, spaces to
  hyphens),
* ``http(s)``/``mailto`` targets are skipped — CI must not depend on
  network reachability.

Only inline ``[text](target)`` links are checked; reference-style
(``[text][ref]``) links are not used in this repo's docs and are ignored.

Usage: ``python scripts/check_markdown_links.py README.md ARCHITECTURE.md``
Exits non-zero listing every broken link.  Used by the CI ``docs`` job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — ignores images' leading '!' (the target rule is the same)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: fenced code blocks, removed before link extraction
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (sufficient for ASCII docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """Every heading anchor a markdown file exposes.

    Replicates GitHub's duplicate handling: repeated headings get ``-1``,
    ``-2``, ... suffixes in document order, so anchors to any occurrence
    validate.
    """
    content = _FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    for match in _HEADING.finditer(content):
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(path: Path) -> list[str]:
    """All broken-link messages of one markdown file."""
    errors = []
    content = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        linked = (path.parent / file_part).resolve() if file_part else path
        if file_part and not linked.exists():
            errors.append(f"{path}: broken link target '{target}'")
            continue
        if fragment:
            if linked.suffix.lower() not in (".md", ""):
                continue
            if linked.is_file() and fragment not in heading_slugs(linked):
                errors.append(f"{path}: missing anchor '#{fragment}' in {linked.name}")
    return errors


def main(argv: list[str]) -> int:
    """Check every file given on the command line; report all failures."""
    if not argv:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors = []
    for name in argv:
        path = Path(name)
        if not path.is_file():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
