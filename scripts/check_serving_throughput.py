#!/usr/bin/env python
"""Gate the serving event core's throughput against its recorded baseline.

Runs the :data:`repro.serving.benchmark.THROUGHPUT_SUITE` and compares the
live numbers with ``benchmarks/BENCH_serving.json``:

* **Regression gate** (the CI purpose): every case must reach at least
  ``1 - tolerance`` (default 25 %) of its recorded post-refactor
  throughput, after scaling the recording by the live/recorded
  calibration ratio so machine speed differences cancel out.
* **Speedup floor**: the geometric-mean speedup over the recorded
  *legacy* (pre-refactor) numbers must stay at or above ``--min-speedup``
  (default 7x) — raised from the PR 5 bar of 5x after the sharded-core
  work pushed the measured geomean to ~8.8x.
* **Sharded gate**: every ``SHARDED_SUITE`` case (deep saturation on an
  8-chip round-robin fleet) must reach its calibration-scaled recorded
  sharded throughput and beat its own live single-shard run by
  ``--min-shard-speedup`` (default 1.3x) — a machine-independent check
  that component sharding keeps paying for itself.
* **Coupled gate**: every ``COUPLED_SUITE`` case (deep saturation on
  jsq fleets, which cannot shard) must reach its calibration-scaled
  recorded ``coupled`` throughput, and the geometric-mean speedup over
  the frozen ``coupled_baseline`` section (the pre-water-fill scalar
  JSQ path) must stay at or above ``--min-coupled-speedup``
  (default 3x).

Usage::

    python scripts/check_serving_throughput.py            # gate (CI)
    python scripts/check_serving_throughput.py --record   # refresh baseline

``--record`` re-measures and rewrites the ``current``, ``sharded`` and
``coupled`` sections (the ``legacy`` and ``coupled_baseline`` sections
are frozen captures of commits 07b27c3 / aab4ba7 and are never touched).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving.benchmark import (  # noqa: E402  (path bootstrap above)
    calibration_ops_per_s,
    geometric_mean,
    measure_coupled_suite,
    measure_sharded_suite,
    measure_suite,
)

BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_serving.json"


def _load_baseline() -> dict:
    try:
        return json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        raise SystemExit(
            f"missing {BASELINE_PATH}; record one with --record"
        ) from None


def _record(baseline: dict, repeats: int) -> int:
    calibration = calibration_ops_per_s()
    rows = measure_suite(repeats=repeats)
    baseline["current"] = {
        "calibration_ops_per_s": round(calibration, 1),
        "cases": {row["label"]: row for row in rows},
    }
    sharded_rows = measure_sharded_suite(repeats=repeats)
    baseline["sharded"] = {
        "calibration_ops_per_s": round(calibration, 1),
        "cases": {row["label"]: row for row in sharded_rows},
    }
    coupled_rows = measure_coupled_suite(repeats=repeats)
    baseline["coupled"] = {
        "calibration_ops_per_s": round(calibration, 1),
        "cases": {row["label"]: row for row in coupled_rows},
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    for row in rows:
        print(f"  {row['label']}: {row['requests_per_s']:,.0f} req/s")
    for row in sharded_rows:
        print(
            f"  {row['label']}: {row['requests_per_s']:,.0f} req/s "
            f"({row['shards']} shards; "
            f"{row['single_shard_requests_per_s']:,.0f} single-shard)"
        )
    for row in coupled_rows:
        print(
            f"  {row['label']}: {row['requests_per_s']:,.0f} req/s "
            f"({row['num_chips']}-chip jsq; "
            f"{row['water_fill_requests']:,d} water-filled)"
        )
    print(
        f"recorded {len(rows)} + {len(sharded_rows)} + {len(coupled_rows)} "
        f"cases -> {BASELINE_PATH}"
    )
    return 0


def _check_sharded(
    baseline: dict,
    repeats: int,
    tolerance: float,
    min_shard_speedup: float,
    live_calibration: float,
    failures: list,
) -> None:
    sharded = baseline.get("sharded")
    if not sharded:
        print("no recorded sharded section; skipping the sharded gate")
        return
    scale = live_calibration / sharded["calibration_ops_per_s"]
    for row in measure_sharded_suite(repeats=repeats):
        label = row["label"]
        live = row["requests_per_s"]
        single = row["single_shard_requests_per_s"]
        recorded = sharded["cases"][label]["requests_per_s"] * scale
        floor = recorded * (1.0 - tolerance)
        ratio = live / single if single > 0 else 0.0
        verdict = (
            "ok" if live >= floor and ratio >= min_shard_speedup else "REGRESSION"
        )
        print(
            f"  {label}: {live:,.0f} req/s at {row['shards']} shards "
            f"(floor {floor:,.0f}, {ratio:.2f}x its single-shard "
            f"{single:,.0f}) {verdict}"
        )
        if live < floor:
            failures.append(
                f"{label}: {live:,.0f} req/s is below the {tolerance:.0%} "
                f"sharded regression floor ({floor:,.0f} req/s)"
            )
        if ratio < min_shard_speedup:
            failures.append(
                f"{label}: sharding pays only {ratio:.2f}x over its own "
                f"single-shard run (floor {min_shard_speedup:.1f}x)"
            )


def _check_coupled(
    baseline: dict,
    repeats: int,
    tolerance: float,
    min_coupled_speedup: float,
    live_calibration: float,
    failures: list,
) -> None:
    coupled = baseline.get("coupled")
    frozen = baseline.get("coupled_baseline")
    if not coupled or not frozen:
        print("no recorded coupled section; skipping the coupled gate")
        return
    scale = live_calibration / coupled["calibration_ops_per_s"]
    scale_frozen = live_calibration / frozen["calibration_ops_per_s"]
    speedups = []
    for row in measure_coupled_suite(repeats=repeats):
        label = row["label"]
        live = row["requests_per_s"]
        recorded = coupled["cases"][label]["requests_per_s"] * scale
        floor = recorded * (1.0 - tolerance)
        frozen_rps = frozen["cases"][label]["requests_per_s"] * scale_frozen
        speedup = live / frozen_rps
        speedups.append(speedup)
        verdict = "ok" if live >= floor else "REGRESSION"
        print(
            f"  {label}: {live:,.0f} req/s "
            f"(floor {floor:,.0f}, {speedup:.1f}x scalar jsq) {verdict}"
        )
        if live < floor:
            failures.append(
                f"{label}: {live:,.0f} req/s is below the {tolerance:.0%} "
                f"coupled regression floor ({floor:,.0f} req/s)"
            )
    mean_speedup = geometric_mean(speedups)
    print(f"geomean speedup vs scalar jsq path: {mean_speedup:.2f}x")
    if mean_speedup < min_coupled_speedup:
        failures.append(
            f"coupled geomean speedup {mean_speedup:.2f}x fell below the "
            f"{min_coupled_speedup:.1f}x floor"
        )


def _check(
    baseline: dict,
    repeats: int,
    tolerance: float,
    min_speedup: float,
    min_shard_speedup: float,
    min_coupled_speedup: float,
) -> int:
    current = baseline.get("current")
    legacy = baseline.get("legacy")
    if not current or not legacy:
        raise SystemExit(
            f"{BASELINE_PATH} lacks the current/legacy sections; "
            "record with --record"
        )
    live_calibration = calibration_ops_per_s()
    scale_current = live_calibration / current["calibration_ops_per_s"]
    scale_legacy = live_calibration / legacy["calibration_ops_per_s"]
    print(
        f"calibration: live {live_calibration:,.0f} ops/s "
        f"(recorded current x{scale_current:.2f}, legacy x{scale_legacy:.2f})"
    )

    rows = measure_suite(repeats=repeats)
    failures = []
    speedups = []
    for row in rows:
        label = row["label"]
        live = row["requests_per_s"]
        recorded = current["cases"][label]["requests_per_s"] * scale_current
        floor = recorded * (1.0 - tolerance)
        legacy_rps = legacy["cases"][label]["requests_per_s"] * scale_legacy
        speedup = live / legacy_rps
        speedups.append(speedup)
        verdict = "ok" if live >= floor else "REGRESSION"
        print(
            f"  {label}: {live:,.0f} req/s "
            f"(floor {floor:,.0f}, {speedup:.1f}x legacy) {verdict}"
        )
        if live < floor:
            failures.append(
                f"{label}: {live:,.0f} req/s is below the {tolerance:.0%} "
                f"regression floor ({floor:,.0f} req/s)"
            )
    mean_speedup = geometric_mean(speedups)
    print(f"geomean speedup vs legacy event core: {mean_speedup:.2f}x")
    if mean_speedup < min_speedup:
        failures.append(
            f"geomean speedup {mean_speedup:.2f}x fell below the "
            f"{min_speedup:.1f}x floor"
        )
    _check_sharded(
        baseline, repeats, tolerance, min_shard_speedup, live_calibration,
        failures,
    )
    _check_coupled(
        baseline, repeats, tolerance, min_coupled_speedup, live_calibration,
        failures,
    )
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("throughput gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="re-measure and rewrite the 'current' baseline")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per case (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed per-case regression fraction")
    parser.add_argument("--min-speedup", type=float, default=7.0,
                        help="geomean speedup floor vs the legacy core")
    parser.add_argument("--min-shard-speedup", type=float, default=1.3,
                        help="per-case floor on sharded vs own single-shard")
    parser.add_argument("--min-coupled-speedup", type=float, default=3.0,
                        help="geomean floor vs the frozen scalar jsq path")
    args = parser.parse_args(argv)
    baseline = _load_baseline()
    if args.record:
        return _record(baseline, args.repeats)
    return _check(
        baseline, args.repeats, args.tolerance, args.min_speedup,
        args.min_shard_speedup, args.min_coupled_speedup,
    )


if __name__ == "__main__":
    raise SystemExit(main())
