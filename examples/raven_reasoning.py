"""Solve synthetic RAVEN / I-RAVEN / PGM reasoning tasks end to end.

Run with ``python examples/raven_reasoning.py``.  The script generates
symbolic Raven's-Progressive-Matrices tasks, runs the full neurosymbolic
pipeline (simulated perception, VSA factorization, probabilistic abduction
and execution) and reports accuracy per dataset — the software side of the
paper's Tab. VIII.
"""

from __future__ import annotations

from repro.evaluation import NeuroSymbolicSolver, SolverConfig
from repro.tasks import IRavenGenerator, PGMGenerator, RavenGenerator


def main(tasks_per_dataset: int = 10) -> None:
    datasets = {
        "RAVEN (center)": (RavenGenerator("center", seed=1), 0.03),
        "RAVEN (2x2 grid)": (RavenGenerator("2x2_grid", seed=2), 0.03),
        "I-RAVEN": (IRavenGenerator("center", seed=3), 0.03),
        "PGM": (PGMGenerator(seed=4), 0.20),
    }

    pmf_solver_header = "probabilistic abduction (PrAE-style)"
    vsa_solver_header = "VSA factorization + abduction (NVSA/CogSys-style)"
    print(f"{'dataset':20s} | {pmf_solver_header:38s} | {vsa_solver_header}")
    print("-" * 110)
    for name, (generator, error) in datasets.items():
        batch = generator.generate(tasks_per_dataset)
        pmf_solver = NeuroSymbolicSolver(SolverConfig(perception_error=error))
        vsa_solver = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=error,
                use_vsa_factorization=True,
                stochasticity=0.05,
                vector_dim=1024,
            )
        )
        pmf_accuracy = pmf_solver.accuracy(batch)
        vsa_accuracy = vsa_solver.accuracy(batch)
        print(f"{name:20s} | {pmf_accuracy:38.2%} | {vsa_accuracy:.2%}")

    # Inspect a single solved task in detail.
    task = RavenGenerator("center", seed=9).generate_task()
    outcome = NeuroSymbolicSolver(SolverConfig()).solve_task(task)
    print("\nexample task rules :", dict(task.rules))
    print("selected answer    :", outcome.answer_index, "expected:", outcome.expected_index)
    print("solved correctly   :", outcome.correct)


if __name__ == "__main__":
    main()
