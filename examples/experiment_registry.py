"""Driving the experiment registry and engine from Python.

Run with ``python examples/experiment_registry.py``.  The same machinery
backs the ``repro`` CLI and every benchmark harness: experiments are looked
up in the declarative registry, executed through the caching engine (so the
second run of this script is near-instant), and returned as structured
``ResultTable`` objects.
"""

from __future__ import annotations

from repro.evaluation import engine
from repro.evaluation.registry import all_specs, get_spec, specs_by_tag


def main() -> None:
    # 1. The registry is plain data: every paper table/figure is one spec.
    print(f"{len(all_specs())} registered experiments; hardware-tagged:")
    for spec in specs_by_tag("hardware"):
        print(f"  {spec.id:8s} {spec.title}")

    # 2. Run one experiment with overridden parameters.  Overrides are
    #    validated against the spec's param schema before the driver runs.
    spec = get_spec("tab04")
    table = engine.run(spec, vector_dim=512)
    print(f"\n## {table.title} (cache {table.provenance['cache']})")
    print(table.to_markdown())

    # 3. Fan several experiments out over worker processes; results arrive
    #    in request order and share one on-disk cache.
    tables = engine.run_many(
        ["fig11a", "fig11c", "fig12"],
        workers=2,
        overrides_by_id={"fig11c": {"vector_dim": 1024}},
    )
    for table in tables:
        print(f"\n## {table.title} (cache {table.provenance['cache']})")
        print(table.to_markdown())


if __name__ == "__main__":
    main()
