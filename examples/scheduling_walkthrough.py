"""Walk through the adaptive workload-aware scheduler (adSCH).

Run with ``python examples/scheduling_walkthrough.py``.  The script schedules
a batch of NVSA reasoning tasks on the CogSys cell array with both the
sequential baseline and the adaptive scheduler, prints the resulting
timelines, and shows how interleaving symbolic kernels of one task with the
neural kernels of another removes the symbolic bottleneck (Fig. 13).
"""

from __future__ import annotations

from repro.hardware import CogSysAccelerator
from repro.workloads import build_workload


def print_timeline(title: str, schedule, frequency_hz: float, max_rows: int = 18) -> None:
    print(f"\n--- {title} (total {schedule.total_cycles / frequency_hz * 1e3:.3f} ms) ---")
    entries = sorted(schedule.entries, key=lambda e: e.start_cycle)
    for entry in entries[:max_rows]:
        resource = "SIMD" if entry.uses_simd else f"{entry.cells_used:2d} cells"
        start_us = entry.start_cycle / frequency_hz * 1e6
        end_us = entry.end_cycle / frequency_hz * 1e6
        print(
            f"  {start_us:9.1f} -> {end_us:9.1f} us  [{resource}]  "
            f"{entry.stage.value:8s}  {entry.name}"
        )
    if len(entries) > max_rows:
        print(f"  ... ({len(entries) - max_rows} more kernels)")


def main() -> None:
    accelerator = CogSysAccelerator()
    workload = build_workload("nvsa", num_tasks=3)

    sequential = accelerator.simulate(workload, scheduler="sequential")
    adaptive = accelerator.simulate(workload, scheduler="adaptive")

    frequency = accelerator.config.frequency_hz
    print_timeline("Sequential schedule (ML-accelerator behaviour)", sequential.schedule, frequency)
    print_timeline("Adaptive adSCH schedule (CogSys)", adaptive.schedule, frequency)

    reduction = 1 - adaptive.total_seconds / sequential.total_seconds
    print(
        f"\nadSCH reduces end-to-end latency by {reduction:.1%} "
        f"({sequential.total_seconds*1e3:.3f} ms -> {adaptive.total_seconds*1e3:.3f} ms) "
        f"and raises array occupancy from {sequential.array_occupancy:.1%} "
        f"to {adaptive.array_occupancy:.1%}."
    )


if __name__ == "__main__":
    main()
