"""Explore the CogSys accelerator design space and compare against baselines.

Run with ``python examples/accelerator_design_space.py``.  The script builds
the NVSA workload, sweeps accelerator configurations (precision, cell count,
ablated features) and prints latency/energy next to GPU, CPU, edge-SoC and
ML-accelerator baselines — a condensed version of Figs. 15-19.
"""

from __future__ import annotations

from repro.backends import CustomSpec, get_backend
from repro.core import Precision
from repro.hardware import CogSysConfig
from repro.workloads import build_workload


def main() -> None:
    workload = build_workload("nvsa", num_tasks=2)

    print("=== Baseline devices (NVSA, batch of 2 reasoning tasks) ===")
    for device_name in ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti", "tpu_like", "mtia_like"):
        report = get_backend(device_name).execute(workload)
        print(
            f"{device_name:12s}  latency {report.total_seconds*1e3:9.2f} ms   "
            f"symbolic share {report.symbolic_fraction:5.1%}   "
            f"energy {report.energy_joules:8.2f} J"
        )

    print("\n=== CogSys configurations ===")
    configurations = {
        "cogsys (INT8, 16 cells)": CustomSpec(
            name="cogsys_int8", cogsys_config=CogSysConfig(precision=Precision.INT8)
        ),
        "cogsys (FP8, 16 cells)": CustomSpec(
            name="cogsys_fp8", cogsys_config=CogSysConfig(precision=Precision.FP8)
        ),
        "cogsys (INT8, 8 cells)": CustomSpec(
            name="cogsys_8cell", cogsys_config=CogSysConfig(num_cells=8)
        ),
        # Single-factor nsPE ablation (scale-out stays on), unlike the
        # registry's cumulative cogsys_no_nspe preset.
        "cogsys w/o nsPE mode": CustomSpec(
            name="cogsys_no_nspe_only", reconfigurable_symbolic=False
        ),
        "cogsys w/o scale-out": "cogsys_no_scaleout",
    }
    for name, spec in configurations.items():
        backend = get_backend(spec)
        report = backend.execute(workload, scheduler="adaptive")
        accelerator = backend.accelerator
        print(
            f"{name:26s}  latency {report.total_seconds*1e3:7.3f} ms   "
            f"occupancy {report.array_occupancy:5.1%}   "
            f"energy {report.energy_joules*1e3:7.2f} mJ   "
            f"area {accelerator.area_mm2():5.2f} mm^2   power {accelerator.power_watts:.2f} W"
        )

    print("\n=== Circular-convolution mapping decisions ===")
    accelerator = get_backend("cogsys").accelerator
    for count, dim in ((1, 2048), (210, 1024), (2575, 1024), (1000, 64)):
        decision = accelerator.circconv_mapping(dim, count)
        print(
            f"k={count:5d} d={dim:5d}  ->  {decision.mode.value:8s} mapping, "
            f"{decision.cycles:9d} cycles, "
            f"{decision.memory_reads_per_pass:6d} reads/pass"
        )


if __name__ == "__main__":
    main()
