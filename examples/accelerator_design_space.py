"""Explore the CogSys accelerator design space and compare against baselines.

Run with ``python examples/accelerator_design_space.py``.  The script builds
the NVSA workload, sweeps accelerator configurations (precision, cell count,
ablated features) and prints latency/energy next to GPU, CPU, edge-SoC and
ML-accelerator baselines — a condensed version of Figs. 15-19.
"""

from __future__ import annotations

from repro.core import Precision
from repro.hardware import CogSysAccelerator, CogSysConfig, make_device
from repro.workloads import build_workload


def main() -> None:
    workload = build_workload("nvsa", num_tasks=2)

    print("=== Baseline devices (NVSA, batch of 2 reasoning tasks) ===")
    for device_name in ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti", "tpu_like", "mtia_like"):
        report = make_device(device_name).workload_time(workload)
        print(
            f"{device_name:12s}  latency {report.total_seconds*1e3:9.2f} ms   "
            f"symbolic share {report.symbolic_fraction:5.1%}   "
            f"energy {report.energy_joules:8.2f} J"
        )

    print("\n=== CogSys configurations ===")
    configurations = {
        "cogsys (INT8, 16 cells)": CogSysAccelerator(CogSysConfig(precision=Precision.INT8)),
        "cogsys (FP8, 16 cells)": CogSysAccelerator(CogSysConfig(precision=Precision.FP8)),
        "cogsys (INT8, 8 cells)": CogSysAccelerator(CogSysConfig(num_cells=8)),
        "cogsys w/o nsPE mode": CogSysAccelerator(reconfigurable_symbolic=False),
        "cogsys w/o scale-out": CogSysAccelerator(scale_out=False),
    }
    for name, accelerator in configurations.items():
        report = accelerator.simulate(workload, scheduler="adaptive")
        print(
            f"{name:26s}  latency {report.total_seconds*1e3:7.3f} ms   "
            f"occupancy {report.array_occupancy:5.1%}   "
            f"energy {report.energy_joules*1e3:7.2f} mJ   "
            f"area {accelerator.area_mm2():5.2f} mm^2   power {accelerator.power_watts:.2f} W"
        )

    print("\n=== Circular-convolution mapping decisions ===")
    accelerator = CogSysAccelerator()
    for count, dim in ((1, 2048), (210, 1024), (2575, 1024), (1000, 64)):
        decision = accelerator.circconv_mapping(dim, count)
        print(
            f"k={count:5d} d={dim:5d}  ->  {decision.mode.value:8s} mapping, "
            f"{decision.cycles:9d} cycles, "
            f"{decision.memory_reads_per_pass:6d} reads/pass"
        )


if __name__ == "__main__":
    main()
