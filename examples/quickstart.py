"""Quickstart: vector-symbolic basics and the CogSys factorizer.

Run with ``python examples/quickstart.py``.  The script builds a small
attribute grammar, encodes an object as an entangled query hypervector, and
shows that the iterative factorizer recovers the attributes without ever
materialising the combinatorial product codebook.
"""

from __future__ import annotations

from repro.core import ConstantGaussianNoise, Factorizer, FactorizerConfig, compare_footprints
from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder


def main() -> None:
    # 1. A hypervector space and one codebook per attribute.
    space = BipolarSpace(dim=1024, seed=42)
    factors = {
        "type": ["triangle", "square", "pentagon", "hexagon", "circle"],
        "size": ["small", "medium", "large"],
        "color": [f"color_{i}" for i in range(8)],
        "position": [f"slot_{i}" for i in range(9)],
    }
    codebooks = CodebookSet.from_factors(factors, space)
    encoder = SceneEncoder(codebooks)

    # 2. The neural front-end would emit this entangled query vector.
    truth = {"type": "pentagon", "size": "large", "color": "color_3", "position": "slot_7"}
    query = encoder.encode_object(truth)

    # 3. Factorize it back into per-attribute labels.
    factorizer = Factorizer(
        codebooks,
        FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.05), seed=0),
    )
    result = factorizer.factorize(query)

    print("ground truth :", truth)
    print("decoded      :", result.labels)
    print(f"correct      : {result.matches(truth)}")
    print(f"iterations   : {result.iterations}, confidence {result.confidence:.2f}")

    # 4. Why this matters: storage of the exhaustive product codebook vs the
    #    factorized per-attribute codebooks (Fig. 8 of the paper).
    report = compare_footprints(codebooks.factor_sizes, codebooks.dim)
    print(
        f"product codebook: {report.product_codebook_kib:,.0f} KiB, "
        f"factorized: {report.factorized_kib:,.0f} KiB "
        f"({report.reduction_factor:.1f}x smaller)"
    )


if __name__ == "__main__":
    main()
