"""Tab. IX / Fig. 14: precision scaling of area, power and accuracy."""

from _bench_utils import emit_rows, emit_table, run_once, run_spec

from repro.hardware import CogSysAccelerator


def test_tab09_precision_impact(benchmark):
    """FP8/INT8 slash area and power while keeping reasoning accuracy."""
    table = run_spec(benchmark, "tab09", num_tasks=5)
    emit_table(benchmark, table)
    by_precision = {row["precision"]: row for row in table.rows}
    assert by_precision["fp32"]["array_area_mm2"] > 2 * by_precision["fp8"]["array_area_mm2"]
    assert by_precision["fp8"]["array_area_mm2"] > by_precision["int8"]["array_area_mm2"]
    assert by_precision["fp32"]["array_power_mw"] > 3 * by_precision["int8"]["array_power_mw"]
    # The reconfigurability overhead at FP8 stays below 5 % (headline claim).
    assert by_precision["fp8"]["area_overhead_vs_systolic"] < 0.05
    # Accuracy degrades gracefully under quantization.
    assert by_precision["int8"]["accuracy"] >= by_precision["fp32"]["accuracy"] - 0.3


def test_fig14_accelerator_spec(benchmark):
    """The default configuration matches the taped-out accelerator spec."""

    def build():
        accelerator = CogSysAccelerator()
        return {
            "area_mm2": accelerator.area_mm2(),
            "power_w": accelerator.power_watts,
            "total_pes": accelerator.config.total_pes,
            "sram_bytes": accelerator.config.total_sram_bytes,
            "frequency_ghz": accelerator.config.frequency_hz / 1e9,
        }

    spec = run_once(benchmark, build)
    emit_rows(benchmark, "Fig. 14 accelerator specification", [spec])
    assert 3.5 < spec["area_mm2"] < 4.5
    assert 1.3 < spec["power_w"] < 1.6
    assert spec["total_pes"] == 16 * 32 * 32
