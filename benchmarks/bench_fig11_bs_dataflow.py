"""Fig. 11: bubble-streaming dataflow versus the GEMV lowering."""

import numpy as np
from _bench_utils import emit_table, run_once, run_spec

from repro.hardware.bubble_stream import BubbleStreamSimulator
from repro.vsa.operations import circular_convolve


def test_fig11ab_cycle_comparison(benchmark):
    """The tiny 3-element example: CogSys finishes faster than the GEMV lowering."""
    table = run_spec(benchmark, "fig11a", vector_dim=3, num_convs=3)
    emit_table(benchmark, table)
    result = table.rows[0]
    assert result["cogsys_cycles"] < result["tpu_like_cycles"]
    assert result["speedup"] > 1.5


def test_fig11b_functional_correctness(benchmark):
    """The BS dataflow schedule computes exact circular convolutions."""

    def run():
        rng = np.random.default_rng(0)
        dim = 64
        simulator = BubbleStreamSimulator(dim)
        a, b = rng.normal(size=(2, dim))
        result = simulator.run(a, b)
        np.testing.assert_allclose(result.output, circular_convolve(a, b), atol=1e-9)
        return result

    result = run_once(benchmark, run)
    assert result.cycles == 4 * 64 - 1


def test_fig11c_roofline(benchmark):
    """BS dataflow is compute-bound while the GEMV lowering is memory-bound."""
    table = run_spec(benchmark, "fig11c", vector_dim=2048)
    emit_table(benchmark, table)
    rows = table.rows
    bs = next(r for r in rows if "BS" in r["implementation"])
    gemv = next(r for r in rows if "GEMV" in r["implementation"])
    assert bs["bound"] == "compute"
    assert gemv["bound"] == "memory"
    assert bs["arithmetic_intensity"] > 100 * gemv["arithmetic_intensity"]
