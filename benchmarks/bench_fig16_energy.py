"""Fig. 16: energy consumption and performance-per-watt comparison."""

from _bench_utils import emit_rows, run_once

from repro.evaluation import experiments


def test_fig16_energy_efficiency(benchmark):
    """CogSys consumes orders of magnitude less energy per reasoning task."""
    rows = run_once(benchmark, experiments.energy_efficiency)
    emit_rows(benchmark, "Fig. 16 energy efficiency", rows)
    for row in rows:
        assert row["cogsys_energy_j"] < 0.5
        for device in ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti"):
            # Every baseline burns far more energy per task ...
            assert row[f"{device}_energy_j"] > 10 * row["cogsys_energy_j"]
            # ... so its performance per watt is a small fraction of CogSys.
            assert row[f"{device}_perf_per_watt_vs_cogsys"] < 0.2
