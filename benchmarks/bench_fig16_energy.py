"""Fig. 16: energy consumption and performance-per-watt comparison."""

from _bench_utils import emit_table, run_spec


def test_fig16_energy_efficiency(benchmark):
    """CogSys consumes orders of magnitude less energy per reasoning task."""
    table = run_spec(benchmark, "fig16")
    emit_table(benchmark, table)
    for row in table.rows:
        assert row["cogsys_energy_j"] < 0.5
        for device in ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti"):
            # Every baseline burns far more energy per task ...
            assert row[f"{device}_energy_j"] > 10 * row["cogsys_energy_j"]
            # ... so its performance per watt is a small fraction of CogSys.
            assert row[f"{device}_perf_per_watt_vs_cogsys"] < 0.2
