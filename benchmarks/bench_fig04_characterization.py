"""Fig. 4: end-to-end runtime, scalability and memory characterization."""

from _bench_utils import emit_table, run_spec


def test_fig04a_runtime_breakdown(benchmark):
    """Symbolic kernels dominate runtime for the VSA-heavy workloads."""
    table = run_spec(benchmark, "fig04a")
    emit_table(benchmark, table)
    rows = table.rows
    nvsa_gpu = next(r for r in rows if r["workload"] == "nvsa" and r["device"] == "rtx2080ti")
    mimonet_gpu = next(
        r for r in rows if r["workload"] == "mimonet" and r["device"] == "rtx2080ti"
    )
    assert nvsa_gpu["symbolic_fraction"] > 0.5
    assert mimonet_gpu["symbolic_fraction"] < nvsa_gpu["symbolic_fraction"]
    # Edge SoCs are slower than the desktop GPU for the same workload.
    nvsa_tx2 = next(r for r in rows if r["workload"] == "nvsa" and r["device"] == "jetson_tx2")
    assert nvsa_tx2["total_seconds"] > nvsa_gpu["total_seconds"]


def test_fig04c_task_size_scaling(benchmark):
    """Scaling the RPM grid grows runtime while the symbolic share stays stable."""
    table = run_spec(benchmark, "fig04c")
    emit_table(benchmark, table)
    rows = table.rows
    # The paper measures ~5x growth from 2x2 to 3x3; our workload model grows
    # more mildly (panel count rather than full combination count), but the
    # direction and the stability of the symbolic share must hold.
    assert rows[-1]["slowdown_vs_smallest"] > 1.25
    assert abs(rows[0]["symbolic_fraction"] - rows[1]["symbolic_fraction"]) < 0.25


def test_fig04d_memory_footprint(benchmark):
    """Symbolic codebooks plus weights reach tens of MB per workload."""
    table = run_spec(benchmark, "fig04d")
    emit_table(benchmark, table)
    assert all(row["total_mb"] > 1.0 for row in table.rows)
