"""Tab. III: accuracy/latency/memory impact of the algorithm optimizations."""

from _bench_utils import emit_table, run_spec


def test_tab03_optimization_impact(benchmark):
    """Stochasticity keeps accuracy and quantization keeps it within a few points."""
    table = run_spec(benchmark, "tab03", num_tasks=6)
    emit_table(benchmark, table)
    rows = table.rows
    baseline = rows[0]["accuracy"]
    stochastic = rows[1]["accuracy"]
    quantized = rows[2]["accuracy"]
    assert stochastic >= baseline - 0.2
    assert quantized >= stochastic - 0.25
    # INT8 shrinks the factorized codebook footprint by 4x.
    assert rows[2]["memory_kib"] * 3.9 < rows[0]["memory_kib"]
