"""Tab. VII: factorization accuracy across RAVEN constellations and rules."""

from _bench_utils import emit_rows, run_once

from repro.evaluation import experiments


def test_tab07_accuracy_by_constellation(benchmark):
    """Attribute recovery stays high (paper: ~95 %) across all constellations."""
    rows = run_once(
        benchmark,
        experiments.factorization_accuracy_by_constellation,
        tasks_per_constellation=2,
        vector_dim=1024,
    )
    emit_rows(benchmark, "Tab. VII factorization accuracy (constellations)", rows)
    assert len(rows) == 7
    average = sum(r["accuracy"] for r in rows) / len(rows)
    assert average > 0.85
    assert all(r["accuracy"] > 0.6 for r in rows)


def test_tab07_accuracy_by_rule(benchmark):
    """Attribute recovery grouped by governing rule stays high (paper: ~93 %)."""
    rows = run_once(
        benchmark,
        experiments.factorization_accuracy_by_rule,
        tasks_per_rule=2,
        vector_dim=1024,
    )
    emit_rows(benchmark, "Tab. VII factorization accuracy (rules)", rows)
    average = sum(r["accuracy"] for r in rows) / len(rows)
    assert average > 0.75
