"""Tab. VII: factorization accuracy across RAVEN constellations and rules."""

from _bench_utils import emit_table, run_spec


def test_tab07_accuracy_by_constellation(benchmark):
    """Attribute recovery stays high (paper: ~95 %) across all constellations."""
    table = run_spec(
        benchmark, "tab07a", tasks_per_constellation=2, vector_dim=1024
    )
    emit_table(benchmark, table)
    rows = table.rows
    assert len(rows) == 7
    average = sum(r["accuracy"] for r in rows) / len(rows)
    assert average > 0.85
    assert all(r["accuracy"] > 0.6 for r in rows)


def test_tab07_accuracy_by_rule(benchmark):
    """Attribute recovery grouped by governing rule stays high (paper: ~93 %)."""
    table = run_spec(benchmark, "tab07b", tasks_per_rule=2, vector_dim=1024)
    emit_table(benchmark, table)
    rows = table.rows
    average = sum(r["accuracy"] for r in rows) / len(rows)
    assert average > 0.75
