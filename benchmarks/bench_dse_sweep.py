"""DSE: design-space sweep, frontier and capacity-plan shape assertions.

Guards the qualitative shape of the design-space explorer: the taped-out
CogSys configuration must sit on the Pareto frontier of its own design
space (the paper's implicit claim), area must grow monotonically with the
PE budget, frontiers must be non-dominated, and the capacity planner must
recommend the cheapest fleet that meets its tail-latency target.
"""

from _bench_utils import emit_table, run_spec

from repro.dse import Objective, dominates

#: the sweep objectives the dse specs default to
_OBJECTIVES = (
    Objective("latency_ms", "min"),
    Objective("energy_mj_per_task", "min"),
    Objective("area_mm2", "min"),
)


def test_dse_pe_array_sweep(benchmark):
    """The taped-out 16-cell/512-PE design is on its space's frontier."""
    table = run_spec(benchmark, "dse_sweep", space="pe_array", batch_sizes=(1, 8))
    emit_table(benchmark, table)
    rows = table.rows
    assert len(rows) == 12 * 2  # 4 cell counts x 3 SIMD widths x 2 batches

    taped_out = [row for row in rows if row["design"] == "cells16-simd512"]
    assert len(taped_out) == 2 and all(row["pareto"] for row in taped_out)

    # Area is a monotone function of the PE budget at fixed SIMD width.
    by_cells = sorted(
        (row for row in rows if row["simd"] == 512 and row["batch"] == 1),
        key=lambda row: row["cells"],
    )
    areas = [row["area_mm2"] for row in by_cells]
    assert areas == sorted(areas) and areas[0] < areas[-1]

    # More parallel hardware does not slow the batched workload down.
    assert by_cells[-1]["latency_ms"] <= by_cells[0]["latency_ms"]

    # Every pareto row is genuinely non-dominated within its group.
    for group_batch in (1, 8):
        group = [row for row in rows if row["batch"] == group_batch]
        for row in group:
            if row["pareto"]:
                assert not any(
                    dominates(other, row, _OBJECTIVES) for other in group
                )


def test_dse_frontier_is_nondominated(benchmark):
    """The combined-grid frontier only contains non-dominated designs."""
    table = run_spec(benchmark, "dse_frontier", workloads=("nvsa",))
    emit_table(benchmark, table)
    rows = table.rows
    assert 0 < len(rows) < 24  # strictly smaller than the 24-point grid
    for row in rows:
        assert not any(
            dominates(other, row, _OBJECTIVES)
            for other in rows
            if other is not row
        )


def test_dse_capacity_plan(benchmark):
    """The planner recommends the cheapest configuration meeting the target."""
    table = run_spec(benchmark, "dse_capacity", requests=300)
    emit_table(benchmark, table)
    rows = table.rows
    assert len(rows) == 4 * 2 * 2  # chips x routers x policies

    meeting = [row for row in rows if row["meets_target"]]
    recommended = [row for row in rows if row["recommended"]]
    assert meeting, "default plan must contain at least one passing config"
    assert len(recommended) == 1
    assert recommended[0]["fleet_power_w"] == min(
        row["fleet_power_w"] for row in meeting
    )

    # Scaling out under load-aware routing never hurts the tail.
    jsq = sorted(
        (
            row
            for row in rows
            if row["router"] == "jsq" and row["policy"] == "continuous"
        ),
        key=lambda row: row["chips"],
    )
    assert jsq[-1]["p99_ms"] <= jsq[0]["p99_ms"]
