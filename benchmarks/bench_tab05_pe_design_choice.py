"""Tab. V: reconfigurable nsPE versus heterogeneous dedicated PE pools."""

from _bench_utils import emit_table, run_spec


def test_tab05_pe_design_choice(benchmark):
    """Same-area heterogeneous PEs double latency; same-latency ones double area."""
    table = run_spec(benchmark, "tab05", num_tasks=2)
    emit_table(benchmark, table)
    rows = table.rows
    reconfigurable = next(r for r in rows if r["configuration"].startswith("reconfigurable"))
    same_area = next(r for r in rows if "8+8" in r["configuration"])
    same_latency = next(r for r in rows if "16+16" in r["configuration"])
    assert reconfigurable["utilization"] > same_area["utilization"]
    # The paper reports a 2x latency penalty for the same-area heterogeneous
    # design; our model shows the same direction (SIMD and DRAM-bound phases
    # dilute the penalty) so we assert the ordering rather than the factor.
    assert same_area["measured_latency_factor"] > 1.05
    assert same_area["reported_latency_factor"] == 2.0
    assert same_latency["area_factor"] > 1.8
