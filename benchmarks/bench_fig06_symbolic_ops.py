"""Fig. 6: breakdown of symbolic runtime by operation type."""

from _bench_utils import emit_table, run_spec


def test_fig06_symbolic_operation_breakdown(benchmark):
    """Circular convolution plus matrix-vector products dominate symbolic time."""
    table = run_spec(benchmark, "fig06")
    emit_table(benchmark, table)
    shares = table.rows[0]
    dominant = shares["circconv"] + shares["matvec"]
    assert dominant > 0.6
    assert shares["gemm"] == 0.0 and shares["conv"] == 0.0
