"""Fig. 6: breakdown of symbolic runtime by operation type."""

from _bench_utils import emit_rows, run_once

from repro.evaluation import experiments


def test_fig06_symbolic_operation_breakdown(benchmark):
    """Circular convolution plus matrix-vector products dominate symbolic time."""
    shares = run_once(benchmark, experiments.symbolic_breakdown)
    emit_rows(benchmark, "Fig. 6 symbolic operation shares", [shares])
    dominant = shares["circconv"] + shares["matvec"]
    assert dominant > 0.6
    assert shares["gemm"] == 0.0 and shares["conv"] == 0.0
