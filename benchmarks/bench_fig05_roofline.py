"""Fig. 5: roofline characterization on the desktop GPU."""

from _bench_utils import emit_table, run_spec


def test_fig05_roofline(benchmark):
    """Symbolic stages are memory-bound, neural stages are compute-bound."""
    table = run_spec(benchmark, "fig05")
    emit_table(benchmark, table)
    rows = table.rows
    for workload in ("nvsa", "lvrf", "prae"):
        symbolic = next(
            r for r in rows if r["workload"] == workload and r["stage"] == "symbolic"
        )
        assert symbolic["bound"] == "memory"
    neural_points = [r for r in rows if r["stage"] == "neural"]
    symbolic_points = [r for r in rows if r["stage"] == "symbolic"]
    avg_neural_ai = sum(r["arithmetic_intensity"] for r in neural_points) / len(neural_points)
    avg_symbolic_ai = sum(r["arithmetic_intensity"] for r in symbolic_points) / len(
        symbolic_points
    )
    assert avg_neural_ai > avg_symbolic_ai
