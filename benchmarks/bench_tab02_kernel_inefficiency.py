"""Tab. II: kernel-level hardware inefficiency of symbolic operations."""

from _bench_utils import emit_rows, run_once

from repro.evaluation import experiments


def test_tab02_kernel_profile(benchmark):
    """Symbolic kernels show low compute utilisation but high DRAM pressure."""
    profile = run_once(benchmark, experiments.kernel_profile)
    rows = [{"kernel": name, **metrics} for name, metrics in profile.items()]
    emit_rows(benchmark, "Tab. II kernel profile", rows)
    neural = [m for name, m in profile.items() if "neural" in name]
    symbolic = [m for name, m in profile.items() if "symbolic" in name]
    assert min(m["compute_throughput"] for m in neural) > 90
    assert max(m["compute_throughput"] for m in symbolic) < 10
    assert min(m["dram_bw_utilization"] for m in symbolic) > 70
