"""Tab. II: kernel-level hardware inefficiency of symbolic operations."""

from _bench_utils import emit_table, run_spec


def test_tab02_kernel_profile(benchmark):
    """Symbolic kernels show low compute utilisation but high DRAM pressure."""
    table = run_spec(benchmark, "tab02")
    emit_table(benchmark, table)
    rows = table.rows
    neural = [r for r in rows if "neural" in r["kernel"]]
    symbolic = [r for r in rows if "symbolic" in r["kernel"]]
    assert min(r["compute_throughput"] for r in neural) > 90
    assert max(r["compute_throughput"] for r in symbolic) < 10
    assert min(r["dram_bw_utilization"] for r in symbolic) > 70
