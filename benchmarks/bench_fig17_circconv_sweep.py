"""Fig. 17: circular-convolution speedup sweep over dimension and batch size."""

from _bench_utils import emit_table, run_spec


def test_fig17_circconv_speedup_sweep(benchmark):
    """Speedup grows with vector dimension and number of convolutions."""
    table = run_spec(benchmark, "fig17")
    emit_table(benchmark, table)
    by_key = {(r["vector_dim"], r["num_convs"]): r for r in table.rows}

    # The largest corner shows the biggest gains (paper: up to 75.96x / 18.9x).
    largest = by_key[(2048, 10000)]
    smallest = by_key[(128, 1)]
    assert largest["speedup_vs_tpu"] > 30
    assert largest["speedup_vs_gpu"] > 5
    assert largest["speedup_vs_tpu"] > smallest["speedup_vs_tpu"]

    # Speedup is monotone (non-decreasing) in the number of convolutions for
    # the high-dimensional case.
    tpu_series = [by_key[(2048, k)]["speedup_vs_tpu"] for k in (1, 10, 100, 1000, 10000)]
    assert all(a <= b * 1.05 for a, b in zip(tpu_series, tpu_series[1:]))
    # And it grows with the vector dimension for large batches.
    dim_series = [by_key[(d, 1000)]["speedup_vs_tpu"] for d in (128, 512, 2048)]
    assert dim_series[0] < dim_series[-1]
