"""Serving: latency-vs-load sweeps, batching shapes, event-core throughput.

Unlike the paper-anchored harnesses, this benchmark guards the qualitative
shape of the request-level serving layer: queueing theory says the tail
must stay flat below the knee and blow up past saturation, batching must
beat no batching under over-capacity traffic, and the memoized service
model must keep the whole sweep cheap.  On top of the shape checks, the
event-core throughput suite asserts the PR 5 performance contract: the
slot-keyed core sustains a >=5x geometric-mean requests/sec speedup over
the recorded legacy (heapq-per-request) baseline across five load
regimes, calibration-scaled so the check is machine-independent (see
``benchmarks/BENCH_serving.json`` and
``scripts/check_serving_throughput.py``).
"""

import json
from pathlib import Path

from _bench_utils import emit_rows, emit_table, run_once, run_spec

from repro.serving.benchmark import (
    calibration_ops_per_s,
    geometric_mean,
    measure_suite,
)
from repro.serving.metrics import saturation_summary

BASELINE_PATH = Path(__file__).parent / "BENCH_serving.json"


def test_serving_latency_load_sweep(benchmark):
    """p99 grows with offered load and saturates past the capacity knee."""
    table = run_spec(benchmark, "serve_load", requests_per_point=150)
    emit_table(benchmark, table)
    by_key = {(row["workload"], row["load"]): row for row in table.rows}
    workloads = sorted({row["workload"] for row in table.rows})
    loads = sorted({row["load"] for row in table.rows})
    assert len(workloads) == 4 and len(loads) == 5

    for workload in workloads:
        series = [by_key[(workload, load)] for load in loads]
        # The tail is monotone-ish in load: the saturated end is far above
        # the light-load end, and utilization grows with offered load.
        assert series[-1]["p99_ms"] > 2 * series[0]["p99_ms"]
        assert series[-1]["utilization"] > series[0]["utilization"]
        # Below half capacity the system meets a 5 ms SLO outright.
        assert series[0]["slo_attainment"] == 1.0
        # Past unbatched capacity, amortization kicks in: batches form.
        assert series[-1]["mean_batch"] > series[0]["mean_batch"]
        knee = saturation_summary(
            [{"load": row["load"], "p99_ms": row["p99_ms"]} for row in series],
            knee_factor=2.0,
        )
        assert knee["knee_load"] is not None and knee["knee_load"] >= 0.5


def test_serving_batching_policies(benchmark):
    """Batched serving beats the no-batch baseline under heavy traffic."""
    table = run_spec(benchmark, "serve_batch", requests=400)
    emit_table(benchmark, table)
    by_policy = {row["policy"]: row for row in table.rows}
    none, continuous = by_policy["none"], by_policy["continuous"]
    assert continuous["mean_batch"] > none["mean_batch"]
    assert continuous["p99_ms"] < none["p99_ms"]
    assert continuous["goodput_rps"] >= none["goodput_rps"]


def test_serving_event_core_throughput(benchmark):
    """The rewritten event core holds >=5x requests/sec over the legacy core.

    Five load regimes, pre-warmed service caches, best-of-two timing; the
    recorded legacy numbers are rescaled by the calibration ratio so the
    assertion compares event-loop work, not machine speed.
    """
    rows = run_once(benchmark, measure_suite, repeats=2)
    baseline = json.loads(BASELINE_PATH.read_text())["legacy"]
    scale = calibration_ops_per_s() / baseline["calibration_ops_per_s"]
    speedups = {}
    for row in rows:
        legacy_rps = baseline["cases"][row["label"]]["requests_per_s"] * scale
        speedups[row["label"]] = row["requests_per_s"] / legacy_rps
    emit_rows(
        benchmark,
        "Event-core throughput vs legacy baseline",
        [
            {**row, "speedup_vs_legacy": round(speedups[row["label"]], 2)}
            for row in rows
        ],
    )
    # Saturated regimes are where the old per-dispatch queue scans
    # collapsed; they must show order-of-magnitude gains, and the whole
    # suite must clear the 5x acceptance bar on the geometric mean.
    assert speedups["steady_saturated"] > 10.0
    assert speedups["flash_megacrowd"] > 10.0
    assert geometric_mean(list(speedups.values())) >= 5.0
