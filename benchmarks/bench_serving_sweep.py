"""Serving: latency-vs-load sweep and batching-policy shape assertions.

Unlike the paper-anchored harnesses, this benchmark guards the qualitative
shape of the request-level serving layer: queueing theory says the tail
must stay flat below the knee and blow up past saturation, batching must
beat no batching under over-capacity traffic, and the memoized service
model must keep the whole sweep cheap.
"""

from _bench_utils import emit_table, run_spec

from repro.serving.metrics import saturation_summary


def test_serving_latency_load_sweep(benchmark):
    """p99 grows with offered load and saturates past the capacity knee."""
    table = run_spec(benchmark, "serve_load", requests_per_point=150)
    emit_table(benchmark, table)
    by_key = {(row["workload"], row["load"]): row for row in table.rows}
    workloads = sorted({row["workload"] for row in table.rows})
    loads = sorted({row["load"] for row in table.rows})
    assert len(workloads) == 4 and len(loads) == 5

    for workload in workloads:
        series = [by_key[(workload, load)] for load in loads]
        # The tail is monotone-ish in load: the saturated end is far above
        # the light-load end, and utilization grows with offered load.
        assert series[-1]["p99_ms"] > 2 * series[0]["p99_ms"]
        assert series[-1]["utilization"] > series[0]["utilization"]
        # Below half capacity the system meets a 5 ms SLO outright.
        assert series[0]["slo_attainment"] == 1.0
        # Past unbatched capacity, amortization kicks in: batches form.
        assert series[-1]["mean_batch"] > series[0]["mean_batch"]
        knee = saturation_summary(
            [{"load": row["load"], "p99_ms": row["p99_ms"]} for row in series],
            knee_factor=2.0,
        )
        assert knee["knee_load"] is not None and knee["knee_load"] >= 0.5


def test_serving_batching_policies(benchmark):
    """Batched serving beats the no-batch baseline under heavy traffic."""
    table = run_spec(benchmark, "serve_batch", requests=400)
    emit_table(benchmark, table)
    by_policy = {row["policy"]: row for row in table.rows}
    none, continuous = by_policy["none"], by_policy["continuous"]
    assert continuous["mean_batch"] > none["mean_batch"]
    assert continuous["p99_ms"] < none["p99_ms"]
    assert continuous["goodput_rps"] >= none["goodput_rps"]
