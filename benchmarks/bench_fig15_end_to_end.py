"""Fig. 15: end-to-end runtime of CogSys versus CPU, GPU and edge SoCs."""

from _bench_utils import emit_table, run_spec


def test_fig15_end_to_end_speedup(benchmark):
    """CogSys is the fastest device on every reasoning dataset.

    The paper's ordering (TX2 slowest, then NX, then Xeon, then RTX, CogSys
    fastest) and real-time operation (<0.3 s per task) must hold; absolute
    speedup factors are expected to differ from the silicon measurements.
    """
    table = run_spec(benchmark, "fig15")
    emit_table(benchmark, table)
    rows = table.rows
    assert len(rows) == 5
    for row in rows:
        assert row["jetson_tx2"] > row["xeon"] > row["rtx2080ti"] > 1.0
        assert row["xavier_nx"] > row["xeon"]
        # Real-time reasoning: well under 0.3 s per task on CogSys.
        assert row["cogsys_seconds"] < 0.3
    raven = next(r for r in rows if r["dataset"] == "raven")
    assert raven["jetson_tx2"] > 20
    assert raven["rtx2080ti"] > 2
