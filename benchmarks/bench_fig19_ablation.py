"""Fig. 19: ablation of the adaptive scheduler, scalable array and nsPE."""

from _bench_utils import emit_table, run_spec


def test_fig19_hardware_ablation(benchmark):
    """Each hardware technique contributes a further runtime reduction."""
    table = run_spec(benchmark, "fig19", num_tasks=3)
    emit_table(benchmark, table)
    for row in table.rows:
        # Progressive removal of techniques increases runtime monotonically.
        assert (
            row["cogsys"]
            < row["without_adsch"]
            <= row["without_adsch_so"]
            <= row["without_adsch_so_nspe"]
        )
        # The full design achieves a large reduction versus the stripped one
        # (the paper reports ~71 % runtime reduction on average).
        assert row["cogsys"] < 0.6
