"""Fig. 8: memory and runtime impact of the symbolic factorization strategy."""

from _bench_utils import emit_table, run_spec


def test_fig08_factorization_efficiency(benchmark):
    """Factorization shrinks the codebook by >50x and speeds up the pipeline."""
    table = run_spec(benchmark, "fig08")
    emit_table(benchmark, table)
    result = table.rows[0]
    assert result["memory_reduction"] > 50
    assert result["factorized_kib"] < 1024
    assert result["runtime_speedup"] > 1.5
