"""Fig. 8: memory and runtime impact of the symbolic factorization strategy."""

from _bench_utils import emit_rows, run_once

from repro.evaluation import experiments


def test_fig08_factorization_efficiency(benchmark):
    """Factorization shrinks the codebook by >50x and speeds up the pipeline."""
    result = run_once(benchmark, experiments.factorization_efficiency)
    emit_rows(benchmark, "Fig. 8 factorization efficiency", [result])
    assert result["memory_reduction"] > 50
    assert result["factorized_kib"] < 1024
    assert result["runtime_speedup"] > 1.5
