"""Pytest configuration for the benchmark suite (path setup only)."""

import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).parent
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))
