"""Tab. X: necessity of the algorithm-hardware co-design."""

from _bench_utils import emit_table, run_spec


def test_tab10_codesign_ablation(benchmark):
    """Algorithm-only helps modestly; algorithm + accelerator is transformative."""
    table = run_spec(benchmark, "tab10")
    emit_table(benchmark, table)
    rows = table.rows
    assert len(rows) == 5
    for row in rows:
        # The CogSys algorithm alone (on Xavier NX) already trims runtime
        # (paper: ~89 % of NVSA), and the full co-design reduces it to a few
        # percent (paper: ~1.8 %).
        assert row["cogsys_algorithm_on_xavier_nx"] < 1.0
        assert row["cogsys_algorithm_on_cogsys_accelerator"] < 0.1
