"""Fig. 12: spatial versus temporal mapping of circular convolutions."""

from _bench_utils import emit_table, run_spec


def test_fig12_st_mapping_tradeoff(benchmark):
    """Temporal mapping wins for many convolutions, spatial for single large ones."""
    table = run_spec(benchmark, "fig12")
    emit_table(benchmark, table)
    rows = table.rows
    nvsa_case = next(r for r in rows if r["num_convs"] == 210)
    lvrf_case = next(r for r in rows if r["num_convs"] == 2575)
    single_large = next(r for r in rows if r["num_convs"] == 1)
    assert nvsa_case["chosen"] == "temporal"
    assert lvrf_case["chosen"] == "temporal"
    assert single_large["chosen"] == "spatial"
    # Spatial mapping always needs fewer memory reads per pass.
    assert all(r["spatial_reads_per_pass"] < r["temporal_reads_per_pass"] for r in rows)
