"""Tab. VIII: end-to-end reasoning accuracy with the CogSys optimizations."""

from _bench_utils import emit_table, run_spec


def test_tab08_reasoning_accuracy(benchmark):
    """Factorization + stochasticity match the baseline; PGM is the hardest set."""
    table = run_spec(benchmark, "tab08", tasks_per_dataset=6)
    emit_table(benchmark, table)
    rows = table.rows
    by_dataset = {row["dataset"]: row for row in rows}
    for dataset in ("raven", "iraven"):
        assert by_dataset[dataset]["cogsys_factorization_accuracy"] >= 0.65
        assert (
            by_dataset[dataset]["cogsys_factorization_accuracy"]
            >= by_dataset[dataset]["nvsa_accuracy"] - 0.2
        )
    # PGM is markedly harder than RAVEN, as in the paper (68 % vs 98 %).
    assert (
        by_dataset["pgm"]["cogsys_factorization_accuracy"]
        <= by_dataset["raven"]["cogsys_factorization_accuracy"]
    )
    # Quantization shrinks parameters by >4x.
    assert rows[0]["cogsys_quantized_params_mb"] * 4 <= rows[0]["nvsa_params_mb"]
