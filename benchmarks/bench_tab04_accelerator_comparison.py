"""Tab. IV: per-circular-convolution footprint and parallelism across accelerators."""

from _bench_utils import emit_table, run_spec


def test_tab04_accelerator_comparison(benchmark):
    """CogSys needs O(d) storage per circular convolution, GEMV lowerings need O(d^2)."""
    table = run_spec(benchmark, "tab04", vector_dim=1024)
    emit_table(benchmark, table)
    rows = table.rows
    gemv = next(r for r in rows if "GEMV" in r["accelerator"])
    cogsys = next(r for r in rows if "CogSys" in r["accelerator"])
    assert gemv["footprint_bytes"] > 100 * cogsys["footprint_bytes"]
    assert cogsys["column_wise_parallelism"] and not gemv["column_wise_parallelism"]
    assert cogsys["neurosymbolic_support"] and not gemv["neurosymbolic_support"]
