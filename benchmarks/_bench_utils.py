"""Shared helpers for the benchmark harnesses (imported by every bench module).

Every benchmark regenerates one table or figure of the paper: it resolves
the experiment through the declarative registry, runs it once through the
execution engine (``benchmark.pedantic`` with a single round so heavy
experiments stay affordable, caching disabled so the timing is real),
prints the resulting rows in the same layout the paper reports, and asserts
the qualitative shape (who wins, by roughly what factor) so regressions are
caught.
"""

from __future__ import annotations

import pytest

from repro.evaluation import engine
from repro.evaluation.reporting import format_markdown_table


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_spec(benchmark, experiment_id: str, **overrides):
    """Run a registered experiment once through the engine, uncached.

    Returns the :class:`~repro.evaluation.engine.ResultTable`; benchmarks
    assert on ``.rows`` so they exercise exactly what the ``repro`` CLI and
    ``repro report`` serve to users.
    """
    return run_once(
        benchmark, engine.run, experiment_id, use_cache=False, **overrides
    )


def emit_rows(benchmark, title: str, rows) -> None:
    """Print rows as a markdown table and attach them to the benchmark record."""
    if not rows:
        return
    if isinstance(rows, dict):
        rows = [rows]
    headers = list(rows[0].keys())
    table = format_markdown_table(headers, [[row[h] for h in headers] for row in rows])
    print(f"\n## {title}\n{table}")
    benchmark.extra_info[title] = rows


def emit_table(benchmark, table) -> None:
    """Emit a :class:`ResultTable` under its registry title."""
    emit_rows(benchmark, table.title, table.rows)


@pytest.fixture
def emit(benchmark):
    """Fixture returning a row-emitting helper bound to this benchmark."""

    def _emit(title, rows):
        emit_rows(benchmark, title, rows)

    return _emit
