"""Shared helpers for the benchmark harnesses (imported by every bench module).

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver once (``benchmark.pedantic`` with a single
round so heavy experiments stay affordable), prints the resulting rows in
the same layout the paper reports, and asserts the qualitative shape (who
wins, by roughly what factor) so regressions are caught.
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_markdown_table


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit_rows(benchmark, title: str, rows) -> None:
    """Print rows as a markdown table and attach them to the benchmark record."""
    if not rows:
        return
    if isinstance(rows, dict):
        rows = [rows]
    headers = list(rows[0].keys())
    table = format_markdown_table(headers, [[row[h] for h in headers] for row in rows])
    print(f"\n## {title}\n{table}")
    benchmark.extra_info[title] = rows


@pytest.fixture
def emit(benchmark):
    """Fixture returning a row-emitting helper bound to this benchmark."""

    def _emit(title, rows):
        emit_rows(benchmark, title, rows)

    return _emit
