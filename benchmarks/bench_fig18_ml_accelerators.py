"""Fig. 18: comparison against TPU-like, MTIA-like and Gemmini-like accelerators."""

from _bench_utils import emit_table, run_spec


def test_fig18_ml_accelerator_comparison(benchmark):
    """Neural performance is comparable; symbolic and end-to-end strongly favour CogSys."""
    table = run_spec(benchmark, "fig18")
    emit_table(benchmark, table)
    rows = table.rows
    for row in rows:
        # Neural kernels run within a small factor of CogSys on every baseline.
        assert row["neural_vs_cogsys"] < 6.0
    nvsa_rows = {r["device"]: r for r in rows if r["workload"] == "nvsa"}
    # Symbolic kernels are far slower without reconfigurable nsPE support,
    # and the monolithic TPU-like array suffers the most.
    assert nvsa_rows["tpu_like"]["symbolic_vs_cogsys"] > 10
    assert nvsa_rows["tpu_like"]["symbolic_vs_cogsys"] > nvsa_rows["mtia_like"]["symbolic_vs_cogsys"]
    assert all(r["end_to_end_vs_cogsys"] > 1.0 for r in nvsa_rows.values())
