"""Operation-graph view of a workload for scheduling."""

from __future__ import annotations

import networkx as nx

from repro.errors import SchedulingError
from repro.workloads.base import KernelOp, Workload

__all__ = ["OperationGraph"]


class OperationGraph:
    """A dependency DAG over a workload's kernels.

    The scheduler interacts with the graph through ``ready_kernels`` /
    ``mark_complete``, which lets it discover newly unblocked kernels as
    execution progresses.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._graph = nx.DiGraph()
        for kernel in workload.kernels:
            self._graph.add_node(kernel.name, kernel=kernel)
        for kernel in workload.kernels:
            for dependency in kernel.depends_on:
                self._graph.add_edge(dependency, kernel.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise SchedulingError(
                f"workload '{workload.name}' has a cyclic dependency graph"
            )
        self._completed: set[str] = set()

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def kernel(self, name: str) -> KernelOp:
        """Return the kernel stored at a node."""
        try:
            return self._graph.nodes[name]["kernel"]
        except KeyError as exc:
            raise SchedulingError(f"unknown kernel '{name}'") from exc

    @property
    def completed(self) -> set[str]:
        """Names of kernels already marked complete."""
        return set(self._completed)

    @property
    def all_complete(self) -> bool:
        """True once every kernel has been marked complete."""
        return len(self._completed) == len(self)

    def ready_kernels(self, exclude: set[str] | None = None) -> list[KernelOp]:
        """Kernels whose dependencies are all complete and that are not done.

        ``exclude`` lists kernels that are currently executing and therefore
        neither complete nor schedulable.
        """
        exclude = exclude or set()
        ready = []
        for name in self._graph.nodes:
            if name in self._completed or name in exclude:
                continue
            predecessors = set(self._graph.predecessors(name))
            if predecessors <= self._completed:
                ready.append(self.kernel(name))
        return ready

    def mark_complete(self, name: str) -> None:
        """Mark one kernel as finished."""
        if name not in self._graph.nodes:
            raise SchedulingError(f"unknown kernel '{name}'")
        self._completed.add(name)

    def critical_path_length(self, weight_fn) -> float:
        """Length of the critical path under a per-kernel weight function."""
        lengths: dict[str, float] = {}
        for name in nx.topological_sort(self._graph):
            kernel = self.kernel(name)
            predecessors = list(self._graph.predecessors(name))
            longest_prefix = max((lengths[p] for p in predecessors), default=0.0)
            lengths[name] = longest_prefix + float(weight_fn(kernel))
        return max(lengths.values()) if lengths else 0.0
