"""Sequential and adaptive (adSCH) schedulers.

Both schedulers consume a *cycle model*: a callable
``cycles(kernel, num_cells) -> int`` supplied by the accelerator model (or an
ablated variant of it).  Element-wise kernels are assumed to run on the SIMD
unit, which is a separate resource, so they can overlap array kernels.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.scheduler.graph import OperationGraph
from repro.workloads.base import KernelKind, KernelOp, Stage, Workload

__all__ = ["ScheduledKernel", "ScheduleResult", "SequentialScheduler", "AdaptiveScheduler"]

#: type of the cycle-model callable
CycleModel = Callable[[KernelOp, int], int]


@dataclass(frozen=True)
class ScheduledKernel:
    """Placement of one kernel in the schedule."""

    name: str
    start_cycle: int
    end_cycle: int
    cells_used: int
    uses_simd: bool
    stage: Stage

    @property
    def duration(self) -> int:
        """Kernel duration in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one workload."""

    workload: str
    scheduler: str
    total_cycles: int
    entries: tuple[ScheduledKernel, ...]
    num_cells: int

    @property
    def array_occupancy(self) -> float:
        """Fraction of cell-cycles occupied by array kernels."""
        if self.total_cycles == 0:
            return 0.0
        busy = sum(
            entry.duration * entry.cells_used
            for entry in self.entries
            if not entry.uses_simd
        )
        return min(1.0, busy / (self.total_cycles * self.num_cells))

    def stage_cycles(self, stage: Stage) -> int:
        """Sum of kernel durations belonging to one stage."""
        return sum(entry.duration for entry in self.entries if entry.stage is stage)

    def entry(self, name: str) -> ScheduledKernel:
        """Look up the schedule entry of one kernel."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise SchedulingError(f"kernel '{name}' is not in the schedule")


def _uses_simd(kernel: KernelOp) -> bool:
    return kernel.kind is KernelKind.ELEMENTWISE


class SequentialScheduler:
    """Run every kernel on the full array, one after another.

    This reproduces the behaviour of conventional ML accelerators: no
    neural/symbolic interleaving, no cell partitioning, and therefore low
    utilisation whenever a kernel cannot fill the whole array.
    """

    name = "sequential"

    def __init__(self, cycle_model: CycleModel, num_cells: int) -> None:
        if num_cells < 1:
            raise SchedulingError(f"num_cells must be positive, got {num_cells}")
        self.cycle_model = cycle_model
        self.num_cells = num_cells

    def schedule(self, workload: Workload) -> ScheduleResult:
        """Produce the sequential schedule."""
        entries = []
        clock = 0
        for kernel in workload.topological_order():
            cells = self.num_cells
            duration = int(self.cycle_model(kernel, cells))
            entries.append(
                ScheduledKernel(
                    name=kernel.name,
                    start_cycle=clock,
                    end_cycle=clock + duration,
                    cells_used=0 if _uses_simd(kernel) else cells,
                    uses_simd=_uses_simd(kernel),
                    stage=kernel.stage,
                )
            )
            clock += duration
        return ScheduleResult(
            workload=workload.name,
            scheduler=self.name,
            total_cycles=clock,
            entries=tuple(entries),
            num_cells=self.num_cells,
        )


class AdaptiveScheduler:
    """Workload-aware greedy scheduler (adSCH).

    The scheduler is event driven: whenever cells (or the SIMD unit) free
    up, every kernel whose dependencies are satisfied competes for the free
    resources.  Neural kernels are prioritised for large cell blocks and
    symbolic kernels accept small ones, so symbolic work of one reasoning
    task fills the cells left idle by the neural work of another — the
    interleaving illustrated in Fig. 13 of the paper.
    """

    name = "adaptive"

    def __init__(
        self,
        cycle_model: CycleModel,
        num_cells: int,
        min_symbolic_cells: int = 1,
        min_neural_cells: int = 4,
    ) -> None:
        if num_cells < 1:
            raise SchedulingError(f"num_cells must be positive, got {num_cells}")
        if min_symbolic_cells < 1 or min_neural_cells < 1:
            raise SchedulingError("minimum cell allocations must be positive")
        self.cycle_model = cycle_model
        self.num_cells = num_cells
        self.min_symbolic_cells = min(min_symbolic_cells, num_cells)
        self.min_neural_cells = min(min_neural_cells, num_cells)

    # -- allocation policy --------------------------------------------------------
    def _preferred_cells(self, kernel: KernelOp, free_cells: int, num_ready: int) -> int:
        """How many cells to hand to a kernel given the current contention."""
        if _uses_simd(kernel):
            return 0
        minimum = (
            self.min_neural_cells
            if kernel.stage is Stage.NEURAL
            else self.min_symbolic_cells
        )
        if num_ready <= 1:
            return max(minimum, free_cells)
        fair_share = max(1, free_cells // num_ready)
        if kernel.stage is Stage.NEURAL:
            # Neural kernels take the larger block (Sec. VI-B step 3).
            return max(minimum, min(free_cells, fair_share * 2))
        return max(min(minimum, free_cells), min(free_cells, fair_share))

    # -- main loop -------------------------------------------------------------------
    def schedule(self, workload: Workload) -> ScheduleResult:
        """Produce the adaptive schedule."""
        graph = OperationGraph(workload)
        entries: list[ScheduledKernel] = []
        free_cells = self.num_cells
        simd_busy = False
        running: set[str] = set()
        clock = 0
        # Event queue of (end_cycle, sequence, kernel_name, cells, uses_simd).
        events: list[tuple[int, int, str, int, bool]] = []
        sequence = itertools.count()

        def try_dispatch() -> None:
            nonlocal free_cells, simd_busy
            ready = graph.ready_kernels(exclude=running)
            # Large neural kernels first, then large symbolic kernels.
            ready.sort(key=lambda k: (k.stage is not Stage.NEURAL, -k.flops))
            for kernel in ready:
                if _uses_simd(kernel):
                    if simd_busy:
                        continue
                    cells = 0
                    simd_busy = True
                else:
                    if free_cells == 0:
                        continue
                    cells = min(
                        free_cells,
                        self._preferred_cells(kernel, free_cells, len(ready)),
                    )
                    if cells == 0:
                        continue
                    free_cells -= cells
                duration = int(self.cycle_model(kernel, max(cells, 1)))
                end = clock + duration
                running.add(kernel.name)
                entries.append(
                    ScheduledKernel(
                        name=kernel.name,
                        start_cycle=clock,
                        end_cycle=end,
                        cells_used=cells,
                        uses_simd=_uses_simd(kernel),
                        stage=kernel.stage,
                    )
                )
                heapq.heappush(
                    events, (end, next(sequence), kernel.name, cells, _uses_simd(kernel))
                )

        try_dispatch()
        if not events and not graph.all_complete:
            raise SchedulingError(
                f"workload '{workload.name}' has no dispatchable kernels"
            )
        while events:
            end, _, name, cells, used_simd = heapq.heappop(events)
            clock = end
            graph.mark_complete(name)
            running.discard(name)
            if used_simd:
                simd_busy = False
            else:
                free_cells += cells
            # Drain all events completing at the same cycle before dispatching.
            while events and events[0][0] == clock:
                end, _, other, other_cells, other_simd = heapq.heappop(events)
                graph.mark_complete(other)
                running.discard(other)
                if other_simd:
                    simd_busy = False
                else:
                    free_cells += other_cells
            try_dispatch()

        if not graph.all_complete:
            raise SchedulingError(
                f"scheduler finished with incomplete kernels in '{workload.name}'"
            )
        return ScheduleResult(
            workload=workload.name,
            scheduler=self.name,
            total_cycles=clock,
            entries=tuple(entries),
            num_cells=self.num_cells,
        )
