"""Workload scheduling onto the CogSys compute resources.

Two schedulers are provided:

* :class:`SequentialScheduler` — the baseline behaviour of ML accelerators:
  kernels execute one at a time on the whole array, so the symbolic stage
  strictly follows the neural stage of the same task.
* :class:`AdaptiveScheduler` (adSCH) — the paper's workload-aware scheduler:
  kernels whose dependencies are satisfied are greedily packed onto
  partitioned cell blocks (cell-wise partitioning), symbolic kernels are
  interleaved with neural kernels of other reasoning tasks, and element-wise
  kernels are offloaded to the SIMD unit.

Both schedulers are independent of the hardware model: they take a cycle
model callable ``(kernel, num_cells) -> cycles`` so they can be reused with
ablated accelerator variants.
"""

from repro.scheduler.graph import OperationGraph
from repro.scheduler.schedulers import (
    AdaptiveScheduler,
    ScheduledKernel,
    ScheduleResult,
    SequentialScheduler,
)

__all__ = [
    "OperationGraph",
    "ScheduledKernel",
    "ScheduleResult",
    "SequentialScheduler",
    "AdaptiveScheduler",
]
