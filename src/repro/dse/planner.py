"""Serving capacity planner: fleet size x routing x batching for a p99 target.

The hardware sweep answers "which chip should we build"; this module
answers the deployment question — *how many* of them, behind which router
and batching policy, to serve an offered load within a tail-latency target.
:func:`plan_capacity` replays one seeded request stream against every
``(fleet size, router, policy)`` configuration through the request-level
simulator, scores each against the p99/SLO-attainment target, and
pareto-annotates the rows over (minimize fleet power, maximize goodput).
:func:`recommend` then picks the cheapest configuration that meets the
target.

Every configuration shares one memoized service model per backend, so the
whole plan costs a handful of kernel-graph simulations plus cheap event
loops — the same economics that make the serving sweeps fast.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.backends.cache import ExecutionCache
from repro.backends.registry import backend_info
from repro.dse.frontier import Objective, annotate_pareto
from repro.errors import DesignSpaceError
from repro.serving.batching import build_policy
from repro.serving.fleet import Fleet
from repro.serving.metrics import summarize_result
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import PoissonArrivals, WorkloadMix
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = ["PLANNER_OBJECTIVES", "plan_capacity", "recommend"]

#: capacity-plan objectives: cheapest fleet that still moves the most traffic
PLANNER_OBJECTIVES: tuple[Objective, ...] = (
    Objective("fleet_power_w", "min"),
    Objective("goodput_rps", "max"),
)

def _policy_kwargs(policy: str, batch_size: int, slo_s: float) -> dict:
    """Per-policy constructor arguments (mirrors the serving experiments)."""
    if policy == "fixed":
        return {"batch_size": batch_size, "max_wait_s": slo_s / 4}
    if policy == "continuous":
        return {"max_batch_size": batch_size, "slo_s": slo_s}
    return {}


def plan_capacity(
    offered_rps: float = 2000.0,
    target_p99_ms: float = 5.0,
    target_attainment: float = 0.99,
    chip_counts: Sequence[int] = (1, 2, 4, 8),
    routers: Sequence[str] = ("round_robin", "jsq"),
    policies: Sequence[str] = ("none", "continuous"),
    backend: str = "cogsys",
    workload_mix: Mapping[str, float] | None = None,
    requests: int = 400,
    max_batch_size: int = 8,
    seed: int = 0,
) -> list[dict]:
    """Score every fleet configuration against a tail-latency target.

    One seeded Poisson stream of ~``requests`` arrivals (the mean of the
    random draw) at ``offered_rps``, drawn from ``workload_mix`` (uniform
    over every registered workload by default), is served by each
    ``(chips, router, policy)`` combination on ``backend`` chips.  A row ``meets_target`` when its p99 stays within
    ``target_p99_ms`` *and* its SLO attainment (against the same target)
    reaches ``target_attainment``; ``fleet_power_w`` is the fleet's total
    chip power — the planner's cost axis.
    """
    if offered_rps <= 0:
        raise DesignSpaceError(f"offered_rps must be positive, got {offered_rps}")
    if target_p99_ms <= 0:
        raise DesignSpaceError(f"target_p99_ms must be positive, got {target_p99_ms}")
    if not 0 < target_attainment <= 1:
        raise DesignSpaceError(
            f"target_attainment must be in (0, 1], got {target_attainment}"
        )
    if requests < 1:
        raise DesignSpaceError(f"requests must be positive, got {requests}")
    if not chip_counts or not routers or not policies:
        raise DesignSpaceError(
            "plan_capacity needs at least one chip count, router and policy"
        )
    for count in chip_counts:
        if count < 1:
            raise DesignSpaceError(f"chip counts must be positive, got {count}")

    mix = (
        WorkloadMix(dict(workload_mix))
        if workload_mix
        else WorkloadMix.uniform(tuple(sorted(WORKLOAD_BUILDERS)))
    )
    slo_s = target_p99_ms * 1e-3
    chip_power_w = backend_info(backend).power_watts
    stream = PoissonArrivals(offered_rps, mix).generate(
        requests / offered_rps, seed=seed
    )
    if not stream:
        # The Poisson draw is random: P(no arrivals) = e^-requests, so tiny
        # request budgets can produce an empty stream for unlucky seeds.
        raise DesignSpaceError(
            f"the seeded traffic draw produced no requests (requests="
            f"{requests}, offered_rps={offered_rps}, seed={seed}); "
            "increase requests or change the seed"
        )
    model = ExecutionCache(backend=backend)

    rows = []
    for num_chips in chip_counts:
        for router in routers:
            for policy in policies:
                simulator = ServingSimulator(
                    service_model=model,
                    fleet=Fleet(num_chips=num_chips, router=router),
                    batching_policy=build_policy(
                        policy, **_policy_kwargs(policy, max_batch_size, slo_s)
                    ),
                )
                summary = summarize_result(
                    simulator.run(stream), slo_s, offered_rps=offered_rps
                )
                meets = (
                    summary["p99_ms"] <= target_p99_ms
                    and summary["slo_attainment"] >= target_attainment
                )
                rows.append(
                    {
                        "chips": num_chips,
                        "router": router,
                        "policy": policy,
                        "fleet_power_w": round(chip_power_w * num_chips, 3),
                        "p99_ms": summary["p99_ms"],
                        "slo_attainment": summary["slo_attainment"],
                        "goodput_rps": summary["goodput_rps"],
                        "utilization": summary["utilization"],
                        "mean_batch": summary["mean_batch"],
                        "energy_mj_per_request": summary["energy_mj_per_request"],
                        "meets_target": meets,
                    }
                )
    return annotate_pareto(rows, PLANNER_OBJECTIVES)


def recommend(rows: Sequence[Mapping[str, object]]) -> dict | None:
    """The cheapest plan row meeting its target, or ``None`` if none does.

    Ties on fleet power break toward higher goodput, then fewer chips, then
    row order — fully deterministic for a deterministic plan.
    """
    candidates = [dict(row) for row in rows if row.get("meets_target")]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda row: (
            row["fleet_power_w"],
            -float(row["goodput_rps"]),
            # A row with no chip count must lose ties, not win them.
            float(row.get("chips", float("inf"))),
        ),
    )
