"""Design-space sweeps: every grid point through the backend protocol.

:func:`sweep` expands a :class:`~repro.dse.grid.DesignSpace` into
:class:`~repro.backends.registry.CustomSpec` backends, executes the
requested workloads/batch sizes on each through a per-point
:class:`~repro.backends.cache.ExecutionCache`, and returns JSON-clean rows
(latency, throughput, energy per task, power, area, occupancy) annotated
with a ``pareto`` column per ``(workload, batch)`` group.

A :class:`DesignSpaceSweeper` owns the caches: repeated :func:`sweep` calls
*within one process* that share a sweeper (growing a grid, adding batch
sizes, sweeping several spaces over the same points) never re-simulate a
``(design, workload, batch)`` point.  Across processes — e.g. consecutive
``repro dse`` invocations — reuse comes from the engine's on-disk result
cache instead.  Sweeps are fully deterministic: the models contain no
randomness and rows come back in grid-expansion order.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.backends.cache import ExecutionCache
from repro.dse.frontier import Objective, pareto_frontier, parse_objectives
from repro.dse.grid import (
    DesignPoint,
    DesignSpace,
    axis_label,
    format_axis_value,
    get_design_space,
)
from repro.errors import DesignSpaceError
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = ["DEFAULT_OBJECTIVES", "DesignSpaceSweeper", "sweep"]

#: default hardware-sweep objectives: fast, efficient, small
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective("latency_ms", "min"),
    Objective("energy_mj_per_task", "min"),
    Objective("area_mm2", "min"),
)


def _resolve_space(space: DesignSpace | str) -> DesignSpace:
    """Accept a design space or its registry name."""
    if isinstance(space, DesignSpace):
        return space
    return get_design_space(space)


def _resolve_objectives(
    objectives: Sequence[Objective] | str | None,
) -> tuple[Objective, ...]:
    """Accept objective tuples or the CLI's ``key:sense,...`` string form."""
    if objectives is None:
        return DEFAULT_OBJECTIVES
    if isinstance(objectives, str):
        return parse_objectives(objectives)
    return tuple(objectives)


class DesignSpaceSweeper:
    """Execution caches shared across sweep calls, one per design point.

    Distinct design points are distinct backends, so they cannot share a
    single :class:`ExecutionCache`; what *is* shared is the cache of each
    point across workloads, batch sizes and repeated :func:`sweep` calls.
    ``cached_reports`` counts distinct simulations actually performed —
    tests use it to prove cache reuse.
    """

    def __init__(self, scheduler: str | None = None) -> None:
        self.scheduler = scheduler
        self._caches: dict[DesignPoint, ExecutionCache] = {}

    def cache_for(self, point: DesignPoint) -> ExecutionCache:
        """The (memoized) execution cache of one design point."""
        if point not in self._caches:
            self._caches[point] = ExecutionCache(
                backend=point.spec(), scheduler=self.scheduler
            )
        return self._caches[point]

    @property
    def cached_reports(self) -> int:
        """Distinct ``(design, workload, batch)`` simulations performed."""
        return sum(cache.cached_reports for cache in self._caches.values())


def _point_rows(
    point: DesignPoint,
    cache: ExecutionCache,
    workloads: Sequence[str],
    batch_sizes: Sequence[int],
) -> list[dict]:
    """Metric rows of one design point across workloads and batch sizes."""
    backend = cache.backend
    accelerator = backend.accelerator
    area_mm2 = round(accelerator.area_mm2(), 3)
    power_w = round(backend.power_watts, 3)
    rows = []
    for workload in workloads:
        for batch in batch_sizes:
            report = cache.report(workload, batch)
            rows.append(
                {
                    "design": point.name,
                    **{
                        axis_label(key): _format(value)
                        for key, value in point.params
                    },
                    "workload": workload,
                    "batch": batch,
                    "latency_ms": round(report.total_seconds * 1e3, 4),
                    "throughput_tps": round(batch / report.total_seconds, 1),
                    "energy_mj_per_task": round(
                        report.energy_joules / batch * 1e3, 4
                    ),
                    "power_w": power_w,
                    "area_mm2": area_mm2,
                    "occupancy": round(report.array_occupancy or 0.0, 4),
                }
            )
    return rows


def _format(value: object) -> object:
    """Axis values as table cells: booleans as ints, big floats G-scaled."""
    if isinstance(value, (bool, float)):
        return format_axis_value(value)
    return value


def sweep(
    space: DesignSpace | str,
    workloads: Sequence[str] = ("nvsa",),
    batch_sizes: Sequence[int] = (1,),
    scheduler: str | None = None,
    smoke: bool = False,
    objectives: Sequence[Objective] | str | None = None,
    sweeper: DesignSpaceSweeper | None = None,
) -> list[dict]:
    """Sweep ``space`` and return pareto-annotated metric rows.

    Every grid point executes every ``(workload, batch size)`` combination;
    the ``pareto`` column marks designs that are non-dominated *within
    their own (workload, batch) group* — comparing latencies across
    different workloads would be meaningless.  Pass a shared ``sweeper`` to
    reuse simulations across calls.
    """
    resolved_space = _resolve_space(space)
    resolved_objectives = _resolve_objectives(objectives)
    if not workloads:
        raise DesignSpaceError("sweep needs at least one workload")
    if len(set(workloads)) != len(tuple(workloads)):
        raise DesignSpaceError(f"duplicate workloads in sweep: {list(workloads)}")
    unknown = sorted(set(workloads) - set(WORKLOAD_BUILDERS))
    if unknown:
        raise DesignSpaceError(
            f"unknown workload(s) {unknown}; known: {sorted(WORKLOAD_BUILDERS)}"
        )
    sizes = tuple(batch_sizes)
    if not sizes:
        raise DesignSpaceError("sweep needs at least one batch size")
    if len(set(sizes)) != len(sizes):
        raise DesignSpaceError(f"duplicate batch sizes in sweep: {list(sizes)}")
    for size in sizes:
        if size < 1:
            raise DesignSpaceError(f"batch sizes must be positive, got {size}")
    sweeper = sweeper or DesignSpaceSweeper(scheduler=scheduler)

    rows: list[dict] = []
    for point in resolved_space.points(smoke=smoke):
        rows.extend(
            _point_rows(point, sweeper.cache_for(point), workloads, sizes)
        )
    # Frontier membership is computed per (workload, batch) group, then the
    # flag is attached in one pass so rows keep grid-expansion order.
    frontier_ids: set[int] = set()
    for workload in workloads:
        for batch in sizes:
            group = [
                row
                for row in rows
                if row["workload"] == workload and row["batch"] == batch
            ]
            frontier_ids.update(
                id(row) for row in pareto_frontier(group, resolved_objectives)
            )
    return [{**row, "pareto": id(row) in frontier_ids} for row in rows]
