"""Parameterized design-space grids over CogSys accelerator configurations.

A *design space* is a named Cartesian grid of :class:`CogSysConfig` axes
(PE-array shape, SIMD width, DRAM bandwidth, frequency) plus the two
architectural switches (``scale_out``, ``reconfigurable_symbolic``).  Each
grid point expands to one :class:`~repro.backends.registry.CustomSpec`, so
every point is an ordinary backend behind the unified execution protocol —
the sweep layer (:mod:`repro.dse.sweep`) never special-cases how a candidate
design executes a workload.

Built-in spaces cover the paper's headline design arguments (scale-out cell
count, PE-array sizing, memory bandwidth, frequency/voltage corners) and a
combined coarse grid for cross-axis frontiers.  Every space carries a
*smoke* grid — a 2-4 point subset used by tests and ``repro dse run
--smoke`` so CI exercises the full pipeline in seconds.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, fields
from itertools import product

from repro.backends.registry import CustomSpec
from repro.errors import DesignSpaceError
from repro.hardware.config import CogSysConfig

__all__ = [
    "Axis",
    "DesignPoint",
    "DesignSpace",
    "DESIGN_SPACES",
    "axis_label",
    "expand_grid",
    "format_axis_value",
    "get_design_space",
    "design_space_names",
    "describe_design_spaces",
]

#: axis names that are architectural switches rather than config fields
_SWITCH_AXES = frozenset({"scale_out", "reconfigurable_symbolic"})

#: CogSysConfig constructor fields a grid may sweep
_CONFIG_AXES = frozenset(field.name for field in fields(CogSysConfig))

#: compact per-axis labels used to build deterministic point names
_AXIS_LABELS = {
    "num_cells": "cells",
    "cell_rows": "rows",
    "cell_cols": "cols",
    "simd_pes": "simd",
    "frequency_hz": "f",
    "dram_bandwidth_bytes_per_s": "bw",
    "sram_a_bytes": "srama",
    "sram_b_bytes": "sramb",
    "sram_c_bytes": "sramc",
    "scale_out": "so",
    "reconfigurable_symbolic": "nspe",
    "precision": "prec",
    "dispatch_overhead_cycles": "disp",
}


def axis_label(name: str) -> str:
    """Compact column label of one axis (``dram_bandwidth_bytes_per_s -> bw``)."""
    return _AXIS_LABELS.get(name, name)


def format_axis_value(value: object) -> str:
    """Render one axis value compactly and deterministically (``700e9 -> 700G``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        # The 1e8 cut keeps sub-GHz clock corners in G units (0.4e9 -> 0.4G)
        # while SRAM-scale byte counts stay in M units.
        if value >= 1e8:
            return f"{value / 1e9:g}G"
        if value >= 1e6:
            return f"{value / 1e6:g}M"
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class Axis:
    """One swept dimension of a design space: a name and its candidate values.

    ``name`` must be a :class:`CogSysConfig` constructor field (for example
    ``num_cells`` or ``dram_bandwidth_bytes_per_s``) or one of the
    architectural switches ``scale_out`` / ``reconfigurable_symbolic``.
    """

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name not in _CONFIG_AXES | _SWITCH_AXES:
            raise DesignSpaceError(
                f"unknown design axis '{self.name}'; known axes: "
                f"{sorted(_CONFIG_AXES | _SWITCH_AXES)}"
            )
        if not self.values:
            raise DesignSpaceError(f"axis '{self.name}' has no values")
        if len(set(self.values)) != len(self.values):
            raise DesignSpaceError(f"axis '{self.name}' repeats values")

    @property
    def label(self) -> str:
        """Compact label of this axis used in design-point names."""
        return axis_label(self.name)


def expand_grid(axes: Sequence[Axis]) -> list[dict[str, object]]:
    """Cartesian product of ``axes`` as ordered parameter dictionaries.

    Expansion order is deterministic: the last axis varies fastest, exactly
    like nested for-loops over ``axes`` in order.
    """
    if not axes:
        raise DesignSpaceError("cannot expand an empty axis list")
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise DesignSpaceError(f"duplicate axes in grid: {names}")
    return [
        dict(zip(names, values))
        for values in product(*(axis.values for axis in axes))
    ]


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: a named bundle of swept parameter values."""

    space: str
    params: tuple[tuple[str, object], ...]

    @classmethod
    def from_params(cls, space: str, params: Mapping[str, object]) -> "DesignPoint":
        """Build a point from a parameter mapping (preserving its order)."""
        return cls(space=space, params=tuple(params.items()))

    @property
    def name(self) -> str:
        """Deterministic compact label, e.g. ``cells16-simd512-so1``."""
        parts = [
            f"{axis_label(key)}{format_axis_value(value)}" for key, value in self.params
        ]
        return "-".join(parts)

    def as_dict(self) -> dict[str, object]:
        """The swept parameters as a plain dictionary."""
        return dict(self.params)

    def spec(self) -> CustomSpec:
        """Expand this point to a buildable :class:`CustomSpec` backend."""
        params = self.as_dict()
        switches = {
            key: bool(params.pop(key)) for key in tuple(params) if key in _SWITCH_AXES
        }
        try:
            config = CogSysConfig(**params)
        except TypeError as error:  # pragma: no cover - guarded by Axis
            raise DesignSpaceError(str(error)) from None
        return CustomSpec(
            name=f"{self.space}:{self.name}",
            cogsys_config=config,
            scale_out=switches.get("scale_out", True),
            reconfigurable_symbolic=switches.get("reconfigurable_symbolic", True),
        )


@dataclass(frozen=True)
class DesignSpace:
    """A named grid of design axes with a report-scale and a smoke-scale grid."""

    name: str
    description: str
    axes: tuple[Axis, ...]
    smoke_axes: tuple[Axis, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignSpaceError("design space needs a non-empty name")
        full = {axis.name for axis in self.axes}
        smoke = {axis.name for axis in self.smoke_axes}
        if not smoke <= full:
            raise DesignSpaceError(
                f"design space '{self.name}' smoke axes {sorted(smoke - full)} "
                "are not part of the full grid"
            )

    def grid(self, smoke: bool = False) -> tuple[Axis, ...]:
        """The axis tuple of the requested scale."""
        return self.smoke_axes if smoke else self.axes

    def points(self, smoke: bool = False) -> tuple[DesignPoint, ...]:
        """Every grid point of this space, in deterministic expansion order."""
        return tuple(
            DesignPoint.from_params(self.name, params)
            for params in expand_grid(self.grid(smoke))
        )

    def num_points(self, smoke: bool = False) -> int:
        """Grid cardinality without materializing the points."""
        total = 1
        for axis in self.grid(smoke):
            total *= len(axis.values)
        return total


def _space(
    name: str,
    description: str,
    axes: Iterable[tuple[str, tuple]],
    smoke_axes: Iterable[tuple[str, tuple]],
) -> DesignSpace:
    """Shorthand constructor used by the built-in space table below."""
    return DesignSpace(
        name=name,
        description=description,
        axes=tuple(Axis(axis_name, values) for axis_name, values in axes),
        smoke_axes=tuple(Axis(axis_name, values) for axis_name, values in smoke_axes),
    )


#: design-space name -> grid, in presentation order
DESIGN_SPACES: dict[str, DesignSpace] = {
    space.name: space
    for space in (
        _space(
            "pe_array",
            "PE provisioning: scale-out cell count x SIMD width",
            axes=(
                ("num_cells", (4, 8, 16, 32)),
                ("simd_pes", (256, 512, 1024)),
            ),
            smoke_axes=(
                ("num_cells", (8, 16)),
                ("simd_pes", (512,)),
            ),
        ),
        _space(
            "memory",
            "DRAM interface bandwidth sweep at the taped-out core",
            axes=(
                (
                    "dram_bandwidth_bytes_per_s",
                    (100e9, 200e9, 400e9, 700e9, 1400e9),
                ),
            ),
            smoke_axes=(("dram_bandwidth_bytes_per_s", (200e9, 700e9)),),
        ),
        _space(
            "frequency",
            "clock-frequency corners at the taped-out array shape",
            axes=(("frequency_hz", (0.4e9, 0.8e9, 1.2e9, 1.6e9)),),
            smoke_axes=(("frequency_hz", (0.4e9, 0.8e9)),),
        ),
        _space(
            "scaleout",
            "scale-out degree x monolithic-vs-scalable array (Fig. 19 axis)",
            axes=(
                ("num_cells", (4, 8, 16, 32)),
                ("scale_out", (True, False)),
            ),
            smoke_axes=(
                ("num_cells", (8, 16)),
                ("scale_out", (True, False)),
            ),
        ),
        _space(
            "cogsys",
            "combined coarse grid across PE, SIMD, bandwidth and scale-out",
            axes=(
                ("num_cells", (8, 16, 32)),
                ("simd_pes", (256, 512)),
                ("dram_bandwidth_bytes_per_s", (400e9, 700e9)),
                ("scale_out", (True, False)),
            ),
            smoke_axes=(
                ("num_cells", (8, 16)),
                ("dram_bandwidth_bytes_per_s", (400e9, 700e9)),
                ("scale_out", (True, False)),
            ),
        ),
    )
}


def get_design_space(name: str) -> DesignSpace:
    """Look up a design space by name or raise a typed error."""
    try:
        return DESIGN_SPACES[name]
    except KeyError:
        raise DesignSpaceError(
            f"unknown design space '{name}'; known: {', '.join(DESIGN_SPACES)}"
        ) from None


def design_space_names() -> tuple[str, ...]:
    """Every built-in design-space name, in presentation order."""
    return tuple(DESIGN_SPACES)


def describe_design_spaces() -> list[dict]:
    """JSON-clean rows describing every built-in design space."""
    return [
        {
            "space": space.name,
            "axes": " x ".join(
                f"{axis.name}[{len(axis.values)}]" for axis in space.axes
            ),
            "points": space.num_points(),
            "smoke_points": space.num_points(smoke=True),
            "description": space.description,
        }
        for space in DESIGN_SPACES.values()
    ]
