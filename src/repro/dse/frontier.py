"""Pareto-dominance reduction over experiment result rows.

The design-space explorer reduces sweeps to *Pareto frontiers*: the subset
of candidate designs for which no other candidate is at least as good on
every objective and strictly better on one.  Objectives are ``(key, sense)``
pairs over plain row dictionaries, so the same machinery reduces hardware
sweeps (minimize latency/energy/area) and serving capacity plans (minimize
fleet power, maximize goodput) without knowing what the rows mean.

All functions are pure and order-preserving: rows come back in their input
order, which keeps tables deterministic and lets the engine's JSON
round-trip produce byte-identical cached results.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import DesignSpaceError

__all__ = [
    "Objective",
    "parse_objectives",
    "format_objectives",
    "dominates",
    "pareto_frontier",
    "annotate_pareto",
]

#: accepted objective senses
_SENSES = ("min", "max")


@dataclass(frozen=True)
class Objective:
    """One optimization objective: a row key and a sense (``min``/``max``)."""

    key: str
    sense: str = "min"

    def __post_init__(self) -> None:
        if self.sense not in _SENSES:
            raise DesignSpaceError(
                f"objective '{self.key}' has unknown sense '{self.sense}' "
                f"(expected one of {list(_SENSES)})"
            )

    def value(self, row: Mapping[str, object]) -> float:
        """The objective value of ``row``, as a float, or a typed error."""
        try:
            raw = row[self.key]
        except KeyError:
            raise DesignSpaceError(
                f"row is missing objective key '{self.key}'; "
                f"row keys: {sorted(row)}"
            ) from None
        try:
            return float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise DesignSpaceError(
                f"objective '{self.key}' is not numeric in row: {raw!r}"
            ) from None


def parse_objectives(text: str) -> tuple[Objective, ...]:
    """Parse ``"latency_ms:min,goodput_rps:max"`` into objective tuples.

    The sense defaults to ``min`` when omitted (``"latency_ms,energy_mj"``).
    """
    objectives = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, separator, sense = chunk.partition(":")
        if not key:
            raise DesignSpaceError(f"objective '{chunk}' has no key")
        objectives.append(Objective(key, sense if separator else "min"))
    if not objectives:
        raise DesignSpaceError(f"no objectives found in {text!r}")
    keys = [objective.key for objective in objectives]
    if len(set(keys)) != len(keys):
        raise DesignSpaceError(f"duplicate objective keys in {text!r}")
    return tuple(objectives)


def format_objectives(objectives: Sequence[Objective]) -> str:
    """Inverse of :func:`parse_objectives` (used for provenance columns)."""
    return ",".join(f"{objective.key}:{objective.sense}" for objective in objectives)


def dominates(
    winner: Mapping[str, object],
    loser: Mapping[str, object],
    objectives: Sequence[Objective],
) -> bool:
    """Whether ``winner`` Pareto-dominates ``loser``.

    Dominance requires ``winner`` to be at least as good on *every*
    objective and strictly better on at least one — identical rows therefore
    do not dominate each other, so exact ties survive on the frontier.
    """
    if not objectives:
        raise DesignSpaceError("dominance needs at least one objective")
    strictly_better = False
    for objective in objectives:
        a = objective.value(winner)
        b = objective.value(loser)
        if objective.sense == "max":
            a, b = -a, -b
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    rows: Sequence[Mapping[str, object]], objectives: Sequence[Objective]
) -> list:
    """The non-dominated subset of ``rows``, preserving input order."""
    return [
        row
        for index, row in enumerate(rows)
        if not any(
            dominates(other, row, objectives)
            for other_index, other in enumerate(rows)
            if other_index != index
        )
    ]


def annotate_pareto(
    rows: Sequence[Mapping[str, object]],
    objectives: Sequence[Objective],
    flag: str = "pareto",
) -> list[dict]:
    """Copy ``rows`` with a boolean ``flag`` column marking frontier members."""
    frontier = {id(row) for row in pareto_frontier(rows, objectives)}
    return [{**row, flag: id(row) in frontier} for row in rows]
