"""Design-space exploration: grids, Pareto frontiers, capacity planning.

The paper's headline results are design-space arguments — ablations, PE
design choices and scale-out sweeps that justify the taped-out accelerator
configuration.  This package turns those point arguments into a systematic
subsystem:

* :mod:`repro.dse.grid` — named Cartesian grids over
  :class:`~repro.hardware.config.CogSysConfig` axes, expanded to
  :class:`~repro.backends.registry.CustomSpec` backends,
* :mod:`repro.dse.sweep` — execution of every grid point through the
  unified backend protocol with per-point memoized reports,
* :mod:`repro.dse.frontier` — Pareto-dominance reduction over result rows,
* :mod:`repro.dse.planner` — serving capacity planning (fleet size x
  routing x batching against a p99 target).

The ``dse_*`` experiment specs in :mod:`repro.evaluation.registry` and the
``repro dse`` CLI are thin layers over these functions.
"""

from repro.dse.frontier import (
    Objective,
    annotate_pareto,
    dominates,
    format_objectives,
    pareto_frontier,
    parse_objectives,
)
from repro.dse.grid import (
    DESIGN_SPACES,
    Axis,
    DesignPoint,
    DesignSpace,
    axis_label,
    describe_design_spaces,
    design_space_names,
    expand_grid,
    format_axis_value,
    get_design_space,
)
from repro.dse.planner import PLANNER_OBJECTIVES, plan_capacity, recommend
from repro.dse.sweep import DEFAULT_OBJECTIVES, DesignSpaceSweeper, sweep

__all__ = [
    "Axis",
    "DesignPoint",
    "DesignSpace",
    "DESIGN_SPACES",
    "DEFAULT_OBJECTIVES",
    "DesignSpaceSweeper",
    "Objective",
    "PLANNER_OBJECTIVES",
    "annotate_pareto",
    "axis_label",
    "describe_design_spaces",
    "design_space_names",
    "dominates",
    "expand_grid",
    "format_axis_value",
    "format_objectives",
    "get_design_space",
    "pareto_frontier",
    "parse_objectives",
    "plan_capacity",
    "recommend",
    "sweep",
]
