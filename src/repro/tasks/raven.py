"""Synthetic RAVEN task generator.

RAVEN [Zhang et al., CVPR 2019] poses 3x3 Raven's-Progressive-Matrices
problems over seven panel *constellations* (center, 2x2 grid, 3x3 grid,
left-right, up-down, out-in center, out-in grid).  Each panel is described
by per-component attributes (type, size, color, and number for grid
constellations) and every attribute evolves along each row according to one
of the RAVEN rules (constant, progression, arithmetic, distribute-three).

The generator below produces the same symbolic structure: ground-truth
attribute values for the eight context panels, the correct answer and a set
of distractor candidates.  Rendering to pixels is intentionally skipped —
the perception simulator consumes these symbolic descriptions directly (see
the "Design notes" section of the top-level ``README.md`` for the
substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskGenerationError
from repro.symbolic.rules import (
    ArithmeticRule,
    ConstantRule,
    DistributeThreeRule,
    ProgressionRule,
    Rule,
)
from repro.tasks.base import RPMTask, TaskBatch

__all__ = ["RavenConfiguration", "RavenGenerator", "RAVEN_CONFIGURATIONS"]

#: canonical RAVEN attribute value domains
TYPE_VALUES = ("triangle", "square", "pentagon", "hexagon", "circle")
SIZE_VALUES = tuple(f"size_{i}" for i in range(6))
COLOR_VALUES = tuple(f"color_{i}" for i in range(10))


@dataclass(frozen=True)
class RavenConfiguration:
    """One RAVEN panel constellation.

    Attributes
    ----------
    name:
        Constellation identifier (e.g. ``"center"``, ``"2x2_grid"``).
    components:
        Independent visual components whose attributes each follow their own
        rule (e.g. ``("left", "right")`` for the left-right constellation).
    grid_slots:
        Number of object slots per component; values above 1 add a
        ``number`` attribute whose domain is ``1..grid_slots``.
    """

    name: str
    components: tuple[str, ...]
    grid_slots: int = 1

    def __post_init__(self) -> None:
        if not self.components:
            raise TaskGenerationError(f"configuration '{self.name}' has no components")
        if self.grid_slots < 1:
            raise TaskGenerationError(
                f"configuration '{self.name}' needs at least one slot"
            )

    def attribute_domains(self) -> dict[str, tuple[str, ...]]:
        """Flat attribute -> value-domain mapping for this constellation."""
        domains: dict[str, tuple[str, ...]] = {}
        for component in self.components:
            domains[f"{component}.type"] = TYPE_VALUES
            domains[f"{component}.size"] = SIZE_VALUES
            domains[f"{component}.color"] = COLOR_VALUES
            if self.grid_slots > 1:
                domains[f"{component}.number"] = tuple(
                    str(count) for count in range(1, self.grid_slots + 1)
                )
        return domains


#: the seven constellations evaluated by the paper (Tab. VII)
RAVEN_CONFIGURATIONS: dict[str, RavenConfiguration] = {
    "center": RavenConfiguration("center", ("center",)),
    "2x2_grid": RavenConfiguration("2x2_grid", ("grid",), grid_slots=4),
    "3x3_grid": RavenConfiguration("3x3_grid", ("grid",), grid_slots=9),
    "left_right": RavenConfiguration("left_right", ("left", "right")),
    "up_down": RavenConfiguration("up_down", ("up", "down")),
    "out_in_center": RavenConfiguration("out_in_center", ("out", "in")),
    "out_in_grid": RavenConfiguration("out_in_grid", ("out", "in_grid"), grid_slots=4),
}


class RavenGenerator:
    """Generate RAVEN-style RPM tasks for one constellation."""

    #: dataset tag used in task names
    dataset_name = "raven"

    def __init__(
        self,
        configuration: str | RavenConfiguration = "center",
        num_candidates: int = 8,
        seed: int | None = None,
    ) -> None:
        if isinstance(configuration, str):
            try:
                configuration = RAVEN_CONFIGURATIONS[configuration]
            except KeyError as exc:
                raise TaskGenerationError(
                    f"unknown RAVEN configuration '{configuration}'; known: "
                    f"{sorted(RAVEN_CONFIGURATIONS)}"
                ) from exc
        if num_candidates < 2:
            raise TaskGenerationError(
                f"num_candidates must be at least 2, got {num_candidates}"
            )
        self.configuration = configuration
        self.num_candidates = num_candidates
        self._rng = np.random.default_rng(seed)
        self.attribute_domains = configuration.attribute_domains()

    # -- rule selection -----------------------------------------------------
    def _candidate_rules(self, attribute: str, domain_size: int) -> list[Rule]:
        """Rules that can govern ``attribute`` given its domain size."""
        rules: list[Rule] = [ConstantRule()]
        for step in (1, 2, -1, -2):
            if domain_size > 2 * abs(step):
                rules.append(ProgressionRule(step))
        if domain_size >= 3:
            rules.append(DistributeThreeRule())
        # Arithmetic acts on magnitude-like attributes (number, size, color).
        kind = attribute.rsplit(".", maxsplit=1)[-1]
        if kind in {"number", "size", "color"} and domain_size >= 3:
            rules.append(ArithmeticRule(subtract=False))
            rules.append(ArithmeticRule(subtract=True))
        return rules

    # -- row generation -------------------------------------------------------
    def _generate_rows(self, rule: Rule, domain_size: int) -> list[tuple[int, int, int]]:
        """Generate three rows of value indices consistent with ``rule``."""
        if isinstance(rule, ConstantRule):
            return [self._constant_row(domain_size) for _ in range(3)]
        if isinstance(rule, ProgressionRule):
            return [self._progression_row(rule.step, domain_size) for _ in range(3)]
        if isinstance(rule, ArithmeticRule):
            return [self._arithmetic_row(rule, domain_size) for _ in range(3)]
        if isinstance(rule, DistributeThreeRule):
            return self._distribute_three_rows(domain_size)
        raise TaskGenerationError(f"unsupported rule type {type(rule).__name__}")

    def _constant_row(self, domain_size: int) -> tuple[int, int, int]:
        value = int(self._rng.integers(0, domain_size))
        return (value, value, value)

    def _progression_row(self, step: int, domain_size: int) -> tuple[int, int, int]:
        low = max(0, -2 * step)
        high = min(domain_size, domain_size - 2 * step)
        if high <= low:
            raise TaskGenerationError(
                f"progression step {step} does not fit a domain of {domain_size}"
            )
        start = int(self._rng.integers(low, high))
        return (start, start + step, start + 2 * step)

    def _arithmetic_row(self, rule: ArithmeticRule, domain_size: int) -> tuple[int, int, int]:
        if rule.subtract:
            first = int(self._rng.integers(0, domain_size))
            second = int(self._rng.integers(0, first + 1))
            return (first, second, first - second)
        first = int(self._rng.integers(0, domain_size))
        second = int(self._rng.integers(0, domain_size - first))
        return (first, second, first + second)

    def _distribute_three_rows(self, domain_size: int) -> list[tuple[int, int, int]]:
        values = self._rng.choice(domain_size, size=3, replace=False)
        rows = []
        for _ in range(3):
            permutation = self._rng.permutation(values)
            rows.append(tuple(int(v) for v in permutation))
        return rows

    # -- candidate (answer set) generation ---------------------------------------
    def _make_distractor(self, answer: dict[str, str]) -> dict[str, str]:
        """RAVEN-style distractor: perturb a random subset of attributes."""
        distractor = dict(answer)
        attributes = list(self.attribute_domains)
        num_changes = int(self._rng.integers(1, min(3, len(attributes)) + 1))
        changed = self._rng.choice(attributes, size=num_changes, replace=False)
        for attribute in changed:
            domain = self.attribute_domains[attribute]
            alternatives = [value for value in domain if value != answer[attribute]]
            distractor[attribute] = str(self._rng.choice(alternatives))
        return distractor

    def _build_candidates(self, answer: dict[str, str]) -> tuple[list[dict[str, str]], int]:
        candidates = [dict(answer)]
        attempts = 0
        while len(candidates) < self.num_candidates:
            attempts += 1
            if attempts > 200 * self.num_candidates:
                raise TaskGenerationError(
                    "could not generate enough unique candidate panels"
                )
            distractor = self._make_distractor(answer)
            if distractor not in candidates:
                candidates.append(distractor)
        order = self._rng.permutation(len(candidates))
        shuffled = [candidates[int(i)] for i in order]
        answer_index = shuffled.index(answer)
        return shuffled, answer_index

    # -- public API -----------------------------------------------------------------
    def generate_task(self) -> RPMTask:
        """Generate one task instance."""
        panels: list[dict[str, str]] = [dict() for _ in range(9)]
        rules: dict[str, str] = {}
        for attribute, domain in self.attribute_domains.items():
            domain_size = len(domain)
            candidate_rules = self._candidate_rules(attribute, domain_size)
            rule = candidate_rules[int(self._rng.integers(0, len(candidate_rules)))]
            rules[attribute] = rule.name
            rows = self._generate_rows(rule, domain_size)
            for row_index, row in enumerate(rows):
                for column_index, value_index in enumerate(row):
                    panels[row_index * 3 + column_index][attribute] = domain[value_index]

        answer = panels[8]
        candidates, answer_index = self._build_candidates(answer)
        return RPMTask(
            name=f"{self.dataset_name}/{self.configuration.name}",
            context=tuple(panels[:8]),
            candidates=tuple(candidates),
            answer_index=answer_index,
            rules=rules,
            attribute_domains=dict(self.attribute_domains),
        )

    def generate(self, num_tasks: int) -> TaskBatch:
        """Generate a batch of tasks."""
        if num_tasks < 1:
            raise TaskGenerationError(f"num_tasks must be positive, got {num_tasks}")
        return TaskBatch(
            name=f"{self.dataset_name}/{self.configuration.name}",
            tasks=tuple(self.generate_task() for _ in range(num_tasks)),
        )
