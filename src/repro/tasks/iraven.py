"""I-RAVEN: RAVEN with an unbiased answer set.

The original RAVEN answer sets can be solved by a context-blind majority
vote because every distractor is a one-attribute perturbation of the correct
answer.  I-RAVEN [Hu et al., AAAI 2021] regenerates the candidates with an
*attribute bisection tree*: attributes to perturb are chosen hierarchically
so that, for every attribute, the correct value appears in exactly half of
the candidates.  This generator reuses the RAVEN context/rule machinery and
only replaces the candidate construction.
"""

from __future__ import annotations

from repro.errors import TaskGenerationError
from repro.tasks.raven import RavenGenerator

__all__ = ["IRavenGenerator"]


class IRavenGenerator(RavenGenerator):
    """RAVEN generator with attribute-bisection-tree candidate sets."""

    dataset_name = "iraven"

    def _build_candidates(self, answer: dict[str, str]) -> tuple[list[dict[str, str]], int]:
        """Build an unbiased answer set via a 3-level attribute bisection tree.

        Candidate ``i`` (for ``i`` in ``0..7``) differs from the correct
        answer exactly on the attributes whose bit is set in ``i``:  bit 0,
        1 and 2 each select one attribute (sampled without replacement when
        possible), so every attribute value is shared by exactly half of the
        candidates and a majority vote over the answer set carries no signal.
        """
        attributes = list(self.attribute_domains)
        depth = min(3, len(attributes))
        chosen = list(
            self._rng.choice(attributes, size=depth, replace=len(attributes) < depth)
        )
        alternates: dict[str, str] = {}
        for attribute in chosen:
            domain = self.attribute_domains[attribute]
            alternatives = [value for value in domain if value != answer[attribute]]
            if not alternatives:
                raise TaskGenerationError(
                    f"attribute '{attribute}' has a single value; cannot build distractors"
                )
            alternates[attribute] = str(self._rng.choice(alternatives))

        candidates: list[dict[str, str]] = []
        for code in range(2**depth):
            candidate = dict(answer)
            for bit, attribute in enumerate(chosen):
                if code & (1 << bit):
                    candidate[attribute] = alternates[attribute]
            if candidate not in candidates:
                candidates.append(candidate)

        # Top up (duplicates can occur when the same attribute was sampled
        # twice for small attribute sets) with RAVEN-style perturbations.
        attempts = 0
        while len(candidates) < self.num_candidates:
            attempts += 1
            if attempts > 200 * self.num_candidates:
                raise TaskGenerationError(
                    "could not generate enough unique candidate panels"
                )
            distractor = self._make_distractor(answer)
            if distractor not in candidates:
                candidates.append(distractor)
        candidates = candidates[: self.num_candidates]

        order = self._rng.permutation(len(candidates))
        shuffled = [candidates[int(i)] for i in order]
        answer_index = shuffled.index(dict(answer))
        return shuffled, answer_index

    @staticmethod
    def answer_value_balance(candidates: list[dict[str, str]], attribute: str) -> float:
        """Fraction of candidates sharing the most common value of ``attribute``.

        For a perfectly unbiased answer set built from a full bisection tree
        this is 0.5, which is what removes the majority-vote shortcut.
        """
        values = [candidate[attribute] for candidate in candidates]
        counts = {value: values.count(value) for value in set(values)}
        return max(counts.values()) / len(values)
