"""SVRT-style same/different tasks.

The Synthetic Visual Reasoning Test [Fleuret et al., PNAS 2011] asks whether
two scenes obey the same abstract relation.  The symbolic generator here
produces pairs of panels labelled *same* (the panels agree on every
relational attribute) or *different* (they disagree on at least one),
which is the canonical SVRT problem #1 family and exercises the same
comparison kernels in the workload models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskGenerationError

__all__ = ["SVRTTask", "SVRTGenerator"]

#: attribute domains describing one SVRT scene
SVRT_DOMAINS: dict[str, tuple[str, ...]] = {
    "shape": ("blob_a", "blob_b", "blob_c", "blob_d", "blob_e"),
    "size": tuple(f"size_{i}" for i in range(4)),
    "arrangement": ("adjacent", "nested", "aligned", "scattered"),
}


@dataclass(frozen=True)
class SVRTTask:
    """One same/different classification problem."""

    name: str
    panel_a: dict[str, str]
    panel_b: dict[str, str]
    same: bool

    @property
    def label(self) -> int:
        """1 for *same*, 0 for *different* (the SVRT class convention)."""
        return int(self.same)


class SVRTGenerator:
    """Generate same/different scene pairs."""

    dataset_name = "svrt"

    def __init__(self, seed: int | None = None) -> None:
        self.attribute_domains = dict(SVRT_DOMAINS)
        self._rng = np.random.default_rng(seed)

    def _random_panel(self) -> dict[str, str]:
        return {
            name: str(self._rng.choice(domain))
            for name, domain in self.attribute_domains.items()
        }

    def generate_task(self) -> SVRTTask:
        """Generate one pair, same/different with equal probability."""
        panel_a = self._random_panel()
        same = bool(self._rng.integers(0, 2))
        if same:
            panel_b = dict(panel_a)
        else:
            panel_b = dict(panel_a)
            attribute = str(self._rng.choice(list(self.attribute_domains)))
            domain = self.attribute_domains[attribute]
            panel_b[attribute] = str(
                self._rng.choice([value for value in domain if value != panel_a[attribute]])
            )
        return SVRTTask(
            name=self.dataset_name, panel_a=panel_a, panel_b=panel_b, same=same
        )

    def generate(self, num_tasks: int) -> list[SVRTTask]:
        """Generate a list of tasks."""
        if num_tasks < 1:
            raise TaskGenerationError(f"num_tasks must be positive, got {num_tasks}")
        return [self.generate_task() for _ in range(num_tasks)]
