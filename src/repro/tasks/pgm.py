"""PGM-style task generator (Procedurally Generated Matrices).

PGM [Barrett et al., ICML 2018] differs from RAVEN in two ways that matter
for this reproduction: its attribute set mixes shapes and lines, and its
rule set includes the bitwise set rules (XOR / AND / OR) applied to the
occupied-position mask.  The generator therefore adds a ``position`` bitmask
attribute (over a 2x2 slot grid, giving a 15-value non-empty-mask domain)
governed by logical rules, alongside the ordinal attributes governed by the
RAVEN rule family.
"""

from __future__ import annotations

from repro.errors import TaskGenerationError
from repro.symbolic.rules import (
    ConstantRule,
    DistributeThreeRule,
    LogicalRule,
    Rule,
)
from repro.tasks.base import RPMTask, TaskBatch
from repro.tasks.raven import RavenGenerator

__all__ = ["PGMGenerator"]

#: PGM-style attribute domains
SHAPE_TYPES = tuple(f"shape_{i}" for i in range(7))
SHAPE_COLORS = tuple(f"color_{i}" for i in range(10))
LINE_TYPES = tuple(f"line_{i}" for i in range(6))
#: occupancy masks over a 2x2 slot grid; the value *index* equals the bitmask
#: so the logical rules can operate directly on indices
POSITION_MASKS = tuple(f"mask_{mask:04b}" for mask in range(16))


class PGMGenerator(RavenGenerator):
    """Generate PGM-style tasks with logical position rules."""

    dataset_name = "pgm"

    def __init__(self, num_candidates: int = 8, seed: int | None = None) -> None:
        # Reuse the RAVEN machinery for rows/candidates; the constellation is
        # fixed ("single scene" with shapes, lines and an occupancy mask).
        super().__init__(configuration="center", num_candidates=num_candidates, seed=seed)
        self.attribute_domains = {
            "shape.type": SHAPE_TYPES,
            "shape.color": SHAPE_COLORS,
            "line.type": LINE_TYPES,
            "shape.position": POSITION_MASKS,
        }

    # -- rule selection ----------------------------------------------------------
    def _candidate_rules(self, attribute: str, domain_size: int) -> list[Rule]:
        if attribute == "shape.position":
            return [
                ConstantRule(),
                DistributeThreeRule(),
                LogicalRule("xor"),
                LogicalRule("and"),
                LogicalRule("or"),
            ]
        return super()._candidate_rules(attribute, domain_size)

    # -- row generation --------------------------------------------------------------
    def _generate_rows(self, rule: Rule, domain_size: int) -> list[tuple[int, int, int]]:
        if isinstance(rule, LogicalRule):
            return [self._logical_row(rule, domain_size) for _ in range(3)]
        return super()._generate_rows(rule, domain_size)

    def _logical_row(self, rule: LogicalRule, domain_size: int) -> tuple[int, int, int]:
        """Sample a row whose masks satisfy ``third = first OP second``.

        Value indices are bitmasks directly, and the mask domain is closed
        under AND/OR/XOR, so any sampled pair yields a valid row.
        """
        first_mask = int(self._rng.integers(0, domain_size))
        second_mask = int(self._rng.integers(0, domain_size))
        third_mask = rule.predict(first_mask, second_mask, domain_size)
        if third_mask is None:
            raise TaskGenerationError(
                f"could not sample a valid row for logical rule '{rule.name}'"
            )
        return (first_mask, second_mask, third_mask)

    def generate_task(self) -> RPMTask:
        """Generate one PGM-style task."""
        panels: list[dict[str, str]] = [dict() for _ in range(9)]
        rules: dict[str, str] = {}
        for attribute, domain in self.attribute_domains.items():
            domain_size = len(domain)
            candidate_rules = self._candidate_rules(attribute, domain_size)
            rule = candidate_rules[int(self._rng.integers(0, len(candidate_rules)))]
            rules[attribute] = rule.name
            rows = self._generate_rows(rule, domain_size)
            for row_index, row in enumerate(rows):
                for column_index, value_index in enumerate(row):
                    panels[row_index * 3 + column_index][attribute] = domain[value_index]

        answer = panels[8]
        candidates, answer_index = self._build_candidates(answer)
        return RPMTask(
            name=self.dataset_name,
            context=tuple(panels[:8]),
            candidates=tuple(candidates),
            answer_index=answer_index,
            rules=rules,
            attribute_domains=dict(self.attribute_domains),
        )

    def generate(self, num_tasks: int) -> TaskBatch:
        """Generate a batch of PGM-style tasks."""
        if num_tasks < 1:
            raise TaskGenerationError(f"num_tasks must be positive, got {num_tasks}")
        return TaskBatch(
            name=self.dataset_name,
            tasks=tuple(self.generate_task() for _ in range(num_tasks)),
        )


def mask_from_label(label: str) -> int:
    """Convert a ``mask_XXXX`` position label back to its integer bitmask."""
    if not label.startswith("mask_"):
        raise TaskGenerationError(f"'{label}' is not a position mask label")
    return int(label.removeprefix("mask_"), 2)


def popcount_of_label(label: str) -> int:
    """Number of occupied slots encoded by a position mask label."""
    return bin(mask_from_label(label)).count("1")
