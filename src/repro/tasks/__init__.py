"""Synthetic cognitive task generators.

The paper evaluates on five spatial-temporal reasoning benchmarks: RAVEN,
I-RAVEN, PGM, CVR and SVRT.  The original datasets are rendered images; this
reproduction generates the *symbolic* task structure directly (panel
attributes, governing rules, candidate answers), which is exactly the
information the perception front-end extracts before the symbolic stages
run.  See the "Design notes" section of the top-level ``README.md`` for the
substitution rationale.
"""

from repro.tasks.base import RPMTask, TaskBatch
from repro.tasks.raven import RavenConfiguration, RavenGenerator, RAVEN_CONFIGURATIONS
from repro.tasks.iraven import IRavenGenerator
from repro.tasks.pgm import PGMGenerator
from repro.tasks.cvr import CVRGenerator, CVRTask
from repro.tasks.svrt import SVRTGenerator, SVRTTask
from repro.tasks.registry import TASK_GENERATORS, make_generator

__all__ = [
    "RPMTask",
    "TaskBatch",
    "RavenConfiguration",
    "RavenGenerator",
    "RAVEN_CONFIGURATIONS",
    "IRavenGenerator",
    "PGMGenerator",
    "CVRGenerator",
    "CVRTask",
    "SVRTGenerator",
    "SVRTTask",
    "TASK_GENERATORS",
    "make_generator",
]
