"""CVR-style compositional visual reasoning tasks (odd-one-out).

The Compositional Visual Reasoning benchmark [Zerroug et al., NeurIPS 2022]
presents four panels, three of which share a latent compositional regularity
while the fourth violates it; the solver must point at the outlier.  The
symbolic equivalent generated here gives every panel a set of attributes,
makes three panels agree on one hidden attribute (the "rule attribute") and
lets everything else vary freely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskGenerationError

__all__ = ["CVRTask", "CVRGenerator"]

#: attribute domains used for CVR-style panels
CVR_DOMAINS: dict[str, tuple[str, ...]] = {
    "shape": ("triangle", "square", "pentagon", "hexagon", "circle", "star"),
    "size": tuple(f"size_{i}" for i in range(4)),
    "color": tuple(f"color_{i}" for i in range(6)),
    "count": tuple(str(i) for i in range(1, 5)),
}


@dataclass(frozen=True)
class CVRTask:
    """One odd-one-out problem."""

    name: str
    panels: tuple[dict[str, str], ...]
    odd_index: int
    rule_attribute: str
    shared_value: str

    def __post_init__(self) -> None:
        if len(self.panels) < 3:
            raise TaskGenerationError("a CVR task needs at least three panels")
        if not 0 <= self.odd_index < len(self.panels):
            raise TaskGenerationError(
                f"odd_index {self.odd_index} out of range for {len(self.panels)} panels"
            )

    @property
    def num_panels(self) -> int:
        """Number of panels in the task."""
        return len(self.panels)


class CVRGenerator:
    """Generate odd-one-out tasks over the CVR attribute domains."""

    dataset_name = "cvr"

    def __init__(self, num_panels: int = 4, seed: int | None = None) -> None:
        if num_panels < 3:
            raise TaskGenerationError(f"num_panels must be >= 3, got {num_panels}")
        self.num_panels = num_panels
        self.attribute_domains = dict(CVR_DOMAINS)
        self._rng = np.random.default_rng(seed)

    def _random_panel(self) -> dict[str, str]:
        return {
            name: str(self._rng.choice(domain))
            for name, domain in self.attribute_domains.items()
        }

    def generate_task(self) -> CVRTask:
        """Generate one odd-one-out task."""
        rule_attribute = str(self._rng.choice(list(self.attribute_domains)))
        domain = self.attribute_domains[rule_attribute]
        shared_value = str(self._rng.choice(domain))
        odd_value = str(
            self._rng.choice([value for value in domain if value != shared_value])
        )
        odd_index = int(self._rng.integers(0, self.num_panels))

        panels = []
        for index in range(self.num_panels):
            panel = self._random_panel()
            panel[rule_attribute] = odd_value if index == odd_index else shared_value
            panels.append(panel)
        return CVRTask(
            name=self.dataset_name,
            panels=tuple(panels),
            odd_index=odd_index,
            rule_attribute=rule_attribute,
            shared_value=shared_value,
        )

    def generate(self, num_tasks: int) -> list[CVRTask]:
        """Generate a list of tasks."""
        if num_tasks < 1:
            raise TaskGenerationError(f"num_tasks must be positive, got {num_tasks}")
        return [self.generate_task() for _ in range(num_tasks)]
