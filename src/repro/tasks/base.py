"""Common task structures shared by the RPM-style generators."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import TaskGenerationError

__all__ = ["RPMTask", "TaskBatch"]

#: a panel is a flat mapping from attribute name to its symbolic value
PanelAttributes = Mapping[str, str]


@dataclass(frozen=True)
class RPMTask:
    """One Raven's-Progressive-Matrices-style task instance.

    Attributes
    ----------
    name:
        Dataset / configuration identifier, e.g. ``"raven/center"``.
    context:
        The eight visible panels of the 3x3 matrix in row-major order.
    candidates:
        The answer set (typically eight panels).
    answer_index:
        Index of the correct candidate.
    rules:
        Mapping from attribute name to the name of the governing rule.
    attribute_domains:
        Mapping from attribute name to its ordered value domain.
    """

    name: str
    context: tuple[PanelAttributes, ...]
    candidates: tuple[PanelAttributes, ...]
    answer_index: int
    rules: Mapping[str, str]
    attribute_domains: Mapping[str, tuple[str, ...]]

    def __post_init__(self) -> None:
        if len(self.context) != 8:
            raise TaskGenerationError(
                f"task '{self.name}' must have 8 context panels, got {len(self.context)}"
            )
        if not self.candidates:
            raise TaskGenerationError(f"task '{self.name}' has no candidate answers")
        if not 0 <= self.answer_index < len(self.candidates):
            raise TaskGenerationError(
                f"task '{self.name}' answer index {self.answer_index} out of range"
            )
        for panel in tuple(self.context) + tuple(self.candidates):
            missing = set(self.attribute_domains) - set(panel)
            if missing:
                raise TaskGenerationError(
                    f"task '{self.name}' panel is missing attributes {sorted(missing)}"
                )

    @property
    def attributes(self) -> list[str]:
        """Attribute names in domain order."""
        return list(self.attribute_domains)

    @property
    def correct_answer(self) -> PanelAttributes:
        """The attributes of the correct candidate panel."""
        return self.candidates[self.answer_index]

    @property
    def num_candidates(self) -> int:
        """Size of the answer set."""
        return len(self.candidates)


@dataclass(frozen=True)
class TaskBatch:
    """A batch of tasks drawn from one generator."""

    name: str
    tasks: tuple[RPMTask, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> RPMTask:
        return self.tasks[index]

    def rule_histogram(self) -> dict[str, int]:
        """Count how often each rule name appears across attributes and tasks."""
        histogram: dict[str, int] = {}
        for task in self.tasks:
            for rule_name in task.rules.values():
                histogram[rule_name] = histogram.get(rule_name, 0) + 1
        return histogram
