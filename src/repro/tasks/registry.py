"""Registry mapping dataset names to generator factories.

The evaluation harness iterates over the five datasets of the paper's
Fig. 15/16 (RAVEN, I-RAVEN, PGM, CVR, SVRT); this registry is the single
place that knows how to construct a generator for each.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import TaskGenerationError
from repro.tasks.cvr import CVRGenerator
from repro.tasks.iraven import IRavenGenerator
from repro.tasks.pgm import PGMGenerator
from repro.tasks.raven import RavenGenerator
from repro.tasks.svrt import SVRTGenerator

__all__ = ["TASK_GENERATORS", "make_generator"]

#: dataset name -> factory taking a seed keyword
TASK_GENERATORS: dict[str, Callable[..., object]] = {
    "raven": RavenGenerator,
    "iraven": IRavenGenerator,
    "pgm": PGMGenerator,
    "cvr": CVRGenerator,
    "svrt": SVRTGenerator,
}


def make_generator(dataset: str, seed: int | None = None, **kwargs):
    """Instantiate the generator for ``dataset`` (``raven``, ``iraven``, ...)."""
    try:
        factory = TASK_GENERATORS[dataset]
    except KeyError as exc:
        raise TaskGenerationError(
            f"unknown dataset '{dataset}'; known datasets: {sorted(TASK_GENERATORS)}"
        ) from exc
    return factory(seed=seed, **kwargs)
