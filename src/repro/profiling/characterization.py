"""Runtime, memory and roofline characterization of neurosymbolic workloads."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.backends.base import Backend
from repro.errors import BackendError
from repro.hardware.baselines import GenericDevice
from repro.hardware.roofline import Roofline, RooflinePoint
from repro.workloads.base import KernelKind, Stage, Workload

__all__ = [
    "RuntimeBreakdown",
    "MemoryFootprint",
    "KERNEL_PROFILE",
    "runtime_breakdown",
    "task_size_scaling",
    "memory_footprint",
    "roofline_points",
    "symbolic_operation_breakdown",
]

#: Tab. II — measured compute/memory characteristics of representative neural
#: and symbolic kernels on a CPU+GPU platform (percentages as reported).
KERNEL_PROFILE: dict[str, dict[str, float]] = {
    "sgemm_nn (neural)": {
        "compute_throughput": 95.1,
        "alu_utilization": 90.1,
        "l1_throughput": 79.7,
        "l2_throughput": 19.2,
        "l1_hit_rate": 1.6,
        "l2_hit_rate": 86.8,
        "dram_bw_utilization": 14.9,
    },
    "relu_nn (neural)": {
        "compute_throughput": 92.9,
        "alu_utilization": 48.3,
        "l1_throughput": 82.6,
        "l2_throughput": 17.5,
        "l1_hit_rate": 51.6,
        "l2_hit_rate": 65.5,
        "dram_bw_utilization": 24.2,
    },
    "vectorized_elem (symbolic)": {
        "compute_throughput": 3.0,
        "alu_utilization": 5.9,
        "l1_throughput": 28.4,
        "l2_throughput": 29.8,
        "l1_hit_rate": 29.5,
        "l2_hit_rate": 48.6,
        "dram_bw_utilization": 90.9,
    },
    "elementwise (symbolic)": {
        "compute_throughput": 2.3,
        "alu_utilization": 4.5,
        "l1_throughput": 10.8,
        "l2_throughput": 22.8,
        "l1_hit_rate": 33.3,
        "l2_hit_rate": 34.3,
        "dram_bw_utilization": 78.4,
    },
}


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Neural/symbolic runtime split of one workload on one device."""

    workload: str
    device: str
    total_seconds: float
    neural_seconds: float
    symbolic_seconds: float

    @property
    def symbolic_fraction(self) -> float:
        """Fraction of end-to-end runtime spent in symbolic kernels."""
        return self.symbolic_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def neural_fraction(self) -> float:
        """Fraction of end-to-end runtime spent in neural kernels."""
        return self.neural_seconds / self.total_seconds if self.total_seconds else 0.0


@dataclass(frozen=True)
class MemoryFootprint:
    """Static memory footprint of one workload."""

    workload: str
    weight_bytes: int
    codebook_bytes: int

    @property
    def total_bytes(self) -> int:
        """Weights plus symbolic codebooks."""
        return self.weight_bytes + self.codebook_bytes

    @property
    def total_megabytes(self) -> float:
        """Total footprint in MB."""
        return self.total_bytes / 1e6

    @property
    def codebook_fraction(self) -> float:
        """Share of the footprint attributable to the symbolic codebooks."""
        return self.codebook_bytes / self.total_bytes if self.total_bytes else 0.0


def _as_backend(device) -> Backend:
    """Accept a Backend or (legacy call shape) a bare device model."""
    if isinstance(device, Backend):
        return device
    from repro.backends.devices import DeviceBackend
    from repro.hardware.baselines import DeviceModel

    if isinstance(device, DeviceModel):
        return DeviceBackend(device)
    raise BackendError(
        f"expected a backend or baseline device model, got {type(device).__name__}"
    )


def runtime_breakdown(workload: Workload, device: Backend) -> RuntimeBreakdown:
    """Fig. 4a/4b: neural vs symbolic runtime of a workload on a backend."""
    report = _as_backend(device).execute(workload)
    return RuntimeBreakdown(
        workload=workload.name,
        device=device.name,
        total_seconds=report.total_seconds,
        neural_seconds=report.neural_seconds,
        symbolic_seconds=report.symbolic_seconds,
    )


def task_size_scaling(
    builder: Callable[..., Workload],
    device: Backend,
    grid_sizes: Sequence[int] = (2, 3),
    **builder_kwargs,
) -> list[RuntimeBreakdown]:
    """Fig. 4c: how the runtime split evolves with reasoning task size."""
    breakdowns = []
    for grid_size in grid_sizes:
        workload = builder(grid_size=grid_size, **builder_kwargs)
        breakdowns.append(runtime_breakdown(workload, device))
    return breakdowns


def memory_footprint(workload: Workload) -> MemoryFootprint:
    """Fig. 4d: weights vs symbolic codebook storage."""
    return MemoryFootprint(
        workload=workload.name,
        weight_bytes=workload.weight_bytes,
        codebook_bytes=workload.codebook_bytes,
    )


def _stage_traffic_on_device(workload: Workload, device: GenericDevice, stage: Stage) -> int:
    """Device-visible traffic of one stage (GPU view of circular convolution)."""
    return sum(
        device._device_traffic_bytes(kernel) for kernel in workload.by_stage(stage)
    )


def roofline_points(workload: Workload, device: Backend) -> dict[str, RooflinePoint]:
    """Fig. 5: place the neural and symbolic stages on the device's roofline.

    Only meaningful for roofline-style :class:`GenericDevice` models (peak
    FLOPs and DRAM bandwidth are spec fields there), passed either bare or
    wrapped in a backend; cycle-model backends have no single roofline.
    """
    model = (
        device
        if isinstance(device, GenericDevice)
        else getattr(device, "model", None)
    )
    if not isinstance(model, GenericDevice):
        raise BackendError(
            f"roofline placement needs a roofline device backend, got "
            f"'{getattr(device, 'name', device)}'"
        )
    device = model
    roofline = Roofline(
        name=device.name,
        peak_flops=device.spec.peak_flops,
        memory_bandwidth_bytes_per_s=device.spec.memory_bandwidth_bytes_per_s,
    )
    points = {}
    for stage in Stage:
        flops = workload.total_flops(stage)
        traffic = _stage_traffic_on_device(workload, device, stage)
        points[stage.value] = roofline.place(
            f"{workload.name}/{stage.value}", flops, traffic
        )
    return points


def symbolic_operation_breakdown(
    workload: Workload, device: Backend
) -> dict[str, float]:
    """Fig. 6: share of symbolic runtime per kernel kind.

    The paper reports that vector-symbolic circular convolution plus
    vector-vector multiplication dominate (~80 %) the symbolic stage.
    """
    report = _as_backend(device).execute(workload)
    totals: dict[str, float] = {kind.value: 0.0 for kind in KernelKind}
    symbolic_total = 0.0
    for kernel in workload.by_stage(Stage.SYMBOLIC):
        seconds = report.kernel_seconds[kernel.name]
        totals[kernel.kind.value] += seconds
        symbolic_total += seconds
    if symbolic_total == 0:
        return {kind: 0.0 for kind in totals}
    return {kind: seconds / symbolic_total for kind, seconds in totals.items()}
