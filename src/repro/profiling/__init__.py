"""Workload characterization (Sec. III of the paper).

These utilities regenerate the profiling results that motivate CogSys:
runtime breakdowns across devices (Fig. 4a/b), task-size scalability
(Fig. 4c), memory footprints (Fig. 4d), roofline placement of the neural and
symbolic stages (Fig. 5), the symbolic operation breakdown (Fig. 6) and the
kernel-level hardware-inefficiency profile (Tab. II).
"""

from repro.profiling.characterization import (
    KERNEL_PROFILE,
    MemoryFootprint,
    RuntimeBreakdown,
    memory_footprint,
    roofline_points,
    runtime_breakdown,
    symbolic_operation_breakdown,
    task_size_scaling,
)

__all__ = [
    "KERNEL_PROFILE",
    "RuntimeBreakdown",
    "MemoryFootprint",
    "runtime_breakdown",
    "task_size_scaling",
    "memory_footprint",
    "roofline_points",
    "symbolic_operation_breakdown",
]
