"""Area, power and energy accounting for the CogSys accelerator.

The silicon numbers come from the paper's TSMC 28 nm implementation results
(Tab. IX and Fig. 14): the 16x32x32 reconfigurable array and the 512-PE SIMD
unit are characterised at FP32, FP8 and INT8, and the taped-out accelerator
occupies 4.0 mm^2 at an average power of 1.48 W.  The model scales those
per-PE constants to arbitrary array configurations and converts latency into
energy for efficiency comparisons against CPU/GPU baselines (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantization import Precision
from repro.errors import HardwareConfigError

__all__ = ["Precision", "PrecisionSilicon", "AreaPowerModel", "PE_DESIGN_CHOICES"]

#: reference configuration the paper's Tab. IX numbers were measured at
_REFERENCE_ARRAY_PES = 16 * 32 * 32
_REFERENCE_SIMD_PES = 512


@dataclass(frozen=True)
class PrecisionSilicon:
    """Published silicon characteristics of one arithmetic precision."""

    array_area_mm2: float
    array_power_mw: float
    simd_area_mm2: float
    simd_power_mw: float
    #: area overhead of reconfigurability versus a plain systolic array
    reconfigurability_overhead: float


#: Tab. IX: area/power of the reconfigurable array (16x32x32 PEs) and the
#: custom SIMD unit (512 PEs) per precision, and the reconfigurable-array
#: area overhead versus a conventional systolic array.
PRECISION_SILICON: dict[Precision, PrecisionSilicon] = {
    Precision.FP32: PrecisionSilicon(
        array_area_mm2=28.9,
        array_power_mw=4468.5,
        simd_area_mm2=2.01,
        simd_power_mw=297.0,
        reconfigurability_overhead=0.009,
    ),
    Precision.FP8: PrecisionSilicon(
        array_area_mm2=9.9,
        array_power_mw=1237.8,
        simd_area_mm2=0.28,
        simd_power_mw=64.8,
        reconfigurability_overhead=0.048,
    ),
    Precision.INT8: PrecisionSilicon(
        array_area_mm2=3.8,
        array_power_mw=1104.6,
        simd_area_mm2=0.21,
        simd_power_mw=80.4,
        reconfigurability_overhead=0.121,
    ),
}

#: Tab. V design-choice comparison: reconfigurable nsPEs versus dedicated
#: (heterogeneous) neural + symbolic PE pools of equal or half chip size.
PE_DESIGN_CHOICES: dict[str, dict[str, float]] = {
    "reconfigurable_16x32x32": {
        "area": 1.0,
        "latency": 1.0,
        "energy": 1.0,
        "utilization": 0.90,
    },
    "heterogeneous_16+16": {
        "area": 1.96,
        "latency": 1.0,
        "energy": 1.3,
        "utilization": 0.45,
    },
    "heterogeneous_8+8": {
        "area": 0.98,
        "latency": 2.0,
        "energy": 1.3,
        "utilization": 0.45,
    },
}

#: SRAM, controller and interconnect power that tops the INT8/FP8 array up to
#: the reported 1.48 W average accelerator power (Fig. 14)
_PERIPHERAL_POWER_MW = 295.0


class AreaPowerModel:
    """Scale the published silicon numbers to a given array configuration."""

    def __init__(self, precision: Precision | str = Precision.FP8) -> None:
        self.precision = Precision.parse(precision)
        if self.precision not in PRECISION_SILICON:
            raise HardwareConfigError(f"no silicon data for precision {self.precision}")
        self._silicon = PRECISION_SILICON[self.precision]

    # -- per-unit constants -------------------------------------------------------
    @property
    def area_per_array_pe_mm2(self) -> float:
        """Area of one nsPE at this precision."""
        return self._silicon.array_area_mm2 / _REFERENCE_ARRAY_PES

    @property
    def power_per_array_pe_mw(self) -> float:
        """Power of one nsPE at this precision."""
        return self._silicon.array_power_mw / _REFERENCE_ARRAY_PES

    @property
    def area_per_simd_pe_mm2(self) -> float:
        """Area of one SIMD lane at this precision."""
        return self._silicon.simd_area_mm2 / _REFERENCE_SIMD_PES

    @property
    def power_per_simd_pe_mw(self) -> float:
        """Power of one SIMD lane at this precision."""
        return self._silicon.simd_power_mw / _REFERENCE_SIMD_PES

    @property
    def reconfigurability_overhead(self) -> float:
        """Array area overhead versus a plain systolic array."""
        return self._silicon.reconfigurability_overhead

    # -- whole-accelerator figures ----------------------------------------------------
    def array_area_mm2(self, total_pes: int = _REFERENCE_ARRAY_PES) -> float:
        """Array area for ``total_pes`` nsPEs."""
        self._check_positive(total_pes)
        return self.area_per_array_pe_mm2 * total_pes

    def simd_area_mm2(self, simd_pes: int = _REFERENCE_SIMD_PES) -> float:
        """SIMD-unit area for ``simd_pes`` lanes."""
        self._check_positive(simd_pes)
        return self.area_per_simd_pe_mm2 * simd_pes

    def accelerator_area_mm2(
        self, total_pes: int = _REFERENCE_ARRAY_PES, simd_pes: int = _REFERENCE_SIMD_PES
    ) -> float:
        """Total compute area (array plus SIMD unit)."""
        return self.array_area_mm2(total_pes) + self.simd_area_mm2(simd_pes)

    def accelerator_power_w(
        self, total_pes: int = _REFERENCE_ARRAY_PES, simd_pes: int = _REFERENCE_SIMD_PES
    ) -> float:
        """Average accelerator power including SRAM/controller peripherals."""
        self._check_positive(total_pes)
        self._check_positive(simd_pes)
        milliwatts = (
            self.power_per_array_pe_mw * total_pes
            + self.power_per_simd_pe_mw * simd_pes
            + _PERIPHERAL_POWER_MW
        )
        return milliwatts / 1000.0

    def energy_joules(self, latency_seconds: float, **kwargs) -> float:
        """Energy of a run of ``latency_seconds`` at average power."""
        if latency_seconds < 0:
            raise HardwareConfigError("latency must be non-negative")
        return self.accelerator_power_w(**kwargs) * latency_seconds

    @staticmethod
    def _check_positive(value: int) -> None:
        if value < 1:
            raise HardwareConfigError(f"PE counts must be positive, got {value}")
