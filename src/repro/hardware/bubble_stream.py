"""Bubble-streaming (BS) dataflow for vector-symbolic circular convolution.

The BS dataflow keeps one operand (A) stationary, one per nsPE, and streams
the other operand (B) down the 1-D PE column through *passing* registers
that hold each element for one extra cycle (the "bubble").  Partial sums
travel down the column one PE per cycle, so relative to a partial-sum
wavefront every PE sees the stream shifted by one additional element — which
is exactly the circular shift a circular convolution needs, without ever
materialising the O(d^2) circulant matrix a GEMV lowering requires.

Two artefacts live here:

* :func:`bs_latency_cycles` — the closed-form latency of one circular
  convolution on a 1-D nsPE array (``4d - 1`` cycles when the array length
  matches the vector dimension, ``3M + d - 1`` otherwise), as derived in
  Sec. V-C of the paper.
* :class:`BubbleStreamSimulator` — a functional cycle-level simulator that
  executes the dataflow schedule (per-PE stream arrival with the 2-cycle
  bubble skew, 1-cycle partial-sum skew) and produces both the numerical
  result and per-output completion cycles, used to validate the dataflow
  against the FFT reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareConfigError, MappingError

__all__ = ["bs_latency_cycles", "BSRunResult", "BubbleStreamSimulator"]


def bs_latency_cycles(vector_dim: int, array_length: int | None = None) -> int:
    """Latency in cycles of one circular convolution under the BS dataflow.

    Parameters
    ----------
    vector_dim:
        Dimension ``d`` of the two operands.
    array_length:
        Number of nsPEs ``M`` in the 1-D array.  Defaults to ``d`` (the
        un-folded case).  When ``M != d`` the latency is ``3M + d - 1``
        cycles per fold (loading the stationary vector, streaming the second
        operand to the final PE, then draining the remaining outputs);
        folding across multiple passes is handled by the ST mapping layer.
    """
    if vector_dim < 1:
        raise MappingError(f"vector_dim must be positive, got {vector_dim}")
    if array_length is None:
        array_length = vector_dim
    if array_length < 1:
        raise MappingError(f"array_length must be positive, got {array_length}")
    if array_length == vector_dim:
        return 4 * vector_dim - 1
    return 3 * array_length + vector_dim - 1


@dataclass(frozen=True)
class BSRunResult:
    """Result of simulating one circular convolution."""

    output: np.ndarray
    cycles: int
    mac_count: int
    output_completion_cycles: tuple[int, ...]

    @property
    def macs_per_cycle(self) -> float:
        """Average MAC throughput of the run."""
        return self.mac_count / self.cycles if self.cycles else 0.0


class BubbleStreamSimulator:
    """Functional cycle-level model of a 1-D nsPE array running BS dataflow."""

    def __init__(self, array_length: int) -> None:
        if array_length < 1:
            raise HardwareConfigError(
                f"array_length must be positive, got {array_length}"
            )
        self.array_length = array_length

    def run(self, stationary: np.ndarray, streaming: np.ndarray) -> BSRunResult:
        """Circularly convolve ``stationary`` with ``streaming``.

        The vectors must match the array length (folding longer vectors is
        the mapping layer's job).  The simulation walks the dataflow
        schedule: PE ``i`` holds ``stationary[i]``; the streaming element
        with stream index ``j`` reaches PE ``i`` at cycle ``d + 2*i + j``
        (one bubble per hop); the partial sum for output ``n`` visits PE
        ``i`` when that PE holds streaming element ``(n - i) mod d``.
        """
        a = np.asarray(stationary, dtype=np.float64)
        b = np.asarray(streaming, dtype=np.float64)
        if a.shape != b.shape or a.ndim != 1:
            raise MappingError(
                f"operands must be 1-D vectors of equal length, got {a.shape} and {b.shape}"
            )
        dim = a.shape[0]
        if dim != self.array_length:
            raise MappingError(
                f"vector dimension {dim} does not match array length {self.array_length}; "
                "use the ST mapping layer to fold longer vectors"
            )

        load_cycles = dim
        output = np.zeros(dim)
        completion = np.zeros(dim, dtype=int)
        mac_count = 0
        for n in range(dim):
            finish = 0
            for i in range(dim):
                # Stream index of the element PE i multiplies for output n:
                # (n - i) mod d, counted from the start of the streaming
                # phase.  Elements "behind" PE i (n < i) only arrive after
                # the stream wraps around, one full period later.
                stream_index = (n - i) % dim
                arrival = load_cycles + 2 * i + stream_index
                output[n] += a[i] * b[(n - i) % dim]
                mac_count += 1
                finish = max(finish, arrival)
            # One extra cycle to drain the completed partial sum.
            completion[n] = finish + 1
        total_cycles = bs_latency_cycles(dim, self.array_length)
        # The analytically derived completion time of the slowest output must
        # never exceed the closed-form latency the rest of the stack uses.
        if int(completion.max()) > total_cycles:
            raise MappingError(
                "internal schedule inconsistency: completion "
                f"{int(completion.max())} exceeds closed-form latency {total_cycles}"
            )
        return BSRunResult(
            output=output,
            cycles=total_cycles,
            mac_count=mac_count,
            output_completion_cycles=tuple(int(c) for c in completion),
        )

    def run_batch(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> list[BSRunResult]:
        """Convolve several operand pairs sequentially on this array."""
        return [self.run(a, b) for a, b in pairs]
