"""Reconfigurable neuro/symbolic processing element (nsPE).

Each nsPE holds four registers (stationary, passing, streaming, partial sum)
and supports three operating modes: LOAD (fill the stationary register),
GEMM (TPU-style weight-stationary MAC with inputs arriving from the left)
and CIRCCONV (bubble-streaming circular convolution with inputs arriving
from the top through the passing register).  The functional model here is
used by the bubble-streaming simulator and by unit tests; the per-precision
area/energy characteristics live in :mod:`repro.hardware.energy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import HardwareConfigError

__all__ = ["PEMode", "ReconfigurablePE"]


class PEMode(enum.Enum):
    """Operating modes of the reconfigurable nsPE."""

    LOAD = "load"
    GEMM = "gemm"
    CIRCCONV = "circconv"


@dataclass
class ReconfigurablePE:
    """Functional model of one nsPE.

    The four registers mirror Fig. 10 of the paper.  ``step`` consumes the
    inputs for one cycle in the current mode and returns the outputs passed
    to the neighbouring PEs.
    """

    mode: PEMode = PEMode.LOAD
    stationary: float = 0.0
    passing: float = 0.0
    streaming: float = 0.0
    partial_sum: float = 0.0
    #: number of multiply-accumulate operations this PE has executed
    mac_count: int = field(default=0, repr=False)

    def set_mode(self, mode: PEMode) -> None:
        """Switch operating mode (reconfiguration is a single-cycle event)."""
        if not isinstance(mode, PEMode):
            raise HardwareConfigError(f"invalid PE mode {mode!r}")
        self.mode = mode

    def reset(self) -> None:
        """Clear all registers (between kernels)."""
        self.passing = 0.0
        self.streaming = 0.0
        self.partial_sum = 0.0
        self.mac_count = 0

    def step(
        self,
        top_in_a: float = 0.0,
        top_in_b: float = 0.0,
        left_in: float = 0.0,
        sum_in: float = 0.0,
    ) -> dict[str, float]:
        """Advance one cycle.

        Returns the values presented on the PE's output links:
        ``top_out_a`` (stationary forwarding), ``top_out_b`` (streaming
        forwarding to the next PE's passing register), ``left_out`` (GEMM
        operand forwarding) and ``sum_out`` (partial-sum reduction).
        """
        if self.mode is PEMode.LOAD:
            # Stationary weights ripple down the column through top_in_A.
            previous_stationary = self.stationary
            self.stationary = top_in_a
            return {
                "top_out_a": previous_stationary,
                "top_out_b": 0.0,
                "left_out": 0.0,
                "sum_out": 0.0,
            }

        if self.mode is PEMode.GEMM:
            # Weight-stationary MAC: operand arrives from the left, partial
            # sums reduce from top to bottom.
            product = self.stationary * left_in
            self.partial_sum = sum_in + product
            self.mac_count += 1
            return {
                "top_out_a": 0.0,
                "top_out_b": 0.0,
                "left_out": left_in,
                "sum_out": self.partial_sum,
            }

        # CIRCCONV mode: the streaming operand enters the passing register,
        # moves to the streaming register one cycle later (the "bubble"), and
        # is forwarded to the next PE's passing register.
        product = self.stationary * self.streaming
        self.partial_sum = sum_in + product
        if self.streaming != 0.0 or self.stationary != 0.0:
            self.mac_count += 1
        forwarded = self.streaming
        self.streaming = self.passing
        self.passing = top_in_b
        return {
            "top_out_a": 0.0,
            "top_out_b": forwarded,
            "left_out": 0.0,
            "sum_out": self.partial_sum,
        }
