"""Custom SIMD unit for element-wise and reduction operations.

The CogSys accelerator offloads element-wise kernels (activations,
normalisation, softmax, probability updates) and vector reductions to a
512-PE SIMD unit so the nsPE array stays busy with GEMM / circular
convolution work (Sec. V-F).  The model here is a throughput model: the
lanes process one element per cycle, with a small per-operation overhead for
transcendental functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError

__all__ = ["SIMDUnit"]

#: extra cycles per element for transcendental-heavy operations
_TRANSCENDENTAL_FACTOR = 4


@dataclass(frozen=True)
class SIMDUnit:
    """Throughput model of the custom SIMD unit."""

    num_pes: int = 512
    #: fixed start-up cycles per issued vector operation
    issue_overhead_cycles: int = 8

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise HardwareConfigError(f"num_pes must be positive, got {self.num_pes}")
        if self.issue_overhead_cycles < 0:
            raise HardwareConfigError("issue_overhead_cycles must be non-negative")

    def elementwise_cycles(
        self, elements: int, ops_per_element: int = 1, transcendental: bool = False
    ) -> int:
        """Cycles to process ``elements`` with ``ops_per_element`` each."""
        if elements < 0 or ops_per_element < 0:
            raise HardwareConfigError("elements and ops_per_element must be non-negative")
        if elements == 0:
            return 0
        per_element = ops_per_element * (_TRANSCENDENTAL_FACTOR if transcendental else 1)
        lanes_passes = -(-elements // self.num_pes)
        return self.issue_overhead_cycles + lanes_passes * max(1, per_element)

    def reduction_cycles(self, elements: int) -> int:
        """Cycles for a tree reduction over ``elements``."""
        if elements < 0:
            raise HardwareConfigError("elements must be non-negative")
        if elements <= 1:
            return self.issue_overhead_cycles
        lanes_passes = -(-elements // self.num_pes)
        tree_depth = max(1, (self.num_pes - 1).bit_length())
        return self.issue_overhead_cycles + lanes_passes + tree_depth
