"""Baseline device models: CPUs, GPUs, edge SoCs and ML accelerators.

Two families of baseline are modelled, matching the paper's comparisons:

* :class:`GenericDevice` — roofline-style models of general-purpose
  processors and GPUs (RTX 2080Ti, V100, A100, Xeon, Jetson TX2, Xavier NX,
  Coral TPU).  Per-kernel-kind compute and bandwidth efficiencies are
  calibrated from the paper's Tab. II measurements (symbolic kernels achieve
  only a few percent of peak compute but high DRAM utilisation), and every
  sub-operation pays a host launch overhead, which is what makes the many
  small sequential symbolic kernels so expensive on these devices.
* :class:`SystolicAcceleratorDevice` — TPU-like, MTIA-like and Gemmini-like
  systolic accelerators.  Neural kernels map efficiently; circular
  convolution must be lowered to a GEMV against the materialised circulant
  matrix (O(d^2) footprint, no column-wise parallelism), which reproduces
  the Fig. 17/18 gaps against CogSys.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field

from repro.backends.base import SymbolicFractionMixin
from repro.errors import BackendError
from repro.hardware.systolic import SystolicArrayModel
from repro.workloads.base import KernelKind, KernelOp, Workload

__all__ = [
    "DeviceReport",
    "DeviceModel",
    "DeviceSpec",
    "AcceleratorSpec",
    "GenericDevice",
    "SystolicAcceleratorDevice",
    "DEVICE_SPECS",
    "ACCELERATOR_SPECS",
    "make_device",
]

ELEMENT_BYTES = 4


@dataclass(frozen=True)
class DeviceReport(SymbolicFractionMixin):
    """Per-workload timing summary for one device.

    Deprecated shim over :class:`repro.backends.base.ExecutionReport` —
    sequential device models never overlap stages, so the shared
    stage-summed ``symbolic_fraction`` equals the historical
    ``symbolic_seconds / total_seconds`` definition exactly.
    """

    device: str
    workload: str
    total_seconds: float
    neural_seconds: float
    symbolic_seconds: float
    kernel_seconds: dict[str, float] = field(default_factory=dict)
    energy_joules: float = 0.0


class DeviceModel(abc.ABC):
    """Common interface of every device model."""

    name: str
    power_watts: float

    @abc.abstractmethod
    def kernel_time(self, kernel: KernelOp) -> float:
        """Execution time of one kernel in seconds."""

    def workload_time(self, workload: Workload) -> DeviceReport:
        """Execute the workload's kernels sequentially (no overlap).

        Deprecated shim: the sequential sweep lives in
        :class:`repro.backends.devices.DeviceBackend`; this method only
        repackages its :class:`~repro.backends.base.ExecutionReport` into
        the legacy :class:`DeviceReport` shape.
        """
        from repro.backends.devices import DeviceBackend

        report = DeviceBackend(self).execute(workload)
        return DeviceReport(
            device=self.name,
            workload=report.workload,
            total_seconds=report.total_seconds,
            neural_seconds=report.neural_seconds,
            symbolic_seconds=report.symbolic_seconds,
            kernel_seconds=dict(report.kernel_seconds),
            energy_joules=report.energy_joules,
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Published characteristics of a general-purpose device."""

    name: str
    peak_flops: float
    memory_bandwidth_bytes_per_s: float
    power_watts: float
    #: host-to-device transfer bandwidth (PCIe or SoC fabric)
    host_bandwidth_bytes_per_s: float
    #: per-sub-operation launch/dispatch overhead in seconds
    launch_overhead_s: float
    #: compute efficiency per kernel kind (fraction of peak FLOPs)
    compute_efficiency: dict[KernelKind, float]
    #: achievable fraction of peak DRAM bandwidth per kernel kind
    bandwidth_efficiency: dict[KernelKind, float]


#: Compute efficiencies calibrated from the paper's Tab. II kernel profile:
#: sgemm-style neural kernels sustain ~90-95 % of achievable throughput,
#: symbolic vectorised/element-wise kernels only ~2-6 %.
_GPU_COMPUTE_EFF = {
    KernelKind.GEMM: 0.55,
    KernelKind.CONV: 0.50,
    KernelKind.MATVEC: 0.06,
    KernelKind.CIRCCONV: 0.05,
    KernelKind.ELEMENTWISE: 0.03,
}
_GPU_BANDWIDTH_EFF = {
    KernelKind.GEMM: 0.60,
    KernelKind.CONV: 0.60,
    KernelKind.MATVEC: 0.80,
    KernelKind.CIRCCONV: 0.85,
    KernelKind.ELEMENTWISE: 0.78,
}
_CPU_COMPUTE_EFF = {
    KernelKind.GEMM: 0.70,
    KernelKind.CONV: 0.60,
    KernelKind.MATVEC: 0.15,
    KernelKind.CIRCCONV: 0.08,
    KernelKind.ELEMENTWISE: 0.05,
}
_CPU_BANDWIDTH_EFF = {
    KernelKind.GEMM: 0.70,
    KernelKind.CONV: 0.70,
    KernelKind.MATVEC: 0.80,
    KernelKind.CIRCCONV: 0.80,
    KernelKind.ELEMENTWISE: 0.70,
}

#: Device specifications (peak FP32 throughput, memory bandwidth, TDP).
DEVICE_SPECS: dict[str, DeviceSpec] = {
    "rtx2080ti": DeviceSpec(
        name="rtx2080ti",
        peak_flops=13.4e12,
        memory_bandwidth_bytes_per_s=616e9,
        power_watts=250.0,
        host_bandwidth_bytes_per_s=16e9,
        launch_overhead_s=6e-6,
        compute_efficiency=_GPU_COMPUTE_EFF,
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
    "v100": DeviceSpec(
        name="v100",
        peak_flops=15.7e12,
        memory_bandwidth_bytes_per_s=900e9,
        power_watts=300.0,
        host_bandwidth_bytes_per_s=16e9,
        launch_overhead_s=6e-6,
        compute_efficiency=_GPU_COMPUTE_EFF,
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
    "a100": DeviceSpec(
        name="a100",
        peak_flops=19.5e12,
        memory_bandwidth_bytes_per_s=1555e9,
        power_watts=400.0,
        host_bandwidth_bytes_per_s=32e9,
        launch_overhead_s=4e-6,
        compute_efficiency=_GPU_COMPUTE_EFF,
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
    "xeon": DeviceSpec(
        name="xeon",
        peak_flops=1.8e12,
        memory_bandwidth_bytes_per_s=120e9,
        power_watts=145.0,
        host_bandwidth_bytes_per_s=60e9,
        launch_overhead_s=2e-6,
        compute_efficiency=_CPU_COMPUTE_EFF,
        bandwidth_efficiency=_CPU_BANDWIDTH_EFF,
    ),
    "jetson_tx2": DeviceSpec(
        name="jetson_tx2",
        peak_flops=0.67e12,
        memory_bandwidth_bytes_per_s=59.7e9,
        power_watts=15.0,
        host_bandwidth_bytes_per_s=8e9,
        launch_overhead_s=25e-6,
        compute_efficiency=_GPU_COMPUTE_EFF,
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
    "xavier_nx": DeviceSpec(
        name="xavier_nx",
        peak_flops=1.1e12,
        memory_bandwidth_bytes_per_s=59.7e9,
        power_watts=20.0,
        host_bandwidth_bytes_per_s=8e9,
        launch_overhead_s=20e-6,
        compute_efficiency=_GPU_COMPUTE_EFF,
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
    "coral_tpu": DeviceSpec(
        name="coral_tpu",
        peak_flops=4e12,
        memory_bandwidth_bytes_per_s=25.6e9,
        power_watts=4.0,
        host_bandwidth_bytes_per_s=0.5e9,
        launch_overhead_s=80e-6,
        compute_efficiency={
            KernelKind.GEMM: 0.60,
            KernelKind.CONV: 0.60,
            KernelKind.MATVEC: 0.05,
            KernelKind.CIRCCONV: 0.02,
            KernelKind.ELEMENTWISE: 0.01,
        },
        bandwidth_efficiency=_GPU_BANDWIDTH_EFF,
    ),
}


class GenericDevice(DeviceModel):
    """Roofline + efficiency + launch-overhead model of a CPU/GPU/edge SoC."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.power_watts = spec.power_watts

    def _device_traffic_bytes(self, kernel: KernelOp) -> int:
        """Traffic the kernel actually generates on this device.

        Circular convolution on CPU/GPU fetches circularly shifted operand
        copies (or a materialised circulant), so its traffic is O(d^2) per
        operation rather than the O(d) streaming minimum.
        """
        if kernel.kind is KernelKind.CIRCCONV:
            per_op = kernel.vector_dim * kernel.vector_dim + 2 * kernel.vector_dim
            return per_op * kernel.count * ELEMENT_BYTES
        return kernel.total_bytes

    def kernel_time(self, kernel: KernelOp) -> float:
        compute_eff = self.spec.compute_efficiency.get(kernel.kind, 0.1)
        bandwidth_eff = self.spec.bandwidth_efficiency.get(kernel.kind, 0.5)
        compute_time = kernel.flops / (self.spec.peak_flops * compute_eff)
        memory_time = self._device_traffic_bytes(kernel) / (
            self.spec.memory_bandwidth_bytes_per_s * bandwidth_eff
        )
        launch_time = self.spec.launch_overhead_s * kernel.device_launches
        host_time = 0.0
        if kernel.is_symbolic:
            # Symbolic operands bounce between host and device (Sec. III-D:
            # symbolic data transfer accounts for a large share of latency).
            host_time = kernel.total_bytes / self.spec.host_bandwidth_bytes_per_s
        return max(compute_time, memory_time) + launch_time + host_time


@dataclass(frozen=True)
class AcceleratorSpec:
    """Configuration of a systolic ML accelerator baseline."""

    name: str
    num_cells: int
    cell_rows: int
    cell_cols: int
    frequency_hz: float
    power_watts: float
    sram_bytes: int
    dram_bandwidth_bytes_per_s: float = 100e9
    #: throughput of the scalar/vector unit handling element-wise ops
    vector_lanes: int = 64


#: Tab. VI accelerator baselines, all with 4.5 MB SRAM and matched PE counts.
ACCELERATOR_SPECS: dict[str, AcceleratorSpec] = {
    "tpu_like": AcceleratorSpec(
        name="tpu_like",
        num_cells=1,
        cell_rows=128,
        cell_cols=128,
        frequency_hz=0.8e9,
        power_watts=2.0,
        sram_bytes=4_500_000,
    ),
    "mtia_like": AcceleratorSpec(
        name="mtia_like",
        num_cells=16,
        cell_rows=32,
        cell_cols=32,
        frequency_hz=0.8e9,
        power_watts=1.8,
        sram_bytes=4_500_000,
    ),
    "gemmini_like": AcceleratorSpec(
        name="gemmini_like",
        num_cells=64,
        cell_rows=16,
        cell_cols=16,
        frequency_hz=0.8e9,
        power_watts=1.8,
        sram_bytes=4_500_000,
    ),
}


class SystolicAcceleratorDevice(DeviceModel):
    """TPU/MTIA/Gemmini-like accelerator without reconfigurable symbolic support."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.power_watts = spec.power_watts
        self._cell = SystolicArrayModel(spec.cell_rows, spec.cell_cols)

    def _gemm_seconds(self, m: int, k: int, n: int) -> float:
        """Scale-out GEMM: weight tiles and activation rows spread over cells."""
        cycles = self._cell.multi_cell_gemm_cycles(self.spec.num_cells, m, k, n)
        return cycles / self.spec.frequency_hz

    def _circconv_seconds(self, kernel: KernelOp) -> float:
        """GEMV-lowered circular convolutions, distributed across cells.

        Cell-wise parallelism is available (different convolutions on
        different cells) but column-wise parallelism within a cell is not,
        so each cell runs its share strictly sequentially.  The circulant
        matrix is generated on chip from the d-element operand, so DRAM only
        supplies the operands themselves; the dominant cost is pushing the
        O(d^2) shifted copies through the array's weight-load ports.
        """
        per_cell = -(-kernel.count // self.spec.num_cells)
        cycles = self._cell.circconv_cycles_gemv(kernel.vector_dim, per_cell).cycles
        compute_seconds = cycles / self.spec.frequency_hz
        memory_seconds = kernel.total_bytes / self.spec.dram_bandwidth_bytes_per_s
        return max(compute_seconds, memory_seconds)

    def kernel_time(self, kernel: KernelOp) -> float:
        if kernel.kind in (KernelKind.GEMM, KernelKind.CONV):
            return self._gemm_seconds(kernel.m, kernel.k, kernel.n)
        if kernel.kind is KernelKind.MATVEC:
            return self._gemm_seconds(kernel.m, kernel.k, kernel.n)
        if kernel.kind is KernelKind.CIRCCONV:
            return self._circconv_seconds(kernel)
        # Element-wise operations run on a narrow vector unit.
        elements = max(1, kernel.flops)
        cycles = -(-elements // self.spec.vector_lanes)
        return cycles / self.spec.frequency_hz


def make_device(name: str) -> DeviceModel:
    """Deprecated: instantiate a baseline device model by name.

    Thin shim over the backend registry — resolve names with
    :func:`repro.backends.get_backend` instead, which also covers the
    CogSys backends behind the same protocol.  Unknown names raise the
    registry's typed :class:`~repro.errors.BackendError` (a
    ``HardwareConfigError`` subclass, so legacy ``except`` clauses still
    catch it).
    """
    warnings.warn(
        "make_device() is deprecated; resolve backends by name via "
        "repro.backends.get_backend() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.backends.devices import DeviceBackend
    from repro.backends.registry import get_backend

    backend = get_backend(name)
    if not isinstance(backend, DeviceBackend):
        raise BackendError(
            f"backend '{name}' is not a baseline device model; use "
            "repro.backends.get_backend() to drive it through the unified "
            "protocol"
        )
    return backend.model
