"""Hardware models: the CogSys accelerator and baseline devices.

The paper evaluates CogSys with a cycle-accurate simulator plus a TSMC 28 nm
silicon flow; this subpackage reimplements the performance side of that
stack in Python:

* :mod:`repro.hardware.config` — accelerator configuration (array
  organisation, SRAM sizes, frequency, precision).
* :mod:`repro.hardware.pe` — the reconfigurable neuro/symbolic processing
  element (nsPE) and its per-precision area/power characteristics.
* :mod:`repro.hardware.systolic` — systolic-array GEMM cycle model and the
  GEMV lowering of circular convolution used by TPU-like baselines.
* :mod:`repro.hardware.bubble_stream` — the bubble-streaming (BS) dataflow:
  latency formulas plus a functional cycle-level simulator.
* :mod:`repro.hardware.mapping` — spatial/temporal (ST) mapping of circular
  convolutions onto the array, with the adaptive selection rule.
* :mod:`repro.hardware.scaling` — scale-up / scale-out array organisation.
* :mod:`repro.hardware.simd` — the custom SIMD unit for element-wise ops.
* :mod:`repro.hardware.memory` — double-buffered SRAM and DRAM model.
* :mod:`repro.hardware.energy` — area, power and energy accounting.
* :mod:`repro.hardware.roofline` — roofline analysis utilities.
* :mod:`repro.hardware.baselines` — CPU/GPU/edge-SoC and ML-accelerator
  (TPU/MTIA/Gemmini-like) device models.
* :mod:`repro.hardware.accelerator` — the CogSys accelerator model that ties
  everything together.

All of these execute workloads through the unified backend protocol: resolve
any model by name via :func:`repro.backends.get_backend` and call
``execute``; the entry points kept here are compatibility shims over that
layer.
"""

from repro.hardware.config import CogSysConfig
from repro.hardware.pe import PEMode, ReconfigurablePE
from repro.hardware.systolic import SystolicArrayModel
from repro.hardware.bubble_stream import (
    BubbleStreamSimulator,
    bs_latency_cycles,
)
from repro.hardware.mapping import MappingDecision, MappingMode, choose_mapping
from repro.hardware.scaling import ArrayOrganization, choose_organization
from repro.hardware.simd import SIMDUnit
from repro.hardware.memory import MemorySystem
from repro.hardware.energy import AreaPowerModel, Precision
from repro.hardware.roofline import Roofline, RooflinePoint
from repro.hardware.baselines import (
    DEVICE_SPECS,
    DeviceModel,
    GenericDevice,
    SystolicAcceleratorDevice,
    make_device,
)
from repro.hardware.accelerator import CogSysAccelerator, CogSysReport

__all__ = [
    "CogSysConfig",
    "PEMode",
    "ReconfigurablePE",
    "SystolicArrayModel",
    "BubbleStreamSimulator",
    "bs_latency_cycles",
    "MappingDecision",
    "MappingMode",
    "choose_mapping",
    "ArrayOrganization",
    "choose_organization",
    "SIMDUnit",
    "MemorySystem",
    "AreaPowerModel",
    "Precision",
    "Roofline",
    "RooflinePoint",
    "DEVICE_SPECS",
    "DeviceModel",
    "GenericDevice",
    "SystolicAcceleratorDevice",
    "make_device",
    "CogSysAccelerator",
    "CogSysReport",
]
