"""Scale-up / scale-out organisation of the CogSys cells.

The 16 32x32 cells can operate as one large logical array (scale-up), as 16
independent cells (scale-out), or as a partitioned mixture.  GEMM kernels
with small ``n``/``k`` dimensions waste most of a monolithic array, so the
scale-out organisation wins for the CNN front-ends the paper analyses
(Sec. V-E quotes 91.26 % utilisation and a 10.7x speedup over a single
128x128 array); symbolic kernels pick scale-up for high-dimensional vectors
and scale-out for low-dimensional ones (e.g. MIMONet's d = 64 bindings).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import HardwareConfigError, MappingError
from repro.hardware.systolic import SystolicArrayModel

__all__ = ["OrganizationMode", "ArrayOrganization", "choose_organization", "gemm_cycles_scaled"]


class OrganizationMode(enum.Enum):
    """How the cells are logically combined."""

    SCALE_UP = "scale_up"
    SCALE_OUT = "scale_out"


@dataclass(frozen=True)
class ArrayOrganization:
    """A concrete organisation of ``num_cells`` cells of ``rows x cols`` PEs."""

    mode: OrganizationMode
    num_cells: int
    cell_rows: int
    cell_cols: int

    def __post_init__(self) -> None:
        if min(self.num_cells, self.cell_rows, self.cell_cols) < 1:
            raise HardwareConfigError("cell counts and dimensions must be positive")

    @property
    def logical_arrays(self) -> int:
        """Number of independently schedulable arrays."""
        return 1 if self.mode is OrganizationMode.SCALE_UP else self.num_cells

    @property
    def logical_rows(self) -> int:
        """Rows of one logical array."""
        if self.mode is OrganizationMode.SCALE_UP:
            return self.cell_rows * self.num_cells
        return self.cell_rows

    @property
    def logical_cols(self) -> int:
        """Columns of one logical array."""
        return self.cell_cols

    @property
    def total_pes(self) -> int:
        """Total PEs across the organisation."""
        return self.num_cells * self.cell_rows * self.cell_cols

    def systolic_model(self) -> SystolicArrayModel:
        """Systolic model of one logical array."""
        return SystolicArrayModel(self.logical_rows, self.logical_cols)


def gemm_cycles_scaled(organization: ArrayOrganization, m: int, k: int, n: int) -> int:
    """Cycles for a GEMM under a given organisation.

    Scale-out splits the ``m`` dimension (independent activation rows) across
    the logical arrays; scale-up runs the whole GEMM on the single large
    array.
    """
    if min(m, k, n) < 1:
        raise MappingError(f"GEMM dimensions must be positive, got ({m}, {k}, {n})")
    model = organization.systolic_model()
    arrays = organization.logical_arrays
    m_per_array = -(-m // arrays)
    return model.gemm_cycles(m_per_array, k, n).cycles


def choose_organization(
    num_cells: int, cell_rows: int, cell_cols: int, m: int, k: int, n: int
) -> tuple[ArrayOrganization, int]:
    """Pick the organisation with the lower GEMM latency.

    Returns the chosen organisation and its cycle count.  Small weight
    matrices (``k``/``n`` much smaller than the monolithic array) favour
    scale-out; very large GEMMs amortise the monolithic array's fill cost
    and may favour scale-up.
    """
    candidates = [
        ArrayOrganization(OrganizationMode.SCALE_OUT, num_cells, cell_rows, cell_cols),
        ArrayOrganization(OrganizationMode.SCALE_UP, num_cells, cell_rows, cell_cols),
    ]
    best: tuple[ArrayOrganization, int] | None = None
    for organization in candidates:
        cycles = gemm_cycles_scaled(organization, m, k, n)
        if best is None or cycles < best[1]:
            best = (organization, cycles)
    return best
