"""Systolic-array cycle model (GEMM mode and GEMV-lowered circular convolution).

This model serves two purposes:

* it is the *GEMM mode* of the CogSys cells (the nsPE array behaves like a
  weight-stationary systolic array for convolutions and GEMMs), and
* it is the baseline model for TPU/MTIA/Gemmini-like accelerators, including
  the O(d^2) GEMV lowering those architectures need for circular
  convolution (Tab. IV / Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError, MappingError

__all__ = ["GemmCycleEstimate", "SystolicArrayModel"]


@dataclass(frozen=True)
class GemmCycleEstimate:
    """Cycle count and utilisation of one GEMM on a systolic array."""

    cycles: int
    ideal_macs: int
    array_macs_capacity: int

    @property
    def utilization(self) -> float:
        """Fraction of the array's MAC slots doing useful work."""
        if self.cycles == 0 or self.array_macs_capacity == 0:
            return 0.0
        return min(1.0, self.ideal_macs / (self.cycles * self.array_macs_capacity))


class SystolicArrayModel:
    """Weight-stationary systolic array of ``rows x cols`` MAC units."""

    def __init__(self, rows: int, cols: int, double_buffered: bool = True) -> None:
        if rows < 1 or cols < 1:
            raise HardwareConfigError(
                f"array dimensions must be positive, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.double_buffered = double_buffered

    @property
    def num_pes(self) -> int:
        """Number of MAC units in the array."""
        return self.rows * self.cols

    # -- GEMM --------------------------------------------------------------------
    def gemm_cycles(self, m: int, k: int, n: int) -> GemmCycleEstimate:
        """Cycles for a dense ``(m x k) @ (k x n)`` product.

        The array is weight-stationary: the ``k x n`` operand is tiled onto
        the PEs (``ceil(k/rows) * ceil(n/cols)`` tiles) and the ``m`` rows of
        the activation stream through each tile.  Each tile must also load
        its ``rows`` weight rows; with double buffering the load of the next
        tile overlaps the streaming of the current one, so a tile costs
        ``max(m, rows)`` cycles (weight loading dominates GEMV-like shapes
        with small ``m``, which is exactly why the GEMV lowering of circular
        convolution is so expensive on these arrays).  Without double
        buffering a tile costs ``m + rows`` cycles.
        """
        if min(m, k, n) < 1:
            raise MappingError(f"GEMM dimensions must be positive, got ({m}, {k}, {n})")
        row_tiles = -(-k // self.rows)
        col_tiles = -(-n // self.cols)
        tiles = row_tiles * col_tiles
        if self.double_buffered:
            tile_cycles = max(m, self.rows)
        else:
            tile_cycles = m + self.rows
        fill_drain = self.rows + self.cols - 2
        cycles = tiles * tile_cycles + fill_drain
        return GemmCycleEstimate(
            cycles=int(cycles),
            ideal_macs=m * k * n,
            array_macs_capacity=self.num_pes,
        )

    def multi_cell_gemm_cycles(self, num_cells: int, m: int, k: int, n: int) -> int:
        """Cycles for a GEMM distributed over ``num_cells`` identical arrays.

        The ``(k, n)`` weight tiles are spread across the cells; when there
        are fewer tiles than cells the surplus cells split the activation
        rows instead, so both wide-weight GEMMs (many tiles) and tall
        activation GEMMs (large ``m``) scale with the cell count.
        """
        if num_cells < 1:
            raise MappingError(f"num_cells must be positive, got {num_cells}")
        if min(m, k, n) < 1:
            raise MappingError(f"GEMM dimensions must be positive, got ({m}, {k}, {n})")
        row_tiles = -(-k // self.rows)
        col_tiles = -(-n // self.cols)
        tiles = row_tiles * col_tiles
        cells_for_rows = max(1, num_cells // tiles)
        m_per_cell = -(-m // cells_for_rows)
        if self.double_buffered:
            tile_cycles = max(m_per_cell, self.rows)
        else:
            tile_cycles = m_per_cell + self.rows
        tiles_per_cell = -(-tiles // num_cells)
        return tiles_per_cell * tile_cycles + self.rows + self.cols - 2

    # -- circular convolution lowered to GEMV ------------------------------------------
    def circconv_cycles_gemv(self, vector_dim: int, count: int = 1) -> GemmCycleEstimate:
        """Cycles for ``count`` circular convolutions lowered to GEMV.

        A systolic array without the bubble-streaming dataflow must
        materialise the ``d x d`` circulant matrix and run a matrix-vector
        product per circular convolution.  A GEMV streams a single activation
        row, so there is no way to parallelise multiple independent
        convolutions across columns of one cell (no column-wise parallelism,
        Tab. IV) — the ``count`` operations execute sequentially.
        """
        if vector_dim < 1 or count < 1:
            raise MappingError(
                f"vector_dim and count must be positive, got {vector_dim}, {count}"
            )
        single = self.gemm_cycles(m=1, k=vector_dim, n=vector_dim)
        return GemmCycleEstimate(
            cycles=single.cycles * count,
            ideal_macs=single.ideal_macs * count,
            array_macs_capacity=self.num_pes,
        )

    def circconv_gemv_bytes(self, vector_dim: int, count: int = 1, element_bytes: int = 4) -> int:
        """Traffic of the GEMV lowering: the circulant matrix plus vectors."""
        if vector_dim < 1 or count < 1:
            raise MappingError(
                f"vector_dim and count must be positive, got {vector_dim}, {count}"
            )
        per_op = vector_dim * vector_dim + 2 * vector_dim
        return per_op * count * element_bytes
