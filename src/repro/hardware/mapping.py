"""Adaptive spatial/temporal (ST) mapping of circular convolutions.

The scale-up organisation of the CogSys array exposes ``N`` independent 1-D
nsPE arrays of ``M`` PEs each.  A batch of ``k`` circular convolutions of
dimension ``d`` can be mapped two ways (Fig. 12):

* **Spatial** — one convolution at a time, its ``d`` elements folded across
  all ``N x M`` PEs.  Latency ``k * ceil(d / (N*M)) * T`` with only ``2d``
  memory reads per ``T``-cycle pass (both operands streamed once).
* **Temporal** — ``N`` different convolutions in flight, one per array, each
  folded over its own ``M`` PEs.  Latency ``ceil(k/N) * ceil(d/M) * T`` with
  ``(d + M) * N`` memory reads per pass.

``T = 3M + d - 1`` is the per-pass bubble-streaming latency.  CogSys picks
the mapping with the lower latency and breaks ties towards the lower
bandwidth demand, which reproduces the paper's choices (temporal for the
high-``k`` NVSA/LVRF workloads, spatial for single large convolutions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MappingError
from repro.hardware.bubble_stream import bs_latency_cycles

__all__ = ["MappingMode", "MappingDecision", "spatial_mapping", "temporal_mapping", "choose_mapping"]


class MappingMode(enum.Enum):
    """The two ST mapping modes."""

    SPATIAL = "spatial"
    TEMPORAL = "temporal"


@dataclass(frozen=True)
class MappingDecision:
    """Latency/bandwidth outcome of mapping a circconv batch onto the array."""

    mode: MappingMode
    cycles: int
    memory_reads_per_pass: int
    pass_cycles: int
    num_arrays: int
    array_length: int

    @property
    def bandwidth_words_per_cycle(self) -> float:
        """Average operand words fetched per cycle during a pass."""
        return self.memory_reads_per_pass / self.pass_cycles if self.pass_cycles else 0.0


def _validate(num_arrays: int, array_length: int, num_convs: int, vector_dim: int) -> None:
    if min(num_arrays, array_length, num_convs, vector_dim) < 1:
        raise MappingError(
            "num_arrays, array_length, num_convs and vector_dim must all be positive, got "
            f"({num_arrays}, {array_length}, {num_convs}, {vector_dim})"
        )


def spatial_mapping(
    num_arrays: int, array_length: int, num_convs: int, vector_dim: int
) -> MappingDecision:
    """Map the batch spatially: one convolution folded across all arrays."""
    _validate(num_arrays, array_length, num_convs, vector_dim)
    pass_cycles = bs_latency_cycles(vector_dim, min(array_length, vector_dim))
    folds = -(-vector_dim // (num_arrays * array_length))
    cycles = num_convs * folds * pass_cycles
    return MappingDecision(
        mode=MappingMode.SPATIAL,
        cycles=int(cycles),
        memory_reads_per_pass=2 * vector_dim,
        pass_cycles=pass_cycles,
        num_arrays=num_arrays,
        array_length=array_length,
    )


def temporal_mapping(
    num_arrays: int, array_length: int, num_convs: int, vector_dim: int
) -> MappingDecision:
    """Map the batch temporally: a different convolution on every array."""
    _validate(num_arrays, array_length, num_convs, vector_dim)
    pass_cycles = bs_latency_cycles(vector_dim, min(array_length, vector_dim))
    conv_groups = -(-num_convs // num_arrays)
    folds = -(-vector_dim // array_length)
    cycles = conv_groups * folds * pass_cycles
    return MappingDecision(
        mode=MappingMode.TEMPORAL,
        cycles=int(cycles),
        memory_reads_per_pass=(vector_dim + array_length) * num_arrays,
        pass_cycles=pass_cycles,
        num_arrays=num_arrays,
        array_length=array_length,
    )


def choose_mapping(
    num_arrays: int, array_length: int, num_convs: int, vector_dim: int
) -> MappingDecision:
    """Adaptively choose between spatial and temporal mapping.

    The lower-latency mapping wins; on a latency tie the mapping with the
    lower memory-read requirement (spatial, for large ``d``) is preferred so
    bandwidth pressure stays bounded.
    """
    spatial = spatial_mapping(num_arrays, array_length, num_convs, vector_dim)
    temporal = temporal_mapping(num_arrays, array_length, num_convs, vector_dim)
    if temporal.cycles < spatial.cycles:
        return temporal
    if spatial.cycles < temporal.cycles:
        return spatial
    return min(spatial, temporal, key=lambda decision: decision.memory_reads_per_pass)
