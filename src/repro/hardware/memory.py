"""On-chip SRAM (double-buffered) and DRAM traffic model.

CogSys backs the compute array with three double-buffered SRAMs (Sec. V-F):
SRAM A holds weights shared by all cells, SRAM B is distributed across cells
for activations/operands, SRAM C stages outputs.  Double buffering lets DRAM
transfers overlap compute, so a kernel's wall-clock time is the maximum of
its compute time and its DRAM transfer time; data that fits on-chip is only
fetched once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError

__all__ = ["MemorySystem", "TransferEstimate"]


@dataclass(frozen=True)
class TransferEstimate:
    """DRAM traffic and timing for one kernel."""

    dram_bytes: int
    transfer_seconds: float
    fits_on_chip: bool


@dataclass(frozen=True)
class MemorySystem:
    """Double-buffered SRAM hierarchy plus a DRAM channel."""

    sram_a_bytes: int
    sram_b_bytes: int
    sram_c_bytes: int
    dram_bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if min(self.sram_a_bytes, self.sram_b_bytes, self.sram_c_bytes) < 0:
            raise HardwareConfigError("SRAM sizes must be non-negative")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise HardwareConfigError("DRAM bandwidth must be positive")

    @property
    def total_sram_bytes(self) -> int:
        """Total on-chip capacity."""
        return self.sram_a_bytes + self.sram_b_bytes + self.sram_c_bytes

    def transfer(self, bytes_read: int, bytes_written: int, resident_bytes: int = 0) -> TransferEstimate:
        """Estimate DRAM traffic for a kernel.

        ``resident_bytes`` is the portion of the kernel's working set already
        resident on chip (e.g. weights kept in SRAM A across reuse); it is
        subtracted from the read traffic.
        """
        if min(bytes_read, bytes_written, resident_bytes) < 0:
            raise HardwareConfigError("byte counts must be non-negative")
        dram_reads = max(0, bytes_read - resident_bytes)
        dram_bytes = dram_reads + bytes_written
        working_set = bytes_read + bytes_written
        return TransferEstimate(
            dram_bytes=dram_bytes,
            transfer_seconds=dram_bytes / self.dram_bandwidth_bytes_per_s,
            fits_on_chip=working_set <= self.total_sram_bytes,
        )

    def overlapped_seconds(self, compute_seconds: float, transfer: TransferEstimate) -> float:
        """Wall-clock time with double-buffered compute/transfer overlap."""
        if compute_seconds < 0:
            raise HardwareConfigError("compute_seconds must be non-negative")
        return max(compute_seconds, transfer.transfer_seconds)
