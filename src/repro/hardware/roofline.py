"""Roofline model utilities.

Used for the Fig. 5 characterization (neuro kernels are compute-bound,
symbolic kernels are memory-bound on GPUs) and the Fig. 11c comparison of
the bubble-streaming dataflow against GEMV lowerings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError

__all__ = ["Roofline", "RooflinePoint"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a roofline plot."""

    name: str
    arithmetic_intensity: float
    attainable_flops: float
    memory_bound: bool

    @property
    def bound(self) -> str:
        """Human-readable bound classification."""
        return "memory" if self.memory_bound else "compute"


@dataclass(frozen=True)
class Roofline:
    """A device roofline defined by peak compute and memory bandwidth."""

    name: str
    peak_flops: float
    memory_bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth_bytes_per_s <= 0:
            raise HardwareConfigError(
                "peak_flops and memory bandwidth must be positive"
            )

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity at which the device becomes compute-bound."""
        return self.peak_flops / self.memory_bandwidth_bytes_per_s

    def attainable_flops(self, arithmetic_intensity: float) -> float:
        """Attainable FLOP/s at a given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise HardwareConfigError("arithmetic intensity must be non-negative")
        return min(self.peak_flops, arithmetic_intensity * self.memory_bandwidth_bytes_per_s)

    def place(self, name: str, flops: int, traffic_bytes: int) -> RooflinePoint:
        """Place a kernel with the given FLOPs and traffic on this roofline."""
        if flops < 0 or traffic_bytes < 0:
            raise HardwareConfigError("flops and traffic must be non-negative")
        intensity = flops / traffic_bytes if traffic_bytes else float("inf")
        attainable = self.attainable_flops(min(intensity, 1e12))
        return RooflinePoint(
            name=name,
            arithmetic_intensity=intensity,
            attainable_flops=attainable,
            memory_bound=intensity < self.ridge_point,
        )

    def time_seconds(self, flops: int, traffic_bytes: int) -> float:
        """Roofline execution-time lower bound for a kernel."""
        if flops < 0 or traffic_bytes < 0:
            raise HardwareConfigError("flops and traffic must be non-negative")
        compute_time = flops / self.peak_flops
        memory_time = traffic_bytes / self.memory_bandwidth_bytes_per_s
        return max(compute_time, memory_time)
