"""CogSys accelerator configuration.

The default values reproduce the accelerator the paper taped out (Fig. 14):
16 reconfigurable cells of 32x32 nsPEs, a 512-PE SIMD unit, 4.5 MB of
double-buffered SRAM (256 KB SRAM A + 4 MB SRAM B + SRAM C), 0.8 GHz at
FP8/INT8 precision, and a 700 GB/s DRAM interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.quantization import Precision
from repro.errors import HardwareConfigError

__all__ = ["CogSysConfig"]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class CogSysConfig:
    """Static configuration of a CogSys accelerator instance."""

    num_cells: int = 16
    cell_rows: int = 32
    cell_cols: int = 32
    simd_pes: int = 512
    frequency_hz: float = 0.8e9
    sram_a_bytes: int = 256 * KIB
    sram_b_bytes: int = 4 * MIB
    sram_c_bytes: int = 256 * KIB
    dram_bandwidth_bytes_per_s: float = 700e9
    precision: Precision = Precision.INT8
    #: per-kernel configuration/dispatch overhead on the accelerator (cycles)
    dispatch_overhead_cycles: int = 64

    def __post_init__(self) -> None:
        if min(self.num_cells, self.cell_rows, self.cell_cols, self.simd_pes) < 1:
            raise HardwareConfigError(
                "num_cells, cell_rows, cell_cols and simd_pes must be positive"
            )
        if self.frequency_hz <= 0 or self.dram_bandwidth_bytes_per_s <= 0:
            raise HardwareConfigError("frequency and DRAM bandwidth must be positive")
        if min(self.sram_a_bytes, self.sram_b_bytes, self.sram_c_bytes) < 0:
            raise HardwareConfigError("SRAM sizes must be non-negative")
        if self.dispatch_overhead_cycles < 0:
            raise HardwareConfigError("dispatch overhead must be non-negative")

    # -- derived quantities ------------------------------------------------------
    @property
    def pes_per_cell(self) -> int:
        """Number of nsPEs in one cell."""
        return self.cell_rows * self.cell_cols

    @property
    def total_pes(self) -> int:
        """Total nsPE count across all cells."""
        return self.num_cells * self.pes_per_cell

    @property
    def total_sram_bytes(self) -> int:
        """Total on-chip SRAM capacity."""
        return self.sram_a_bytes + self.sram_b_bytes + self.sram_c_bytes

    @property
    def peak_macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle (array plus SIMD)."""
        return self.total_pes + self.simd_pes

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s assuming one MAC (2 FLOPs) per PE per cycle."""
        return 2.0 * self.total_pes * self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        if cycles < 0:
            raise HardwareConfigError(f"cycles must be non-negative, got {cycles}")
        return cycles / self.frequency_hz

    # -- scale-up view used by the symbolic mapping -------------------------------
    @property
    def scale_up_columns(self) -> int:
        """Number of independent 1-D nsPE arrays in the scale-up arrangement.

        The (N = 32, M = 512) organisation of Sec. V-E stacks the 16 cells
        into 32 columns of 512 PEs each.
        """
        return self.cell_cols

    @property
    def scale_up_column_depth(self) -> int:
        """PEs per 1-D array in the scale-up arrangement."""
        return self.cell_rows * self.num_cells
