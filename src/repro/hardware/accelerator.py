"""The CogSys accelerator model.

This is the top-level performance model: it converts each kernel of a
workload into cycles using the appropriate sub-model (scale-up/scale-out
systolic GEMM for neural kernels, bubble-streaming dataflow with adaptive
ST mapping for circular convolutions, the SIMD unit for element-wise
kernels), overlaps compute with DRAM transfers through the double-buffered
memory system, and drives either the sequential or the adaptive (adSCH)
scheduler for end-to-end latency.

Ablation switches reproduce the paper's Fig. 19 / Tab. V studies:

* ``reconfigurable_symbolic=False`` removes the nsPE circular-convolution
  mode, forcing the GEMV lowering a plain systolic array would use.
* ``scale_out=False`` fuses the 16 cells into one monolithic array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import SymbolicFractionMixin
from repro.errors import HardwareConfigError
from repro.hardware.config import CogSysConfig
from repro.hardware.energy import AreaPowerModel
from repro.hardware.mapping import MappingDecision, choose_mapping
from repro.hardware.memory import MemorySystem
from repro.hardware.simd import SIMDUnit
from repro.hardware.systolic import SystolicArrayModel
from repro.scheduler import ScheduleResult
from repro.workloads.base import KernelKind, KernelOp, Workload

__all__ = ["CogSysAccelerator", "CogSysReport"]


@dataclass(frozen=True)
class CogSysReport(SymbolicFractionMixin):
    """End-to-end simulation summary for one workload on CogSys.

    Deprecated shim over :class:`repro.backends.base.ExecutionReport`;
    ``symbolic_fraction`` comes from the shared stage-summed mixin (the
    adaptive scheduler overlaps stages, so the end-to-end total can be
    smaller than the stage sum).
    """

    workload: str
    scheduler: str
    total_cycles: int
    total_seconds: float
    neural_seconds: float
    symbolic_seconds: float
    energy_joules: float
    array_occupancy: float
    kernel_seconds: dict[str, float] = field(default_factory=dict)
    schedule: ScheduleResult | None = None


class CogSysAccelerator:
    """Cycle-level performance model of the CogSys accelerator."""

    name = "cogsys"

    def __init__(
        self,
        config: CogSysConfig | None = None,
        reconfigurable_symbolic: bool = True,
        scale_out: bool = True,
    ) -> None:
        self.config = config or CogSysConfig()
        self.reconfigurable_symbolic = reconfigurable_symbolic
        self.scale_out = scale_out
        self.area_power = AreaPowerModel(self.config.precision)
        self.simd = SIMDUnit(num_pes=self.config.simd_pes)
        self.memory = MemorySystem(
            sram_a_bytes=self.config.sram_a_bytes,
            sram_b_bytes=self.config.sram_b_bytes,
            sram_c_bytes=self.config.sram_c_bytes,
            dram_bandwidth_bytes_per_s=self.config.dram_bandwidth_bytes_per_s,
        )
        self.power_watts = self.area_power.accelerator_power_w(
            total_pes=self.config.total_pes, simd_pes=self.config.simd_pes
        )

    # -- component areas --------------------------------------------------------
    def area_mm2(self) -> float:
        """Compute area of the configured accelerator."""
        return self.area_power.accelerator_area_mm2(
            total_pes=self.config.total_pes, simd_pes=self.config.simd_pes
        )

    # -- per-kernel cycle models ---------------------------------------------------
    def _cell_model(self, num_cells: int) -> SystolicArrayModel:
        """Systolic model of the allocated cell block."""
        if self.scale_out:
            return SystolicArrayModel(self.config.cell_rows, self.config.cell_cols)
        return SystolicArrayModel(
            self.config.cell_rows * num_cells, self.config.cell_cols
        )

    def _gemm_cycles(self, kernel: KernelOp, num_cells: int) -> int:
        model = self._cell_model(num_cells)
        if self.scale_out:
            # Distribute weight tiles (and, when tiles are scarce, activation
            # rows) across the allocated cells.
            return model.multi_cell_gemm_cycles(num_cells, kernel.m, kernel.k, kernel.n)
        return model.gemm_cycles(kernel.m, kernel.k, kernel.n).cycles

    def _circconv_cycles(self, kernel: KernelOp, num_cells: int) -> int:
        if not self.reconfigurable_symbolic:
            # Without the nsPE circular-convolution mode the array behaves
            # like a conventional systolic accelerator: GEMV lowering with
            # cell-wise parallelism only.
            model = SystolicArrayModel(self.config.cell_rows, self.config.cell_cols)
            per_cell = -(-kernel.count // num_cells)
            return model.circconv_cycles_gemv(kernel.vector_dim, per_cell).cycles
        decision = self.circconv_mapping(kernel.vector_dim, kernel.count, num_cells)
        return decision.cycles

    def circconv_mapping(
        self, vector_dim: int, count: int, num_cells: int | None = None,
        allow_scale_out: bool | None = None,
    ) -> MappingDecision:
        """Best ST mapping of a circular-convolution batch onto the cells.

        Both the scale-up view (columns spanning all allocated cells, long
        1-D arrays) and the scale-out view (each cell contributing its own
        columns, short arrays) are evaluated and the faster one is kept.
        ``allow_scale_out=False`` pins the scale-up organisation (used when
        reproducing sweeps the paper ran on the fixed N=32, M=512 layout).
        """
        if num_cells is None:
            num_cells = self.config.num_cells
        if num_cells < 1:
            raise HardwareConfigError(f"num_cells must be positive, got {num_cells}")
        if allow_scale_out is None:
            allow_scale_out = self.scale_out
        organisations = [
            # Scale-up: cell columns are chained into long arrays.
            (self.config.cell_cols, self.config.cell_rows * num_cells),
        ]
        if allow_scale_out:
            # Scale-out: every cell exposes its own columns as short arrays.
            organisations.append(
                (self.config.cell_cols * num_cells, self.config.cell_rows)
            )
        best: MappingDecision | None = None
        for num_arrays, array_length in organisations:
            decision = choose_mapping(num_arrays, array_length, count, vector_dim)
            if best is None or decision.cycles < best.cycles:
                best = decision
        return best

    def kernel_cycles(self, kernel: KernelOp, num_cells: int | None = None) -> int:
        """Cycles to execute one kernel on ``num_cells`` cells (or the SIMD unit)."""
        if num_cells is None:
            num_cells = self.config.num_cells
        if num_cells < 1:
            raise HardwareConfigError(f"num_cells must be positive, got {num_cells}")
        num_cells = min(num_cells, self.config.num_cells)
        if kernel.kind is KernelKind.ELEMENTWISE:
            compute = self.simd.elementwise_cycles(
                elements=max(1, kernel.m), ops_per_element=max(1, kernel.flops // max(1, kernel.m))
            )
        elif kernel.kind is KernelKind.CIRCCONV:
            compute = self._circconv_cycles(kernel, num_cells)
        else:
            compute = self._gemm_cycles(kernel, num_cells)
        # Overlap DRAM traffic with compute (double-buffered SRAM); weights
        # resident in SRAM A are not re-fetched per kernel.
        transfer = self.memory.transfer(
            bytes_read=kernel.bytes_read,
            bytes_written=kernel.bytes_written,
            resident_bytes=min(kernel.bytes_read, self.config.sram_a_bytes),
        )
        transfer_cycles = transfer.transfer_seconds * self.config.frequency_hz
        return int(max(compute, transfer_cycles)) + self.config.dispatch_overhead_cycles

    def kernel_time(self, kernel: KernelOp, num_cells: int | None = None) -> float:
        """Wall-clock seconds for one kernel."""
        return self.config.cycles_to_seconds(self.kernel_cycles(kernel, num_cells))

    # -- end-to-end simulation ----------------------------------------------------------
    def simulate(self, workload: Workload, scheduler: str = "adaptive") -> CogSysReport:
        """Simulate a workload end to end under the chosen scheduler.

        Deprecated shim: the schedule-and-summarize logic lives in
        :class:`repro.backends.cogsys.CogSysBackend`; this method only
        repackages its :class:`~repro.backends.base.ExecutionReport` into
        the legacy :class:`CogSysReport` shape.
        """
        from repro.backends.cogsys import CogSysBackend

        report = CogSysBackend(self).execute(workload, scheduler=scheduler)
        return CogSysReport(
            workload=report.workload,
            scheduler=report.scheduler,
            total_cycles=report.total_cycles,
            total_seconds=report.total_seconds,
            neural_seconds=report.neural_seconds,
            symbolic_seconds=report.symbolic_seconds,
            energy_joules=report.energy_joules,
            array_occupancy=report.array_occupancy,
            kernel_seconds=dict(report.kernel_seconds),
            schedule=report.schedule,
        )

    def workload_time(self, workload: Workload, scheduler: str = "adaptive") -> CogSysReport:
        """Alias of :meth:`simulate` mirroring the baseline device interface."""
        return self.simulate(workload, scheduler=scheduler)
