"""Scenario DSL: compose traffic phases into reproducible serving scenarios.

The scenario presets used to be hand-written traffic functions; this
module replaces them with a small declarative vocabulary.  A
:class:`ScenarioSpec` is a named sequence of *phases*, each a frozen
description of one stretch of traffic:

* :func:`steady` — constant-rate Poisson arrivals,
* :func:`ramp` — linearly ramping Poisson rate (piecewise-constant steps),
* :func:`burst` — two-state MMPP (normal/burst) bursty traffic,
* :func:`drain` — an arrival-free gap that lets queues empty,
* :func:`mix_shift` — constant rate while the workload mix interpolates
  from one distribution to another (e.g. a model rollout).

Compilation turns phases into ``(arrival process, duration)`` segments and
generates them back to back.  Seeding follows the repo's segment
convention: a single-segment scenario uses the caller's seed directly (so
DSL re-expressions of the one-process presets are request-for-request
identical to the originals), while multi-segment scenarios give segment
``i`` the sub-seed ``seed * 10_007 + i`` — exactly
:func:`~repro.serving.traffic.concatenate_segments` semantics.

``load_scale`` multiplies every phase's arrival rates and
``duration_scale`` stretches every phase's duration, matching the knobs
``repro serve`` exposes.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.serving.chaos import ChaosTimeline
from repro.serving.control import ControllerConfig
from repro.serving.sessions import SessionConfig
from repro.serving.traffic import (
    SEED_STRIDE,
    ArrivalProcess,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    WorkloadMix,
)

__all__ = [
    "Phase",
    "steady",
    "ramp",
    "burst",
    "drain",
    "mix_shift",
    "ScenarioSpec",
]



def _normalize_mix(mix: Mapping[str, float] | None) -> tuple[tuple[str, float], ...]:
    """A hashable, validated ``(name, weight)`` form of a workload mix.

    ``None`` means the uniform mix over every registered workload.
    Validation happens eagerly (via :class:`WorkloadMix`) so a typo in a
    scenario definition fails at definition time, not mid-run.
    """
    if mix is None:
        built = WorkloadMix.uniform()
    else:
        built = WorkloadMix(dict(mix))
    return tuple(zip(built.names, built.probabilities))


def _build_mix(weights: tuple[tuple[str, float], ...]) -> WorkloadMix:
    """Rebuild a :class:`WorkloadMix` from its normalized weight tuple."""
    return WorkloadMix(dict(weights))


@dataclass(frozen=True)
class Phase:
    """One stretch of a scenario's traffic.

    ``kind`` selects the compilation rule; ``params`` holds the
    kind-specific knobs.  Use the factory functions (:func:`steady`,
    :func:`ramp`, :func:`burst`, :func:`drain`, :func:`mix_shift`) rather
    than constructing phases directly.
    """

    kind: str
    duration_s: float
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ServingError(
                f"phase duration must be positive, got {self.duration_s}"
            )

    def segments(
        self, load_scale: float, duration_scale: float
    ) -> list[tuple[ArrivalProcess | None, float]]:
        """Compile to ``(process, duration)`` segments (``None`` = silence)."""
        params = dict(self.params)
        duration = self.duration_s * duration_scale
        if self.kind == "steady":
            return [
                (
                    PoissonArrivals(
                        params["rate_rps"] * load_scale,
                        _build_mix(params["mix"]),
                    ),
                    duration,
                )
            ]
        if self.kind == "drain":
            return [(None, duration)]
        if self.kind == "burst":
            return [
                (
                    MMPPArrivals(
                        normal_rate_rps=params["base_rps"] * load_scale,
                        burst_rate_rps=params["burst_rps"] * load_scale,
                        mix=_build_mix(params["mix"]),
                        mean_normal_s=params["mean_normal_s"],
                        mean_burst_s=params["mean_burst_s"],
                    ),
                    duration,
                )
            ]
        if self.kind == "ramp":
            steps = params["steps"]
            mix = _build_mix(params["mix"])
            start = params["start_rps"]
            end = params["end_rps"]
            step_duration = duration / steps
            return [
                (
                    PoissonArrivals(
                        # midpoint rate of the step, so the ramp's total
                        # offered load matches the continuous ramp's
                        (start + (end - start) * (step + 0.5) / steps)
                        * load_scale,
                        mix,
                    ),
                    step_duration,
                )
                for step in range(steps)
            ]
        if self.kind == "mix_shift":
            steps = params["steps"]
            mix_from = dict(params["mix_from"])
            mix_to = dict(params["mix_to"])
            names = sorted(set(mix_from) | set(mix_to))
            rate = params["rate_rps"] * load_scale
            step_duration = duration / steps
            segments = []
            for step in range(steps):
                t = (step + 0.5) / steps
                weights = {
                    name: (1.0 - t) * mix_from.get(name, 0.0)
                    + t * mix_to.get(name, 0.0)
                    for name in names
                }
                segments.append(
                    (PoissonArrivals(rate, WorkloadMix(weights)), step_duration)
                )
            return segments
        raise ServingError(f"unknown phase kind '{self.kind}'")


def steady(rate_rps: float, duration_s: float,
           mix: Mapping[str, float] | None = None) -> Phase:
    """Constant Poisson arrivals at ``rate_rps`` for ``duration_s``."""
    if rate_rps <= 0:
        raise ServingError(f"steady rate must be positive, got {rate_rps}")
    return Phase(
        kind="steady",
        duration_s=duration_s,
        params=(("rate_rps", rate_rps), ("mix", _normalize_mix(mix))),
    )


def ramp(start_rps: float, end_rps: float, duration_s: float,
         mix: Mapping[str, float] | None = None, steps: int = 8) -> Phase:
    """Linear rate ramp from ``start_rps`` to ``end_rps``.

    Compiled as ``steps`` piecewise-constant Poisson segments at the step
    midpoints, which preserves the ramp's total offered load.
    """
    if start_rps <= 0 or end_rps <= 0:
        raise ServingError("ramp rates must be positive")
    if steps < 1:
        raise ServingError(f"ramp needs at least one step, got {steps}")
    return Phase(
        kind="ramp",
        duration_s=duration_s,
        params=(
            ("start_rps", start_rps),
            ("end_rps", end_rps),
            ("steps", steps),
            ("mix", _normalize_mix(mix)),
        ),
    )


def burst(base_rps: float, burst_rps: float, duration_s: float,
          mix: Mapping[str, float] | None = None,
          mean_normal_s: float = 1.0, mean_burst_s: float = 0.2) -> Phase:
    """Bursty MMPP traffic alternating ``base_rps`` and ``burst_rps``."""
    if base_rps <= 0 or burst_rps <= 0:
        raise ServingError("burst rates must be positive")
    if mean_normal_s <= 0 or mean_burst_s <= 0:
        raise ServingError("burst dwell times must be positive")
    return Phase(
        kind="burst",
        duration_s=duration_s,
        params=(
            ("base_rps", base_rps),
            ("burst_rps", burst_rps),
            ("mean_normal_s", mean_normal_s),
            ("mean_burst_s", mean_burst_s),
            ("mix", _normalize_mix(mix)),
        ),
    )


def drain(duration_s: float) -> Phase:
    """An arrival-free gap: the clock advances, queues get to empty."""
    return Phase(kind="drain", duration_s=duration_s)


def mix_shift(rate_rps: float, duration_s: float,
              mix_from: Mapping[str, float], mix_to: Mapping[str, float],
              steps: int = 4) -> Phase:
    """Constant-rate traffic whose workload mix interpolates ``from -> to``.

    Models gradual workload migrations (a rollout shifting traffic from
    one model family to another) as ``steps`` piecewise mixes evaluated at
    the step midpoints.
    """
    if rate_rps <= 0:
        raise ServingError(f"mix_shift rate must be positive, got {rate_rps}")
    if steps < 1:
        raise ServingError(f"mix_shift needs at least one step, got {steps}")
    return Phase(
        kind="mix_shift",
        duration_s=duration_s,
        params=(
            ("rate_rps", rate_rps),
            ("steps", steps),
            ("mix_from", _normalize_mix(mix_from)),
            ("mix_to", _normalize_mix(mix_to)),
        ),
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, phase-composed serving scenario.

    The declarative counterpart of
    :class:`~repro.serving.scenarios.Scenario`: phases describe the
    traffic, the remaining fields pin the fleet, batching policy and SLO.
    ``build_traffic`` generates the request stream; ``scenario()``
    packages the spec in the preset registry's runtime form.
    """

    name: str
    description: str
    phases: tuple[Phase, ...]
    num_chips: int = 2
    router: str = "jsq"
    policy: str = "continuous"
    slo_s: float = 5e-3
    #: incident timeline injected into every run of the scenario (in
    #: unscaled phase time; ``run_scenario`` applies ``duration_scale``)
    chaos: ChaosTimeline | None = None
    #: closed-loop user population replacing the open-loop phases
    sessions: SessionConfig | None = None
    #: fleet controller every run of the scenario executes under
    #: (:mod:`repro.serving.control`); None = static fleet
    controller: ControllerConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("a scenario spec needs a name")
        if self.controller is not None:
            if not isinstance(self.controller, ControllerConfig):
                raise ServingError(
                    "controller must be a ControllerConfig, "
                    f"got {type(self.controller).__name__}"
                )
            if self.sessions is not None:
                raise ServingError(
                    f"scenario '{self.name}' is closed-loop (sessions) — "
                    "a fleet controller needs open-loop traffic"
                )
        if self.sessions is not None:
            if self.phases:
                raise ServingError(
                    f"scenario '{self.name}' is closed-loop (sessions) — "
                    "it cannot also declare open-loop phases"
                )
            if not isinstance(self.sessions, SessionConfig):
                raise ServingError(
                    "sessions must be a SessionConfig, "
                    f"got {type(self.sessions).__name__}"
                )
        elif not self.phases:
            raise ServingError(f"scenario '{self.name}' has no phases")
        if self.phases and all(phase.kind == "drain" for phase in self.phases):
            raise ServingError(
                f"scenario '{self.name}' is all drain phases — it would "
                "generate no traffic"
            )
        if self.chaos is not None and not isinstance(self.chaos, ChaosTimeline):
            raise ServingError(
                f"chaos must be a ChaosTimeline, got {type(self.chaos).__name__}"
            )
        if self.num_chips < 1:
            raise ServingError(f"num_chips must be positive, got {self.num_chips}")
        if self.slo_s <= 0:
            raise ServingError(f"slo_s must be positive, got {self.slo_s}")

    @property
    def duration_s(self) -> float:
        """Total unscaled duration across phases."""
        return sum(phase.duration_s for phase in self.phases)

    def build_traffic(
        self, seed: int = 0, load_scale: float = 1.0, duration_scale: float = 1.0
    ) -> list[Request]:
        """Generate the scenario's request stream.

        Single-segment scenarios use ``seed`` directly; multi-segment ones
        follow the ``concatenate_segments`` sub-seed convention (segment
        ``i`` gets ``seed * 10_007 + i``, drains included), so streams stay
        deterministic yet uncorrelated across segments.
        """
        if load_scale <= 0 or duration_scale <= 0:
            raise ServingError("load_scale and duration_scale must be positive")
        if self.sessions is not None:
            raise ServingError(
                f"scenario '{self.name}' is closed-loop — its traffic is "
                "generated by run_sessions, not build_traffic"
            )
        segments: list[tuple[ArrivalProcess | None, float]] = []
        for phase in self.phases:
            segments.extend(phase.segments(load_scale, duration_scale))
        single = len(segments) == 1
        requests: list[Request] = []
        offset = 0.0
        for index, (process, duration) in enumerate(segments):
            if process is not None:
                requests.extend(
                    process.generate(
                        duration,
                        seed=seed if single else seed * SEED_STRIDE + index,
                        start_s=offset,
                        start_id=len(requests),
                    )
                )
            offset += duration
        return requests

    def scenario(self):
        """This spec as a runtime :class:`~repro.serving.scenarios.Scenario`."""
        from repro.serving.scenarios import Scenario

        return Scenario(
            name=self.name,
            description=self.description,
            traffic=self.build_traffic,
            num_chips=self.num_chips,
            router=self.router,
            policy=self.policy,
            slo_s=self.slo_s,
            spec=self,
            chaos=self.chaos,
            sessions=self.sessions,
            controller=self.controller,
        )
