"""Request-level serving simulator on top of the CogSys cycle model.

The paper evaluates single-query latency on one accelerator; this package
asks the production question — what happens under *traffic*.  It layers a
deterministic discrete-event simulator over the cycle-level
:class:`~repro.hardware.accelerator.CogSysAccelerator` model:

* :mod:`~repro.serving.traffic` — seeded arrival processes (Poisson,
  bursty MMPP, trace replay) over the four registered workloads,
* :mod:`~repro.serving.batching` — batching policies that amortize
  per-kernel dispatch across same-workload requests,
* :mod:`~repro.serving.fleet` — multi-chip (optionally heterogeneous)
  fleets with routing policies and shared per-``(workload, batch)``
  backend report caches,
* :mod:`~repro.serving.simulator` — the high-throughput event core:
  index-based arrivals over columnar chunks, slot-keyed chip queues and a
  hoisted service-time table, producing per-request latency traces (or
  bounded-memory streamed aggregates), utilization and energy,
* :mod:`~repro.serving.trace` — JSONL request traces: record any
  generator or scenario, replay deterministically in streaming chunks,
* :mod:`~repro.serving.dsl` — the scenario DSL (steady/ramp/burst/drain/
  mix-shift phases composed into :class:`~repro.serving.dsl.ScenarioSpec`),
* :mod:`~repro.serving.chaos` — trace-replayable incident timelines
  (chip fail/recover, straggler multipliers, power-cap windows) injected
  as deterministic events into the event core (``repro serve --chaos``),
* :mod:`~repro.serving.sessions` — closed-loop session traffic: a fixed
  user population with think-time loops and multi-turn conversations, so
  offered load responds to observed latency (``repro serve --sessions``),
* :mod:`~repro.serving.metrics` — tail latency, goodput under SLO,
  saturation summaries and resilience accounting (losses, tail
  inflation, recovery time) over full-trace or streamed results,
* :mod:`~repro.serving.scenarios` — DSL-defined presets (steady, diurnal,
  flash-crowd, mixed-workload, ramp-surge, chip-outage, straggler-storm,
  session-surge) runnable via ``repro serve``,
* :mod:`~repro.serving.sharding` — component-sharded execution: factor a
  router-independent fleet into per-shard simulations whose merged result
  is byte-identical to the single-shard run,
* :mod:`~repro.serving.suite` — parallel suite runner: fan independent
  (scenario, config) cases across a persistent process pool with
  pre-warmed service tables (``repro serve --jobs N``),
* :mod:`~repro.serving.profile` — per-phase wall-clock breakdown of one
  scenario run (``repro serve --profile``),
* :mod:`~repro.serving.telemetry` — windowed time-series telemetry
  (queue depth, utilization, windowed tail latency, energy/window) and
  per-request lifecycle spans, byte-identical across the full-trace,
  streamed and sharded paths,
* :mod:`~repro.serving.exporters` — JSONL / Prometheus-text exports and
  the terminal sparkline dashboard over a telemetry series.
"""

from repro.serving.batching import (
    BATCHING_POLICIES,
    Batch,
    BatchDecision,
    BatchingPolicy,
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
    build_policy,
)
from repro.serving.chaos import (
    ChaosTimeline,
    Incident,
    chip_failure,
    power_cap,
    straggler,
)
from repro.serving.fleet import (
    ROUTERS,
    AcceleratorServiceModel,
    Fleet,
    FleetServiceModel,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    Router,
    SymbolicAffinityRouter,
    WorkloadAffinityRouter,
    build_router,
)
from repro.serving.metrics import (
    goodput,
    latency_summary,
    per_backend_summary,
    per_workload_summary,
    percentile,
    queueing_summary,
    resilience_metrics,
    saturation_summary,
    summarize_result,
)
from repro.serving.sessions import SessionConfig, run_sessions
from repro.serving.exporters import (
    render_dashboard,
    to_prometheus,
    write_jsonl,
    write_spans_jsonl,
)
from repro.serving.telemetry import (
    DEFAULT_WINDOW_S,
    SPAN_FIELDS,
    TELEMETRY_FIELDS,
    TelemetryCollector,
    TelemetrySeries,
    derive_series,
    request_spans,
)
from repro.serving.dsl import (
    Phase,
    ScenarioSpec,
    burst,
    drain,
    mix_shift,
    ramp,
    steady,
)
from repro.serving.profile import profile_scenario
from repro.serving.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.serving.sharding import (
    plan_components,
    run_sharded,
    run_stream_sharded,
)
from repro.serving.simulator import (
    RequestRecord,
    ServingResult,
    ServingSimulator,
    StreamedServingResult,
    columnar_chunks,
)
from repro.serving.suite import (
    SuiteCase,
    SuiteResult,
    run_suite,
)
from repro.serving.trace import (
    RequestTrace,
    TraceInfo,
    record_process,
    record_scenario,
    replay_trace,
    write_trace,
)
from repro.serving.traffic import (
    ArrivalProcess,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    TraceArrivals,
    WorkloadMix,
    concatenate_segments,
)

__all__ = [
    "Request",
    "WorkloadMix",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "TraceArrivals",
    "concatenate_segments",
    "Batch",
    "BatchDecision",
    "BatchingPolicy",
    "NoBatching",
    "FixedSizeBatching",
    "ContinuousBatching",
    "BATCHING_POLICIES",
    "build_policy",
    "AcceleratorServiceModel",
    "FleetServiceModel",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "WorkloadAffinityRouter",
    "SymbolicAffinityRouter",
    "ROUTERS",
    "build_router",
    "Fleet",
    "RequestRecord",
    "ServingResult",
    "StreamedServingResult",
    "ServingSimulator",
    "columnar_chunks",
    "RequestTrace",
    "TraceInfo",
    "write_trace",
    "record_process",
    "record_scenario",
    "replay_trace",
    "Phase",
    "ScenarioSpec",
    "steady",
    "ramp",
    "burst",
    "drain",
    "mix_shift",
    "percentile",
    "latency_summary",
    "queueing_summary",
    "goodput",
    "summarize_result",
    "resilience_metrics",
    "per_workload_summary",
    "per_backend_summary",
    "saturation_summary",
    "Incident",
    "ChaosTimeline",
    "chip_failure",
    "straggler",
    "power_cap",
    "SessionConfig",
    "run_sessions",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "plan_components",
    "run_sharded",
    "run_stream_sharded",
    "SuiteCase",
    "SuiteResult",
    "run_suite",
    "profile_scenario",
    "DEFAULT_WINDOW_S",
    "TELEMETRY_FIELDS",
    "SPAN_FIELDS",
    "TelemetrySeries",
    "TelemetryCollector",
    "derive_series",
    "request_spans",
    "write_jsonl",
    "write_spans_jsonl",
    "to_prometheus",
    "render_dashboard",
]
