"""Per-phase wall-clock profiling of a serving scenario run.

``repro serve SCENARIO --profile`` answers "where does the event core's
time actually go?" with measured numbers instead of guesses: traffic
generation (arrival decode), batching-policy ``plan`` calls, router
``route`` calls, service/energy model lookups, the residual event core,
and metrics finalize are timed separately over one full scenario run.

Instrumentation is interface-level: the policy, router and service model
are wrapped in timing proxies, which routes the run through the same
generic ``plan``/``route`` interfaces any third-party implementation
uses — the built-in inlined fast paths (trusted plan shortcuts, inline
routing, the chunked clock advance) only engage for the exact builtin
classes and are bypassed by the wrappers.  The report therefore shows the
*interface* cost of each phase; the ``uninstrumented_run_s`` figure — the
same run with the wrappers off and every fast path on — shows what
production pays, and the gap between the two is the fast paths' margin.

The uninstrumented run also contributes its dispatch-path attribution
(``event_paths``): how many requests rode the water-filling jsq spans and
the bulk idle-disjoint runs versus the one-at-a-time scalar loop, plus
the ``coupled_engine`` marker on jsq fleets — so a profile of a coupled
scenario shows whether production traffic actually takes the vectorized
path.
"""

from __future__ import annotations

import time

from repro.backends.cache import ExecutionCache
from repro.errors import ServingError
from repro.serving.batching import BatchingPolicy, build_policy
from repro.serving.fleet import Fleet, Router
from repro.serving.simulator import ServingSimulator

__all__ = ["profile_scenario"]


class _PhaseTimings:
    """Accumulated ``(seconds, calls)`` per instrumented phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1


class _TimedPolicy(BatchingPolicy):
    """Times every ``plan``/``select`` consultation of the inner policy."""

    def __init__(self, inner: BatchingPolicy, timings: _PhaseTimings) -> None:
        self.inner = inner
        self.timings = timings
        self.name = inner.name
        self.single_group_cap = inner.single_group_cap
        self.eager_singleton = inner.eager_singleton

    def plan(self, groups, now_s):
        started = time.perf_counter()
        decision = self.inner.plan(groups, now_s)
        self.timings.add("policy plan", time.perf_counter() - started)
        if decision is None:
            # Inner policy has no plan: fall back to the select interface
            # (the simulator will call ``select`` instead from now on).
            self.timings.calls["policy plan"] -= 1
            return None
        return decision

    def select(self, queue, now_s):
        started = time.perf_counter()
        decision = self.inner.select(queue, now_s)
        self.timings.add("policy plan", time.perf_counter() - started)
        return decision


class _TimedRouter(Router):
    """Times every routing decision of the inner router."""

    def __init__(self, inner: Router, timings: _PhaseTimings) -> None:
        self.inner = inner
        self.timings = timings
        self.name = inner.name

    def route(self, request, chips):
        started = time.perf_counter()
        chosen = self.inner.route(request, chips)
        self.timings.add("route", time.perf_counter() - started)
        return chosen


class _TimedModel:
    """Times every service/energy lookup of the inner execution cache."""

    def __init__(self, inner, timings: _PhaseTimings) -> None:
        self.inner = inner
        self.timings = timings

    @property
    def backend_name(self):
        return self.inner.backend_name

    @property
    def scheduler(self):
        return self.inner.scheduler

    @property
    def cached_reports(self):
        return self.inner.cached_reports

    def report(self, workload, batch_size):
        started = time.perf_counter()
        report = self.inner.report(workload, batch_size)
        self.timings.add("service lookup", time.perf_counter() - started)
        return report

    def service_seconds(self, workload, batch_size):
        started = time.perf_counter()
        value = self.inner.service_seconds(workload, batch_size)
        self.timings.add("service lookup", time.perf_counter() - started)
        return value

    def energy_joules(self, workload, batch_size):
        started = time.perf_counter()
        value = self.inner.energy_joules(workload, batch_size)
        self.timings.add("service lookup", time.perf_counter() - started)
        return value


class _ProfilingSimulator(ServingSimulator):
    """Simulator whose router is wrapped in the timing proxy.

    Sharded profiling runs skip the router wrapper: the proxy would hide
    the router's concrete class from
    :func:`~repro.serving.sharding.plan_components` and force a
    single-shard fallback.  Per-component routing then happens inside the
    shard engines and is accounted to ``event core (other)``.
    """

    def __init__(
        self, *args, timings: _PhaseTimings, wrap_router: bool = True, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self._timings = timings
        self._wrap_router = wrap_router

    def _make_router(self, workloads, chip_models):
        router = super()._make_router(workloads, chip_models)
        if not self._wrap_router:
            return router
        return _TimedRouter(router, self._timings)


def profile_scenario(
    name: str,
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    num_chips: int | None = None,
    router: str | None = None,
    policy: str | None = None,
    backend: str | None = None,
    shards: int = 1,
    shard_workers: int | None = None,
) -> dict:
    """Profile one scenario run; returns the per-phase breakdown payload.

    The fleet must be homogeneous (one backend) — per-chip model wrapping
    on a mixed fleet would blur whose lookups cost what.

    ``shards > 1`` profiles the component-sharded engine instead: phase
    timings aggregate across every shard.  The timing proxies are not
    picklable, so instrumented shards always run sequentially in-process
    (the proxied model pins its component to the parent process) — which
    is exactly what makes the aggregation exact.  Routing happens inside
    the per-component engines there, so the ``route`` phase reports zero
    and its cost lands in ``event core (other)``.  The uninstrumented
    comparison run uses the same ``shards`` / ``shard_workers`` settings
    with every fast path on.
    """
    from repro.serving.metrics import per_workload_summary, summarize_result
    from repro.serving.scenarios import get_scenario

    if load_scale <= 0 or duration_scale <= 0:
        raise ServingError("load_scale and duration_scale must be positive")
    scenario = get_scenario(name)
    chips = num_chips if num_chips is not None else scenario.num_chips
    fleet = Fleet(
        num_chips=chips,
        router=router if router is not None else scenario.router,
        backends=(backend,) if backend else (),
    )
    if fleet.is_heterogeneous:
        raise ServingError(
            "--profile needs a homogeneous fleet (one backend); profile the "
            "backends one at a time"
        )
    policy_name = policy if policy is not None else scenario.policy
    timings = _PhaseTimings()

    started = time.perf_counter()
    requests = scenario.traffic(seed, load_scale, duration_scale)
    traffic_s = time.perf_counter() - started
    if not requests:
        raise ServingError(
            f"scenario '{name}' generated no requests "
            f"(seed={seed}, load_scale={load_scale}, "
            f"duration_scale={duration_scale})"
        )

    cache = ExecutionCache(backend=fleet.chip_backends[0])
    timed_sim = _ProfilingSimulator(
        service_model=_TimedModel(cache, timings),
        fleet=fleet,
        batching_policy=_TimedPolicy(build_policy(policy_name), timings),
        timings=timings,
        wrap_router=shards == 1,
    )
    # Warm the execution cache first so "service lookup" times the per-run
    # memoized-lookup cost the steady state pays, not one-time workload
    # graph construction (reported separately).
    started = time.perf_counter()
    timed_sim.run(requests, shards=shards, shard_workers=shard_workers)
    warmup_s = time.perf_counter() - started
    timings.seconds.clear()
    timings.calls.clear()

    started = time.perf_counter()
    result = timed_sim.run(requests, shards=shards, shard_workers=shard_workers)
    instrumented_s = time.perf_counter() - started

    started = time.perf_counter()
    summarize_result(result, scenario.slo_s)
    per_workload_summary(result, scenario.slo_s)
    timings.add("metrics finalize", time.perf_counter() - started)

    # The same run, wrappers off: every builtin fast path engages.
    plain_sim = ServingSimulator(
        service_model=cache, fleet=fleet, batching_policy=build_policy(policy_name)
    )
    plain_sim.run(requests, shards=shards, shard_workers=shard_workers)
    started = time.perf_counter()
    plain_result = plain_sim.run(
        requests, shards=shards, shard_workers=shard_workers
    )
    uninstrumented_s = time.perf_counter() - started

    phase_order = (
        "traffic generation",
        "policy plan",
        "route",
        "service lookup",
        "event core (other)",
        "metrics finalize",
    )
    inner_phases = ("policy plan", "route", "service lookup")
    timings.seconds["event core (other)"] = max(
        instrumented_s - sum(timings.seconds.get(p, 0.0) for p in inner_phases),
        0.0,
    )
    timings.calls["event core (other)"] = 1
    # Traffic generation was timed before the warm-up run, whose ledger
    # reset would otherwise have wiped it.
    timings.seconds["traffic generation"] = traffic_s
    timings.calls["traffic generation"] = 1
    total = sum(timings.seconds.get(p, 0.0) for p in phase_order)
    phases = [
        {
            "phase": phase,
            "seconds": round(timings.seconds.get(phase, 0.0), 6),
            "calls": timings.calls.get(phase, 0),
            "share_pct": round(
                100.0 * timings.seconds.get(phase, 0.0) / total, 1
            )
            if total > 0
            else 0.0,
        }
        for phase in phase_order
    ]
    payload = {
        "scenario": name,
        "seed": seed,
        "load_scale": load_scale,
        "duration_scale": duration_scale,
        "num_requests": len(requests),
        "num_chips": chips,
        "router": fleet.router,
        "policy": policy_name,
        "phases": phases,
        "instrumented_run_s": round(instrumented_s, 6),
        "uninstrumented_run_s": round(uninstrumented_s, 6),
        "fast_path_speedup_x": round(instrumented_s / uninstrumented_s, 2)
        if uninstrumented_s > 0
        else 0.0,
        "warmup_run_s": round(warmup_s, 6),
    }
    # Dispatch-path attribution comes from the *uninstrumented* run: the
    # timing proxies hide the builtin policy/router classes, so the
    # instrumented run is all-scalar by construction and would report
    # nothing about what production takes.
    event_paths = plain_result.provenance.get("event_paths")
    if event_paths is not None:
        payload["event_paths"] = dict(event_paths)
    if "coupled_engine" in plain_result.provenance:
        payload["coupled_engine"] = plain_result.provenance["coupled_engine"]
    if shards > 1:
        payload["shards"] = shards
        payload["shards_effective"] = result.provenance.get(
            "shards_effective", 1
        )
        if "shard_fallback" in result.provenance:
            payload["shard_fallback"] = result.provenance["shard_fallback"]
    return payload
