"""Pluggable batching policies for the serving simulator.

A batching policy decides, whenever a chip is free to accept work, which
queued requests to launch as one batch.  Batches are always same-workload:
a batch of ``b`` requests for workload ``w`` executes as the ``num_tasks=b``
variant of ``w``'s kernel graph, which is exactly what the adaptive
scheduler amortizes (shared weights, interleaved neural/symbolic kernels,
one dispatch per kernel instead of ``b``).

The policy interface is a single method::

    select(queue, now_s) -> BatchDecision(batch, wake_s)

``batch`` is the list of requests to dispatch now (``None`` to wait), and
``wake_s`` is an optional future time at which the simulator should consult
the policy again even if no new request arrives (used by timeout-based
policies to cap the wait of a partially filled batch).

Policies may additionally implement the O(workloads) fast-path hook::

    plan(groups, now_s) -> (workload, count, wake_s)

consumed by the simulator's slot-keyed event core (see
:meth:`BatchingPolicy.plan` for the contract).  All built-in policies do,
which is what removes per-dispatch queue materialization from the hot
path; third-party policies that only implement ``select`` keep working
through the simulator's generic queue.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.traffic import Request

__all__ = [
    "Batch",
    "BatchDecision",
    "BatchingPolicy",
    "NoBatching",
    "FixedSizeBatching",
    "ContinuousBatching",
    "BATCHING_POLICIES",
    "build_policy",
]


@dataclass(frozen=True)
class Batch:
    """A same-workload group of requests dispatched together."""

    workload: str
    requests: tuple[Request, ...]
    formed_s: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ServingError("a batch must contain at least one request")
        if any(request.workload != self.workload for request in self.requests):
            raise ServingError("all requests of a batch must share one workload")

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.requests)


@dataclass(frozen=True)
class BatchDecision:
    """Outcome of consulting a batching policy."""

    batch: list[Request] | None
    wake_s: float | None = None


def _groups(queue: Sequence[Request]) -> dict[str, list[Request]]:
    """Queued requests grouped by workload, preserving queue (FIFO) order."""
    groups: dict[str, list[Request]] = {}
    for request in queue:
        groups.setdefault(request.workload, []).append(request)
    return groups


class BatchingPolicy:
    """Base class for batching policies."""

    name = "base"

    #: when the queue holds exactly one workload group, the batch is its
    #: first ``min(len(group), single_group_cap)`` entries with no wake-up;
    #: ``None`` means the single-group case still needs :meth:`plan`
    #: (e.g. timeout policies that may wait instead of dispatching).
    #: The simulator honours this shortcut only for the built-in policies —
    #: a subclass overriding :meth:`plan` always gets its plan called.
    single_group_cap: int | None = None

    #: a lone request arriving at an idle, empty chip dispatches immediately
    #: as a batch of one (must agree with what ``select``/``plan`` would
    #: decide for that one-request queue).  Like ``single_group_cap``, only
    #: honoured for the built-in policies.
    eager_singleton = False

    def select(self, queue: Sequence[Request], now_s: float) -> BatchDecision:
        """Pick the batch to dispatch at ``now_s`` (or when to re-check)."""
        raise NotImplementedError

    def plan(self, groups, now_s: float):
        """Fast-path hook over slot-keyed queues; ``None`` when unsupported.

        ``groups`` maps workload name to that workload's queued
        ``(arrival_s, request_id)`` entries as a sequence-like object
        supporting ``len``/indexing/iteration (a deque in the scalar core,
        a cursor view over columnar arrays in the sharded engine), in
        first-occurrence (queue) order; each is non-empty and sorted.
        Implementations must
        return ``(workload, count, wake_s)`` where the batch is exactly the
        first ``count`` entries of ``groups[workload]`` — the same requests
        ``select`` would choose — or ``(None, 0, wake_s)`` to wait.  The
        base class returns ``None``, telling the simulator to fall back to
        :meth:`select` over a materialized queue.  A subclass that
        overrides ``select`` below the class providing ``plan`` is also
        routed through ``select`` (the inherited plan may no longer agree
        with it).
        """
        return None


class NoBatching(BatchingPolicy):
    """Dispatch the oldest queued request alone — the no-amortization baseline."""

    name = "none"
    single_group_cap = 1
    eager_singleton = True

    def select(self, queue, now_s):
        """Ship the oldest queued request as a batch of one."""
        if not queue:
            return BatchDecision(batch=None)
        return BatchDecision(batch=[queue[0]])

    def plan(self, groups, now_s):
        """Fast path: the workload whose head is the global queue head."""
        best_workload = None
        best_head = None
        for workload, entries in groups.items():
            head = entries[0]
            if best_head is None or head < best_head:
                best_head = head
                best_workload = workload
        return best_workload, 1, None


class FixedSizeBatching(BatchingPolicy):
    """Wait for ``batch_size`` same-workload requests, capped by a timeout.

    A full group dispatches immediately.  Otherwise the policy waits, but
    never longer than ``max_wait_s`` past the oldest queued request's
    arrival — when the timeout expires the partial group ships as-is, so a
    trickle of traffic cannot strand requests forever.
    """

    name = "fixed"

    def __init__(self, batch_size: int = 8, max_wait_s: float = 2e-3) -> None:
        if batch_size < 1:
            raise ServingError(f"batch_size must be positive, got {batch_size}")
        if max_wait_s < 0:
            raise ServingError(f"max_wait_s must be non-negative, got {max_wait_s}")
        self.batch_size = batch_size
        self.max_wait_s = max_wait_s
        # A one-request batch is already "full", so there is never a reason
        # to wait; larger targets may hold a lone request for the timeout.
        self.eager_singleton = batch_size == 1
        self.single_group_cap = 1 if batch_size == 1 else None

    def select(self, queue, now_s):
        """Dispatch the oldest full group, or a timed-out partial one."""
        if not queue:
            return BatchDecision(batch=None)
        groups = _groups(queue)
        full = [
            group for group in groups.values() if len(group) >= self.batch_size
        ]
        if full:
            # Oldest head first, so full groups drain in arrival order.
            chosen = min(full, key=lambda group: group[0].arrival_s)
            return BatchDecision(batch=chosen[: self.batch_size])
        oldest = min(groups.values(), key=lambda group: group[0].arrival_s)
        deadline = oldest[0].arrival_s + self.max_wait_s
        if now_s >= deadline:
            return BatchDecision(batch=oldest[: self.batch_size])
        return BatchDecision(batch=None, wake_s=deadline)

    def plan(self, groups, now_s):
        """Fast path: oldest full group, else the timed-out oldest partial."""
        size = self.batch_size
        full_workload = None
        full_head = None
        oldest_workload = None
        oldest_head = None
        for workload, entries in groups.items():
            head = entries[0]
            if oldest_head is None or head < oldest_head:
                oldest_head = head
                oldest_workload = workload
            if len(entries) >= size and (full_head is None or head < full_head):
                full_head = head
                full_workload = workload
        if full_workload is not None:
            return full_workload, size, None
        deadline = oldest_head[0] + self.max_wait_s
        if now_s >= deadline:
            return oldest_workload, len(groups[oldest_workload]), None
        return None, 0, deadline


class ContinuousBatching(BatchingPolicy):
    """Deadline-aware continuous batching.

    Whenever a chip frees up, everything queued for one workload (up to
    ``max_batch_size``) ships immediately — the continuous-batching idea of
    never idling a chip while work is queued.  Among workload groups, the
    one whose head-of-line request is closest to violating its SLO deadline
    goes first (earliest-deadline-first), so latency-critical stragglers are
    not starved by a deep queue of newer requests.  ``slo_s`` is either one
    deadline for every workload (EDF then degenerates to oldest-head-first)
    or a per-workload mapping, which lets a tight-SLO workload pre-empt an
    older but slacker group.
    """

    name = "continuous"

    #: deadline assumed for workloads absent from a per-workload SLO mapping
    DEFAULT_SLO_S = 5e-3

    def __init__(
        self, max_batch_size: int = 8, slo_s: float | Mapping[str, float] = 5e-3
    ) -> None:
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if isinstance(slo_s, Mapping):
            self.slo_by_workload = dict(slo_s)
            self.default_slo_s = self.DEFAULT_SLO_S
            slo_values = tuple(self.slo_by_workload.values())
        else:
            self.slo_by_workload = {}
            self.default_slo_s = float(slo_s)
            slo_values = (slo_s,)
        if any(value <= 0 for value in slo_values):
            raise ServingError(f"slo_s must be positive, got {slo_s}")
        self.max_batch_size = max_batch_size
        # Continuous batching never waits: a single group always ships its
        # head requests immediately, capped at the batch-size limit.
        self.single_group_cap = max_batch_size
        self.eager_singleton = True

    def _deadline(self, request: Request) -> float:
        """Latest dispatch time that can still meet the request's SLO."""
        slo = self.slo_by_workload.get(request.workload, self.default_slo_s)
        return request.arrival_s + slo

    def select(self, queue, now_s):
        """Dispatch the most deadline-urgent workload group, SLO permitting."""
        if not queue:
            return BatchDecision(batch=None)
        groups = _groups(queue)
        # Earliest head deadline first; workload name breaks exact ties so
        # the choice is independent of queue insertion history.
        urgent = min(
            groups.items(),
            key=lambda item: (self._deadline(item[1][0]), item[0]),
        )[1]
        return BatchDecision(batch=urgent[: self.max_batch_size])

    def plan(self, groups, now_s):
        """Fast path: most deadline-urgent workload group, name-tie-broken."""
        slo_by_workload = self.slo_by_workload
        default_slo = self.default_slo_s
        best_workload = None
        best_key = None
        for workload, entries in groups.items():
            slo = slo_by_workload.get(workload, default_slo) if slo_by_workload \
                else default_slo
            key = (entries[0][0] + slo, workload)
            if best_key is None or key < best_key:
                best_key = key
                best_workload = workload
        depth = len(groups[best_workload])
        cap = self.max_batch_size
        return best_workload, (cap if depth > cap else depth), None


#: policy name -> factory, the registry the CLI and experiment drivers use
BATCHING_POLICIES: dict[str, type[BatchingPolicy]] = {
    NoBatching.name: NoBatching,
    FixedSizeBatching.name: FixedSizeBatching,
    ContinuousBatching.name: ContinuousBatching,
}


def build_policy(name: str, **kwargs) -> BatchingPolicy:
    """Instantiate a batching policy by registry name."""
    try:
        factory = BATCHING_POLICIES[name]
    except KeyError:
        raise ServingError(
            f"unknown batching policy '{name}'; known: {sorted(BATCHING_POLICIES)}"
        ) from None
    return factory(**kwargs)
