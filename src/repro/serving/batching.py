"""Pluggable batching policies for the serving simulator.

A batching policy decides, whenever a chip is free to accept work, which
queued requests to launch as one batch.  Batches are always same-workload:
a batch of ``b`` requests for workload ``w`` executes as the ``num_tasks=b``
variant of ``w``'s kernel graph, which is exactly what the adaptive
scheduler amortizes (shared weights, interleaved neural/symbolic kernels,
one dispatch per kernel instead of ``b``).

The policy interface is a single method::

    select(queue, now_s) -> BatchDecision(batch, wake_s)

``batch`` is the list of requests to dispatch now (``None`` to wait), and
``wake_s`` is an optional future time at which the simulator should consult
the policy again even if no new request arrives (used by timeout-based
policies to cap the wait of a partially filled batch).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.traffic import Request

__all__ = [
    "Batch",
    "BatchDecision",
    "BatchingPolicy",
    "NoBatching",
    "FixedSizeBatching",
    "ContinuousBatching",
    "BATCHING_POLICIES",
    "build_policy",
]


@dataclass(frozen=True)
class Batch:
    """A same-workload group of requests dispatched together."""

    workload: str
    requests: tuple[Request, ...]
    formed_s: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ServingError("a batch must contain at least one request")
        if any(request.workload != self.workload for request in self.requests):
            raise ServingError("all requests of a batch must share one workload")

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.requests)


@dataclass(frozen=True)
class BatchDecision:
    """Outcome of consulting a batching policy."""

    batch: list[Request] | None
    wake_s: float | None = None


def _groups(queue: Sequence[Request]) -> dict[str, list[Request]]:
    """Queued requests grouped by workload, preserving queue (FIFO) order."""
    groups: dict[str, list[Request]] = {}
    for request in queue:
        groups.setdefault(request.workload, []).append(request)
    return groups


class BatchingPolicy:
    """Base class for batching policies."""

    name = "base"

    def select(self, queue: Sequence[Request], now_s: float) -> BatchDecision:
        """Pick the batch to dispatch at ``now_s`` (or when to re-check)."""
        raise NotImplementedError


class NoBatching(BatchingPolicy):
    """Dispatch the oldest queued request alone — the no-amortization baseline."""

    name = "none"

    def select(self, queue, now_s):
        """Ship the oldest queued request as a batch of one."""
        if not queue:
            return BatchDecision(batch=None)
        return BatchDecision(batch=[queue[0]])


class FixedSizeBatching(BatchingPolicy):
    """Wait for ``batch_size`` same-workload requests, capped by a timeout.

    A full group dispatches immediately.  Otherwise the policy waits, but
    never longer than ``max_wait_s`` past the oldest queued request's
    arrival — when the timeout expires the partial group ships as-is, so a
    trickle of traffic cannot strand requests forever.
    """

    name = "fixed"

    def __init__(self, batch_size: int = 8, max_wait_s: float = 2e-3) -> None:
        if batch_size < 1:
            raise ServingError(f"batch_size must be positive, got {batch_size}")
        if max_wait_s < 0:
            raise ServingError(f"max_wait_s must be non-negative, got {max_wait_s}")
        self.batch_size = batch_size
        self.max_wait_s = max_wait_s

    def select(self, queue, now_s):
        """Dispatch the oldest full group, or a timed-out partial one."""
        if not queue:
            return BatchDecision(batch=None)
        groups = _groups(queue)
        full = [
            group for group in groups.values() if len(group) >= self.batch_size
        ]
        if full:
            # Oldest head first, so full groups drain in arrival order.
            chosen = min(full, key=lambda group: group[0].arrival_s)
            return BatchDecision(batch=chosen[: self.batch_size])
        oldest = min(groups.values(), key=lambda group: group[0].arrival_s)
        deadline = oldest[0].arrival_s + self.max_wait_s
        if now_s >= deadline:
            return BatchDecision(batch=oldest[: self.batch_size])
        return BatchDecision(batch=None, wake_s=deadline)


class ContinuousBatching(BatchingPolicy):
    """Deadline-aware continuous batching.

    Whenever a chip frees up, everything queued for one workload (up to
    ``max_batch_size``) ships immediately — the continuous-batching idea of
    never idling a chip while work is queued.  Among workload groups, the
    one whose head-of-line request is closest to violating its SLO deadline
    goes first (earliest-deadline-first), so latency-critical stragglers are
    not starved by a deep queue of newer requests.  ``slo_s`` is either one
    deadline for every workload (EDF then degenerates to oldest-head-first)
    or a per-workload mapping, which lets a tight-SLO workload pre-empt an
    older but slacker group.
    """

    name = "continuous"

    #: deadline assumed for workloads absent from a per-workload SLO mapping
    DEFAULT_SLO_S = 5e-3

    def __init__(
        self, max_batch_size: int = 8, slo_s: float | Mapping[str, float] = 5e-3
    ) -> None:
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if isinstance(slo_s, Mapping):
            self.slo_by_workload = dict(slo_s)
            self.default_slo_s = self.DEFAULT_SLO_S
            slo_values = tuple(self.slo_by_workload.values())
        else:
            self.slo_by_workload = {}
            self.default_slo_s = float(slo_s)
            slo_values = (slo_s,)
        if any(value <= 0 for value in slo_values):
            raise ServingError(f"slo_s must be positive, got {slo_s}")
        self.max_batch_size = max_batch_size

    def _deadline(self, request: Request) -> float:
        """Latest dispatch time that can still meet the request's SLO."""
        slo = self.slo_by_workload.get(request.workload, self.default_slo_s)
        return request.arrival_s + slo

    def select(self, queue, now_s):
        """Dispatch the most deadline-urgent workload group, SLO permitting."""
        if not queue:
            return BatchDecision(batch=None)
        groups = _groups(queue)
        # Earliest head deadline first; workload name breaks exact ties so
        # the choice is independent of queue insertion history.
        urgent = min(
            groups.items(),
            key=lambda item: (self._deadline(item[1][0]), item[0]),
        )[1]
        return BatchDecision(batch=urgent[: self.max_batch_size])


#: policy name -> factory, the registry the CLI and experiment drivers use
BATCHING_POLICIES: dict[str, type[BatchingPolicy]] = {
    NoBatching.name: NoBatching,
    FixedSizeBatching.name: FixedSizeBatching,
    ContinuousBatching.name: ContinuousBatching,
}


def build_policy(name: str, **kwargs) -> BatchingPolicy:
    """Instantiate a batching policy by registry name."""
    try:
        factory = BATCHING_POLICIES[name]
    except KeyError:
        raise ServingError(
            f"unknown batching policy '{name}'; known: {sorted(BATCHING_POLICIES)}"
        ) from None
    return factory(**kwargs)
