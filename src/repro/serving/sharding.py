"""Sharded serving simulation: router-independent sub-fleets in isolation.

A fleet whose router never moves load between two chip groups — round-robin
(each chip's request subsequence is a pure function of the global arrival
index) or any ownership-table affinity router (a workload's pool is served
only by its owner chips) — factors into *components* that simulate
independently: no event on one component's chips can influence another's
routing, batching or timing.  :func:`run_sharded` / :func:`run_stream_sharded`
exploit that factorization three ways:

* **component planning** (:func:`plan_components`) — union-find over the
  router's ownership pools (or one component per chip for round-robin)
  decides what can split; join-shortest-queue couples every chip and falls
  back to the single-shard core, recording why in ``provenance``.
* **a columnar single-chip engine** — a component that is one chip under a
  trusted builtin batching policy skips the generic event core entirely:
  arrivals stay as numpy columns, queues are cursor pairs over per-workload
  slices, the policy's ``plan`` runs once per *batch* instead of touching
  per-request state, and per-request dispatch/finish columns materialize at
  the end with ``np.repeat`` over the batch log.  This is where saturated
  regimes (standing queues, large batches) gain their multiple over the
  scalar loop.
* **deterministic merge** — components return columnar bundles;
  ``run`` merges by ``request_id`` (records exactly equal to the
  single-shard run), ``run_stream`` merges into the canonical
  ``(dispatch_s, chip, batch)`` order.  Energy is summed per component and
  then across components, which can differ from the single-shard global
  interleave by an ulp — every other float is bit-identical.

Components optionally fan out to worker processes
(``concurrent.futures.ProcessPoolExecutor``) when the service models are
plain registry-backed ``ExecutionCache`` instances; anything unshippable
(custom oracles, custom policies that fail to pickle) degrades to
sequential in-process execution, never to wrong answers.
"""

from __future__ import annotations

import heapq
import itertools
import os
from bisect import bisect_left, bisect_right
from typing import NamedTuple

import numpy as np

from repro.backends.cache import ExecutionCache
from repro.backends.registry import backend_names
from repro.errors import ServingError
from repro.serving.fleet import (
    FixedOwnersRouter,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    SymbolicAffinityRouter,
    WorkloadAffinityRouter,
)
from repro.serving.simulator import (
    RequestRecord,
    ServingResult,
    ServingSimulator,
    StreamedServingResult,
    _plan_method,
)
from repro.serving.traffic import Request

__all__ = ["plan_components", "run_sharded", "run_stream_sharded"]


class _ShardPlan(NamedTuple):
    """How the fleet factors into router-independent components."""

    #: ``"rr"`` (one component per chip, assignment by global arrival index)
    #: or ``"owners"`` (components from the router's ownership pools)
    mode: str
    #: ascending global chip ids of every component, ordered by lowest chip
    components: tuple[tuple[int, ...], ...]
    #: workload name -> component index (``owners`` mode only)
    comp_of_workload: dict[str, int] | None


def plan_components(router, num_chips: int):
    """Factor the fleet under ``router``, or say why it cannot split.

    Returns a :class:`_ShardPlan` when the fleet factors into at least two
    independent components, else a human-readable fallback reason string
    (recorded in the result's provenance as ``shard_fallback``).
    """
    if num_chips < 2:
        return "a single-chip fleet has nothing to shard"
    router_type = type(router)
    if router_type is RoundRobinRouter:
        return _ShardPlan(
            "rr", tuple((chip,) for chip in range(num_chips)), None
        )
    if router_type is JoinShortestQueueRouter:
        return "join-shortest-queue routing couples every chip"
    if router_type in (
        WorkloadAffinityRouter, SymbolicAffinityRouter, FixedOwnersRouter
    ):
        # Union-find over ownership pools: chips sharing any workload's
        # pool must simulate together.
        parent = list(range(num_chips))

        def find(chip):
            root = chip
            while parent[root] != root:
                root = parent[root]
            while parent[chip] != root:
                parent[chip], chip = root, parent[chip]
            return root

        owned = set()
        for pool in router.owners.values():
            first = find(pool[0])
            owned.add(pool[0])
            for chip in pool[1:]:
                owned.add(chip)
                parent[find(chip)] = first
        # Only owned chips form components; unowned chips can never receive
        # a request and contribute all-zero accounting rows at merge time.
        members: dict[int, list[int]] = {}
        for chip in sorted(owned):
            members.setdefault(find(chip), []).append(chip)
        components = tuple(
            tuple(chips)
            for chips in sorted(members.values(), key=lambda chips: chips[0])
        )
        if len(components) < 2:
            return "the router's ownership pools couple every chip"
        comp_index = {chips[0]: index for index, chips in enumerate(components)}
        comp_of_workload = {
            workload: comp_index[find(pool[0])]
            for workload, pool in router.owners.items()
        }
        return _ShardPlan("owners", components, comp_of_workload)
    name = getattr(router, "name", router_type.__name__)
    return f"router '{name}' has unknown chip coupling"


class _CompBundle(NamedTuple):
    """One component's finished simulation, in columnar form.

    Per-request columns are in arbitrary order (the merge sorts globally);
    ``batch_seq`` is the per-chip batch index a request's batch held, which
    together with ``(dispatch, chip)`` reconstructs exact emit order.
    """

    ids: np.ndarray
    codes: np.ndarray
    chip: np.ndarray
    arrival: np.ndarray
    dispatch: np.ndarray
    finish: np.ndarray
    size: np.ndarray
    batch_seq: np.ndarray
    #: ``(global_chip_id, busy_s, served)`` for every chip of the component
    chip_rows: tuple
    energy: float
    num_batches: int
    horizon: float
    served: int


class _EngineGroup:
    """One workload's queue inside the columnar engine: two cursors.

    ``head``/``tail`` index into the workload's pre-extracted arrival and
    id columns — ingestion advances ``tail``, dispatch advances ``head`` —
    so enqueue and batch-pop are integer bumps, never per-request appends.
    Exposes the read-only sequence surface ``plan`` implementations use.
    """

    __slots__ = ("arrivals", "ids", "head", "tail")

    def __init__(self, arrivals: list, ids: list) -> None:
        self.arrivals = arrivals
        self.ids = ids
        self.head = 0
        self.tail = 0

    def __len__(self) -> int:
        return self.tail - self.head

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.tail - self.head)
            head = self.head
            return list(
                zip(
                    self.arrivals[head + start : head + stop : step],
                    self.ids[head + start : head + stop : step],
                )
            )
        if index < 0:
            index += self.tail - self.head
        position = self.head + index
        if not self.head <= position < self.tail:
            raise IndexError("group index out of range")
        return (self.arrivals[position], self.ids[position])

    def __iter__(self):
        return iter(
            list(
                zip(
                    self.arrivals[self.head : self.tail],
                    self.ids[self.head : self.tail],
                )
            )
        )


def _engine_run(
    policy, model, global_chip: int, arr, ids, codes, workload_names
):
    """Columnar event engine for a one-chip component, batch-granularity.

    Preconditions (the dispatcher checks them): the component is a single
    chip, ``policy`` resolves to a trusted builtin ``plan``, and every code
    is a valid index into ``workload_names``.  The engine replays the exact
    decision sequence of the scalar core — same plan calls on the same
    queue states, same wake dedup, arrivals before completions before
    wake-ups at an instant — but does per-*request* work only as slice
    cursor arithmetic plus one vectorized finalize, so its cost scales with
    batches, not requests.
    """
    plan, _trusted = _plan_method(policy)
    single_cap = policy.single_group_cap
    wl_code = {name: code for code, name in enumerate(workload_names)}
    num_workloads = len(workload_names)

    arr_list = arr.tolist()
    code_list = codes.tolist()
    n = len(arr_list)
    positions_by_code = []
    position_lists = []
    groups_by_code = []
    for code in range(num_workloads):
        positions = np.flatnonzero(codes == code)
        positions_by_code.append(positions)
        position_lists.append(positions.tolist())
        groups_by_code.append(
            _EngineGroup(arr[positions].tolist(), ids[positions].tolist())
        )
    active: dict[str, _EngineGroup] = {}

    events: list[tuple] = []  # (time, kind, seq): 1=FREE, 2=WAKE
    next_seq = itertools.count().__next__
    heappush = heapq.heappush
    heappop = heapq.heappop

    busy = False
    t_free = 0.0
    pending_wake = None
    depth = 0
    energy = 0.0
    busy_s = 0.0
    served = 0
    horizon = arr_list[0]
    service_memo: dict[tuple[str, int], tuple[float, float]] = {}
    batch_code: list[int] = []
    batch_disp: list[float] = []
    batch_fin: list[float] = []
    batch_count: list[int] = []

    # Small ingests walk the arrivals directly (a request's slot in its
    # workload column is always the current tail — columns are in arrival
    # order); past this span, one bisect per workload wins.
    ingest_walk_max = 8 * num_workloads

    def ingest(start: int, bound: int) -> None:
        """Advance every workload tail over global indices < ``bound``."""
        nonlocal depth
        count = bound - start
        if count <= ingest_walk_max:
            for i in range(start, bound):
                code = code_list[i]
                group = groups_by_code[code]
                tail = group.tail
                group.tail = tail + 1
                if tail == group.head:
                    active[workload_names[code]] = group
            depth += count
            return
        for code in range(num_workloads):
            plist = position_lists[code]
            group = groups_by_code[code]
            tail = group.tail
            if tail == len(plist):
                continue
            new_tail = bisect_left(plist, bound, tail)
            if new_tail > tail:
                group.tail = new_tail
                depth += new_tail - tail
                if tail == group.head:
                    active[workload_names[code]] = group

    def dispatch(now: float) -> None:
        nonlocal busy, t_free, pending_wake, depth, energy, busy_s, served
        if busy or not depth:
            return
        if len(active) == 1 and single_cap is not None:
            workload, group = next(iter(active.items()))
            queued = group.tail - group.head
            count = single_cap if queued > single_cap else queued
            wake_s = None
        else:
            workload, count, wake_s = plan(active, now)
        if workload is None:
            if (
                wake_s is not None
                and wake_s > now
                and (pending_wake is None or wake_s < pending_wake)
            ):
                heappush(events, (wake_s, 2, next_seq()))
                pending_wake = wake_s
            return
        group = active[workload]
        queued = group.tail - group.head
        if count < 1 or count > queued:
            raise ServingError(
                f"batch of {count} requested from a queue of {queued}"
            )
        group.head += count
        if group.head == group.tail:
            del active[workload]
        depth -= count
        key = (workload, count)
        cached = service_memo.get(key)
        if cached is None:
            cached = (
                model.service_seconds(workload, count),
                model.energy_joules(workload, count),
            )
            service_memo[key] = cached
        service_s, energy_j = cached
        finish = now + service_s
        energy += energy_j
        busy_s += service_s
        served += count
        batch_code.append(wl_code[workload])
        batch_disp.append(now)
        batch_fin.append(finish)
        batch_count.append(count)
        busy = True
        t_free = finish
        heappush(events, (finish, 1, next_seq()))

    g = 0
    while True:
        if events:
            if g < n and arr_list[g] <= events[0][0]:
                # Arrivals precede completions and wake-ups at an instant.
                if busy:
                    # Enqueue-only window: no dispatch can happen before
                    # the running batch finishes, so ingest every arrival
                    # up to (and at) that boundary in one slice.  Wake
                    # pops commute with enqueues — neither reads state
                    # the other writes — so reordering them is safe.
                    bound = bisect_right(arr_list, t_free, g)
                else:
                    bound = bisect_right(arr_list, arr_list[g], g)
                now = arr_list[g]
                ingest(g, bound)
                g = bound
                if not busy:
                    dispatch(now)
                continue
            now, kind, _seq = heappop(events)
            if kind == 1:  # FREE
                if now > horizon:
                    horizon = now
                busy = False
                dispatch(now)
            else:  # WAKE
                if pending_wake is not None and pending_wake <= now:
                    pending_wake = None
                dispatch(now)
        elif g < n:
            now = arr_list[g]
            bound = bisect_right(arr_list, now, g)
            ingest(g, bound)
            g = bound
            dispatch(now)
        else:
            break

    # -- vectorized finalize: batch log -> per-request columns -------------
    codes_np = np.asarray(batch_code, dtype=np.int64)
    disp_np = np.asarray(batch_disp, dtype=float)
    fin_np = np.asarray(batch_fin, dtype=float)
    count_np = np.asarray(batch_count, dtype=np.int64)
    out_ids = []
    out_codes = []
    out_arr = []
    out_disp = []
    out_fin = []
    out_size = []
    out_bseq = []
    for code in range(num_workloads):
        mask = codes_np == code
        if not mask.any():
            continue
        counts = count_np[mask]
        total = int(counts.sum())
        # Batches consume a workload's queue strictly front-to-back, so
        # the requests of this workload's batches are exactly the first
        # ``total`` entries of its arrival-order slice.
        positions = positions_by_code[code][:total]
        out_ids.append(ids[positions])
        out_arr.append(arr[positions])
        out_codes.append(np.full(total, code, dtype=np.int64))
        out_disp.append(np.repeat(disp_np[mask], counts))
        out_fin.append(np.repeat(fin_np[mask], counts))
        out_size.append(np.repeat(counts, counts))
        out_bseq.append(np.repeat(np.flatnonzero(mask), counts))
    ids_all = np.concatenate(out_ids) if out_ids else np.empty(0, np.int64)
    return _CompBundle(
        ids=ids_all,
        codes=(
            np.concatenate(out_codes) if out_codes else np.empty(0, np.int64)
        ),
        chip=np.full(len(ids_all), global_chip, dtype=np.int64),
        arrival=np.concatenate(out_arr) if out_arr else np.empty(0, float),
        dispatch=np.concatenate(out_disp) if out_disp else np.empty(0, float),
        finish=np.concatenate(out_fin) if out_fin else np.empty(0, float),
        size=np.concatenate(out_size) if out_size else np.empty(0, np.int64),
        batch_seq=(
            np.concatenate(out_bseq) if out_bseq else np.empty(0, np.int64)
        ),
        chip_rows=((global_chip, busy_s, served),),
        energy=energy,
        num_batches=len(batch_code),
        horizon=horizon,
        served=served,
    )


class _Job(NamedTuple):
    """One component's simulation input."""

    models: tuple
    router: object
    global_chips: tuple[int, ...]
    arr: np.ndarray
    ids: np.ndarray
    codes: np.ndarray


def _fallback_run(
    policy, models, router, global_chips, arr, ids, codes, workload_names,
    vectorize,
):
    """Run a component through the generic event core (any shape/policy).

    Used for multi-chip components and for policies without a trusted
    builtin ``plan``: a throwaway simulator shell drives
    ``ServingSimulator._simulate`` with the component's local router and
    per-chip oracles injected, and an ``emit`` hook that logs straight
    into columnar bundle rows.
    """
    shell = ServingSimulator.__new__(ServingSimulator)
    shell.batching_policy = policy
    shell.vectorize = vectorize
    # Shards never see a chaos timeline: run()/run_stream() fall back to a
    # single-shard simulation before the sharding layer is ever entered.
    shell.chaos = None
    names = [workload_names[code] for code in codes.tolist()]
    chunks = [(arr.tolist(), names, ids.tolist())]
    wl_code = {name: code for code, name in enumerate(workload_names)}

    out_ids: list[int] = []
    out_codes: list[int] = []
    out_chip: list[int] = []
    out_arr: list[float] = []
    out_disp: list[float] = []
    out_fin: list[float] = []
    out_size: list[int] = []
    out_bseq: list[int] = []
    chip_batch_seq = [0] * len(models)

    def emit(chip_id, dispatch_s, finish_s, size, workload, members):
        seq = chip_batch_seq[chip_id]
        chip_batch_seq[chip_id] = seq + 1
        code = wl_code[workload]
        chip = global_chips[chip_id]
        for arrival_s, request_id in zip(*members):
            out_ids.append(request_id)
            out_codes.append(code)
            out_chip.append(chip)
            out_arr.append(arrival_s)
            out_disp.append(dispatch_s)
            out_fin.append(finish_s)
            out_size.append(size)
            out_bseq.append(seq)

    chips, energy, num_batches, horizon, _first, served = shell._simulate(
        chunks, workload_names, emit, router=router, chip_models=list(models)
    )
    return _CompBundle(
        ids=np.asarray(out_ids, dtype=np.int64),
        codes=np.asarray(out_codes, dtype=np.int64),
        chip=np.asarray(out_chip, dtype=np.int64),
        arrival=np.asarray(out_arr, dtype=float),
        dispatch=np.asarray(out_disp, dtype=float),
        finish=np.asarray(out_fin, dtype=float),
        size=np.asarray(out_size, dtype=np.int64),
        batch_seq=np.asarray(out_bseq, dtype=np.int64),
        chip_rows=tuple(
            (global_chips[index], chip.busy_s, chip.served)
            for index, chip in enumerate(chips)
        ),
        energy=energy,
        num_batches=num_batches,
        horizon=horizon,
        served=served,
    )


def _simulate_component(
    policy, models, router, global_chips, arr, ids, codes, workload_names,
    vectorize,
):
    """Route one component to the columnar engine or the generic core."""
    if len(global_chips) == 1 and vectorize:
        plan, trusted = _plan_method(policy)
        if plan is not None and trusted:
            return _engine_run(
                policy, models[0], global_chips[0], arr, ids, codes,
                workload_names,
            )
    return _fallback_run(
        policy, models, router, global_chips, arr, ids, codes,
        workload_names, vectorize,
    )


def _model_spec(model):
    """A picklable rebuild recipe for ``model``, or ``None`` if unshippable.

    Only plain registry-backed :class:`ExecutionCache` instances ship to
    worker processes — a subclass or custom oracle may close over anything,
    so it pins its component to the parent process.
    """
    if type(model) is not ExecutionCache:
        return None
    if model.backend_name not in backend_names():
        return None
    try:
        params = tuple(
            sorted(
                (name, tuple(sorted(entries.items())))
                for name, entries in model.workload_params.items()
            )
        )
        hash(params)
    except TypeError:
        return None
    return (model.backend_name, model.scheduler, params)


#: per-worker-process ExecutionCache memo, keyed by model spec — components
#: sharing a backend inside one worker share one warm cache
_WORKER_MODELS: dict = {}


def _run_component_worker(payload):
    """Worker-process entry: rebuild the models, run the component."""
    (policy, specs, router, global_chips, arr, ids, codes, workload_names,
     vectorize) = payload
    models = []
    for spec in specs:
        model = _WORKER_MODELS.get(spec)
        if model is None:
            backend_name, scheduler, params = spec
            model = ExecutionCache(
                backend=backend_name,
                scheduler=scheduler,
                workload_params={
                    name: dict(entries) for name, entries in params
                },
            )
            _WORKER_MODELS[spec] = model
        models.append(model)
    return _simulate_component(
        policy, models, router, global_chips, arr, ids, codes,
        workload_names, vectorize,
    )


def _run_components(sim, jobs, workload_names, workers):
    """Run every job, fanning out to worker processes when possible.

    Returns ``(bundles, workers_used)``.  Fan-out needs at least two jobs,
    a worker budget above one, every service model shippable, and a process
    pool that actually comes up — anything else runs the jobs sequentially
    in-process, which is always correct (and on a single-core host, just as
    fast).
    """
    policy = sim.batching_policy
    vectorize = sim.vectorize
    budget = workers if workers is not None else (os.cpu_count() or 1)
    use = min(budget, len(jobs))
    if use >= 2:
        payloads = []
        for job in jobs:
            specs = tuple(_model_spec(model) for model in job.models)
            if any(spec is None for spec in specs):
                payloads = None
                break
            payloads.append((
                policy, specs, job.router, job.global_chips, job.arr,
                job.ids, job.codes, workload_names, vectorize,
            ))
        if payloads is not None:
            from concurrent.futures import ProcessPoolExecutor

            try:
                import multiprocessing

                context = (
                    multiprocessing.get_context("fork")
                    if "fork" in multiprocessing.get_all_start_methods()
                    else None
                )
                with ProcessPoolExecutor(
                    max_workers=use, mp_context=context
                ) as pool:
                    return list(pool.map(_run_component_worker, payloads)), use
            except ServingError:
                raise
            except Exception:
                # Pool failure (pickling, spawn limits, broken pool): fall
                # through to the sequential path rather than fail the run.
                pass
    return [
        _simulate_component(
            policy, job.models, job.router, job.global_chips, job.arr,
            job.ids, job.codes, workload_names, vectorize,
        )
        for job in jobs
    ], 1


def _component_jobs(plan, chip_models, router, per_component, workload_names):
    """Build :class:`_Job` inputs from partitioned per-component columns."""
    jobs = []
    for index, global_chips in enumerate(plan.components):
        arr_parts, id_parts, code_parts = per_component[index]
        if not arr_parts:
            continue
        if plan.mode == "rr":
            local_router = RoundRobinRouter()
        else:
            local_index = {chip: k for k, chip in enumerate(global_chips)}
            local_owners = {
                workload: tuple(local_index[chip] for chip in pool)
                for workload, pool in router.owners.items()
                if plan.comp_of_workload[workload] == index
            }
            local_router = FixedOwnersRouter(local_owners)
        jobs.append(
            _Job(
                models=tuple(chip_models[chip] for chip in global_chips),
                router=local_router,
                global_chips=global_chips,
                arr=np.concatenate(arr_parts),
                ids=np.concatenate(id_parts),
                codes=np.concatenate(code_parts),
            )
        )
    return jobs


def _shard_keys(shards, plan, workers_used):
    return {
        "shards": shards,
        "shards_effective": len(plan.components),
        "shard_components": [list(chips) for chips in plan.components],
        "shard_workers": workers_used,
    }


def _validate_shard_args(shards, workers):
    if shards < 1:
        raise ServingError(f"shards must be >= 1, got {shards}")
    if workers is not None and workers < 1:
        raise ServingError(f"shard workers must be >= 1, got {workers}")


def run_sharded(
    sim, requests, shards: int = 2, workers: int | None = None
) -> ServingResult:
    """``ServingSimulator.run`` semantics with component-sharded execution.

    Records, per-chip accounting and batch counts are exactly equal to the
    single-shard run; ``energy_joules`` may differ by float re-association
    across components (≤ 1 ulp).  When the fleet cannot shard, the
    single-shard core runs and ``provenance["shard_fallback"]`` says why.
    """
    _validate_shard_args(shards, workers)
    stream = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    all_ids = [request.request_id for request in stream]
    if len(set(all_ids)) != len(all_ids):
        raise ServingError("request stream contains duplicate request ids")
    workload_names = tuple(sorted({req.workload for req in stream}))
    chip_models = sim._chip_models()
    router = sim._make_router(workload_names, chip_models)
    plan = (
        plan_components(router, sim.fleet.num_chips)
        if shards > 1
        else "shards=1 requested"
    )
    if isinstance(plan, str):
        result = sim.run(stream)
        result.provenance.update(
            {"shards": shards, "shards_effective": 1, "shard_fallback": plan}
        )
        return result

    wl_code = {name: code for code, name in enumerate(workload_names)}
    num_components = len(plan.components)
    per_component = [([], [], []) for _ in range(num_components)]
    arr = np.array([request.arrival_s for request in stream], dtype=float)
    ids = np.array(all_ids, dtype=np.int64)
    codes = np.fromiter(
        (wl_code[request.workload] for request in stream),
        dtype=np.int64,
        count=len(stream),
    )
    if plan.mode == "rr":
        comp = np.arange(len(stream), dtype=np.int64) % num_components
    else:
        comp_of_code = np.array(
            [
                plan.comp_of_workload.get(name, -1)
                for name in workload_names
            ],
            dtype=np.int64,
        )
        comp = comp_of_code[codes]
        missing = np.flatnonzero(comp < 0)
        if missing.size:
            # The router raises its own (exact) unroutable-workload error.
            router.route(stream[int(missing[0])], ())
            raise ServingError(  # pragma: no cover
                "router failed on workload "
                f"'{stream[int(missing[0])].workload}'"
            )
    for index in range(num_components):
        mask = comp == index
        if mask.any():
            per_component[index][0].append(arr[mask])
            per_component[index][1].append(ids[mask])
            per_component[index][2].append(codes[mask])

    jobs = _component_jobs(
        plan, chip_models, router, per_component, workload_names
    )
    bundles, workers_used = _run_components(sim, jobs, workload_names, workers)

    served = sum(bundle.served for bundle in bundles)
    if served != len(stream):
        raise ServingError(
            f"simulation lost requests: {served} served of {len(stream)}"
        )
    ids_all = np.concatenate([bundle.ids for bundle in bundles])
    order = np.argsort(ids_all)
    codes_merged = np.concatenate([b.codes for b in bundles])[order].tolist()
    records = tuple(
        map(
            RequestRecord,
            ids_all[order].tolist(),
            [workload_names[code] for code in codes_merged],
            np.concatenate([b.chip for b in bundles])[order].tolist(),
            np.concatenate([b.arrival for b in bundles])[order].tolist(),
            np.concatenate([b.dispatch for b in bundles])[order].tolist(),
            np.concatenate([b.finish for b in bundles])[order].tolist(),
            np.concatenate([b.size for b in bundles])[order].tolist(),
        )
    )
    num_chips = sim.fleet.num_chips
    chip_busy = [0.0] * num_chips
    chip_requests = [0] * num_chips
    energy = 0.0
    num_batches = 0
    horizon = stream[0].arrival_s
    for bundle in bundles:
        for chip, busy_s, chip_served in bundle.chip_rows:
            chip_busy[chip] = busy_s
            chip_requests[chip] = chip_served
        energy += bundle.energy
        num_batches += bundle.num_batches
        if bundle.horizon > horizon:
            horizon = bundle.horizon
    provenance = sim._provenance(len(stream))
    provenance.update(_shard_keys(shards, plan, workers_used))
    return ServingResult(
        records=records,
        num_chips=num_chips,
        chip_busy_s=tuple(chip_busy),
        chip_requests=tuple(chip_requests),
        energy_joules=energy,
        num_batches=num_batches,
        horizon_s=horizon,
        first_arrival_s=stream[0].arrival_s,
        chip_backends=sim.fleet.chip_backends,
        provenance=provenance,
    )


def run_stream_sharded(
    sim,
    chunks,
    workload_names,
    provenance=None,
    shards: int = 2,
    workers: int | None = None,
    telemetry_window_s: float | None = None,
) -> StreamedServingResult:
    """``ServingSimulator.run_stream`` semantics with sharded execution.

    Partitioning must see the whole stream before components run, so —
    unlike the single-shard streaming core — the stream is materialized in
    columnar form: sharding trades the bounded-memory guarantee for speed.
    Merged latency arrays are in the canonical ``(dispatch_s, chip,
    batch)`` order: per-chip arrays are byte-identical to the single-shard
    run; the global interleave at float-equal dispatch instants is
    canonicalized by chip id (order-insensitive metrics are unaffected).

    ``telemetry_window_s`` derives the windowed series from the merged
    canonical columns through the same vectorized kernel the post-hoc
    path uses — the resulting series is byte-identical to the
    single-shard run's (window contents are order-insensitive multisets).
    """
    _validate_shard_args(shards, workers)
    names_sorted = tuple(sorted(set(workload_names)))
    chip_models = sim._chip_models()
    router = sim._make_router(names_sorted, chip_models)
    plan = (
        plan_components(router, sim.fleet.num_chips)
        if shards > 1
        else "shards=1 requested"
    )
    if isinstance(plan, str):
        result = sim.run_stream(
            chunks, names_sorted, provenance=provenance,
            telemetry_window_s=telemetry_window_s,
        )
        result.provenance.update(
            {"shards": shards, "shards_effective": 1, "shard_fallback": plan}
        )
        return result

    wl_code = {name: code for code, name in enumerate(names_sorted)}
    num_components = len(plan.components)
    per_component = [([], [], []) for _ in range(num_components)]
    if plan.mode == "owners":
        comp_of_code = np.array(
            [plan.comp_of_workload.get(name, -1) for name in names_sorted],
            dtype=np.int64,
        )
    prev_arrival = -float("inf")
    prev_id = -1
    offset = 0
    total = 0
    first_arrival = 0.0
    for arrivals, names, chunk_ids in chunks:
        if not (len(arrivals) == len(names) == len(chunk_ids)):
            raise ServingError("columnar chunk has mismatched column lengths")
        n = len(arrivals)
        if not n:
            continue
        arr = np.asarray(arrivals, dtype=float)
        ids = np.asarray(chunk_ids, dtype=np.int64)
        bad = None
        if arr[0] < prev_arrival or (
            arr[0] == prev_arrival and ids[0] <= prev_id
        ):
            bad = 0
        elif n > 1:
            unsorted = np.flatnonzero(
                (arr[1:] < arr[:-1])
                | ((arr[1:] == arr[:-1]) & (ids[1:] <= ids[:-1]))
            )
            if unsorted.size:
                bad = int(unsorted[0]) + 1
        if bad is not None:
            raise ServingError(
                "request stream is not sorted by (arrival_s, request_id) "
                f"or repeats a request id near request {int(ids[bad])}"
            )
        prev_arrival = float(arr[-1])
        prev_id = int(ids[-1])
        try:
            codes = np.fromiter(
                map(wl_code.__getitem__, names), dtype=np.int64, count=n
            )
            unknown = np.empty(0, dtype=np.int64)
        except KeyError:
            codes = np.fromiter(
                (wl_code.get(name, -1) for name in names),
                dtype=np.int64,
                count=n,
            )
            unknown = np.flatnonzero(codes < 0)
        if unknown.size:
            position = int(unknown[0])
            name = names[position]
            if plan.mode == "owners":
                router.route(
                    Request(int(ids[position]), name, float(arr[position])),
                    (),
                )
                raise ServingError(  # pragma: no cover
                    f"router failed on workload '{name}'"
                )
            raise ServingError(
                f"stream contains workload '{name}' missing from the "
                f"declared workload set {list(names_sorted)}"
            )
        if plan.mode == "rr":
            comp = (offset + np.arange(n, dtype=np.int64)) % num_components
            offset += n
        else:
            comp = comp_of_code[codes]
            missing = np.flatnonzero(comp < 0)
            if missing.size:
                position = int(missing[0])
                router.route(
                    Request(
                        int(ids[position]),
                        names[position],
                        float(arr[position]),
                    ),
                    (),
                )
                raise ServingError(  # pragma: no cover
                    f"router failed on workload '{names[position]}'"
                )
        if not total:
            first_arrival = float(arr[0])
        total += n
        for index in range(num_components):
            mask = comp == index
            if mask.any():
                per_component[index][0].append(arr[mask])
                per_component[index][1].append(ids[mask])
                per_component[index][2].append(codes[mask])
    if not total:
        raise ServingError("cannot simulate an empty request stream")

    jobs = _component_jobs(
        plan, chip_models, router, per_component, names_sorted
    )
    bundles, workers_used = _run_components(sim, jobs, names_sorted, workers)

    served = sum(bundle.served for bundle in bundles)
    if served != total:
        raise ServingError(
            f"simulation lost requests: {served} served of {total}"
        )
    chip_merged = np.concatenate([b.chip for b in bundles])
    order = np.lexsort((
        np.concatenate([b.batch_seq for b in bundles]),
        chip_merged,
        np.concatenate([b.dispatch for b in bundles]),
    ))
    chip_ordered = chip_merged[order]
    arrival_ordered = np.concatenate([b.arrival for b in bundles])[order]
    finish_ordered = np.concatenate([b.finish for b in bundles])[order]
    dispatch_ordered = np.concatenate([b.dispatch for b in bundles])[order]
    codes_ordered = np.concatenate([b.codes for b in bundles])[order]

    num_chips = sim.fleet.num_chips
    chip_busy = [0.0] * num_chips
    chip_requests = [0] * num_chips
    energy = 0.0
    num_batches = 0
    horizon = first_arrival
    for bundle in bundles:
        for chip, busy_s, chip_served in bundle.chip_rows:
            chip_busy[chip] = busy_s
            chip_requests[chip] = chip_served
        energy += bundle.energy
        num_batches += bundle.num_batches
        if bundle.horizon > horizon:
            horizon = bundle.horizon

    telemetry = None
    if telemetry_window_s is not None:
        from repro.serving.telemetry import _energy_lookup, _series_from_columns

        telemetry = _series_from_columns(
            arrival=arrival_ordered,
            dispatch=dispatch_ordered,
            finish=finish_ordered,
            chip=chip_ordered,
            size=np.concatenate([b.size for b in bundles])[order],
            codes=codes_ordered,
            names=names_sorted,
            num_chips=num_chips,
            energy_of=_energy_lookup(chip_models),
            window_s=telemetry_window_s,
            horizon_s=horizon,
            first_arrival_s=first_arrival,
        )

    latency = finish_ordered - arrival_ordered
    queue_delay = dispatch_ordered - arrival_ordered
    run_provenance = sim._provenance(served)
    if provenance:
        run_provenance.update(provenance)
    run_provenance.update(_shard_keys(shards, plan, workers_used))
    return StreamedServingResult(
        num_requests=served,
        num_chips=num_chips,
        chip_busy_s=tuple(chip_busy),
        chip_requests=tuple(chip_requests),
        energy_joules=energy,
        num_batches=num_batches,
        horizon_s=horizon,
        first_arrival_s=first_arrival,
        chip_backends=sim.fleet.chip_backends,
        latency_s=latency,
        queue_delay_s=queue_delay,
        workload_latency_s={
            name: latency[codes_ordered == code]
            for code, name in enumerate(names_sorted)
        },
        chip_latency_s=tuple(
            latency[chip_ordered == chip] for chip in range(num_chips)
        ),
        provenance=run_provenance,
        telemetry=telemetry,
    )
