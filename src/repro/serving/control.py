"""Closed-loop serving control plane: autoscaling, admission, adaptive batching.

Every fleet so far is *static*: the DSE planner answers "how many chips"
once, offline, and the only way to survive a flash crowd is to provision
for its peak.  This module adds the dynamic answer — a time-stepped
controller that observes the fleet through windowed telemetry and acts on
it mid-run:

* **Autoscaling** — :data:`CONTROLLER_POLICIES` names two policies.
  ``target_util`` scales the provisioned chip count proportionally so the
  windowed busy fraction tracks a utilization setpoint;  ``queue_pid``
  runs a PID loop on outstanding work (queued + in-flight) against a
  queue-depth setpoint.  Newly provisioned chips spend ``warmup_s``
  *warming* before they accept work — the router never sees a chip that
  has not finished warming up.
* **SLO-aware admission control** — each arrival's queue-wait on its
  routed chip is estimated from the chip's pending depth, the current
  batch cap and the workload's batch-1 service time; arrivals whose
  estimate exceeds the per-workload SLO budget are *shed* at the door.
  Shed requests stay inside the conservation identity the chaos layer
  introduced: ``arrived == completed + shed + lost``.
* **Adaptive batching / routing** — under tail pressure (windowed p99
  above the SLO) the controller doubles the batching policy's
  ``max_batch_size`` toward a throughput-optimal cap; with a cold tail it
  halves it back toward latency-optimal.  Optionally it also upgrades a
  ``round_robin`` fleet to ``jsq`` routing when it observes per-chip
  queue imbalance.

:func:`run_controlled` executes an open-loop request stream under a
:class:`ControllerConfig` with its own compact scalar event loop (the same
pattern as :mod:`~repro.serving.sessions`: scale actions depend on
observed state, which rules out the pre-sorted-chunk contract of the
vectorized core) and returns an ordinary
:class:`~repro.serving.simulator.ServingResult` — so the whole
metrics/telemetry/CLI surface works unchanged, and controller-off runs
never touch this module.  Chips move through a small lifecycle::

    (new) --provision--> WARMING --warmup_s--> ACTIVE
    ACTIVE --scale-down--> DRAINING --queue empty--> PARKED
    PARKED --scale-up--> WARMING            (a cold chip re-warms)
    DRAINING --scale-up--> ACTIVE           (still warm: instant)

The controller's sensor is the telemetry window abstraction: control
ticks fire every ``interval_s`` on the same ``t // window`` grid
:mod:`~repro.serving.telemetry` uses, and each tick observes exactly the
arrivals/completions/busy-time/latency of the window it closes.  All
decisions are pure functions of observed state, so equal seeds produce
equal action logs (`same seed, same actions`).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, replace
from heapq import heappop, heappush

import numpy as np

from repro.errors import ServingError
from repro.serving.chaos import OP_FAIL, OP_RECOVER, OP_SLOW_START
from repro.serving.simulator import RequestRecord, ServingResult

__all__ = ["CONTROLLER_POLICIES", "ControllerConfig", "run_controlled"]

#: registered autoscaler policy names (the CLI's --controller choices)
CONTROLLER_POLICIES = ("target_util", "queue_pid")

#: routers the dynamic-fleet loop knows how to drive; affinity routers pin
#: ownership maps to a fixed fleet shape, which autoscaling invalidates
_CONTROLLABLE_ROUTERS = ("jsq", "round_robin")

# Heap event kinds, ordered like the other cores at equal instants:
# arrivals enqueue first, completions free chips, wake-ups retry batching,
# incidents land, warm-ups activate chips, and the controller tick
# observes last — so a tick never sees a half-applied instant.
_ARRIVAL, _FREE, _WAKE, _CHAOS, _WARM, _TICK = 0, 1, 2, 3, 4, 5

# Chip lifecycle states (see the module docstring's diagram).
_WARMING, _ACTIVE, _DRAINING, _PARKED = 0, 1, 2, 3


@dataclass(frozen=True)
class ControllerConfig:
    """One controller's policy and knobs, in simulated-time units.

    ``slo_s`` anchors the SLO-aware features (admission budgets and the
    adaptive-batching setpoint); :func:`~repro.serving.scenarios.run_scenario`
    fills it from the scenario's SLO when left ``None``.  ``slo_budget_s``
    overrides the admission budget away from the SLO itself — either one
    budget for every workload or a per-workload mapping (workloads absent
    from the mapping fall back to ``slo_s``).  ``min_chips`` defaults to
    the run's initial fleet size at execution time.
    """

    policy: str = "target_util"
    interval_s: float = 0.05
    warmup_s: float = 0.05
    min_chips: int | None = None
    max_chips: int = 8
    #: target_util policy: busy-fraction setpoint and dead band
    target_utilization: float = 0.7
    deadband: float = 0.1
    #: queue_pid policy: outstanding-work setpoint and gains
    target_queue: float = 8.0
    kp: float = 0.25
    ki: float = 0.05
    kd: float = 0.0
    #: SLO the controller serves (admission + batching setpoint)
    slo_s: float | None = None
    #: admission-control queue-wait budget; None = use ``slo_s``
    slo_budget_s: float | Mapping[str, float] | None = None
    #: shed arrivals whose estimated queue wait exceeds their budget
    admission: bool = True
    #: retune the batching policy's max_batch_size from windowed p99
    adapt_batching: bool = True
    batch_min: int = 1
    batch_max: int = 32
    #: upgrade round_robin -> jsq on observed queue imbalance
    adapt_routing: bool = False
    imbalance_threshold: int = 4

    def __post_init__(self) -> None:
        if self.policy not in CONTROLLER_POLICIES:
            raise ServingError(
                f"unknown controller policy '{self.policy}'; "
                f"known: {', '.join(CONTROLLER_POLICIES)}"
            )
        if not (self.interval_s > 0 and math.isfinite(self.interval_s)):
            raise ServingError(
                f"interval_s must be finite and positive, got {self.interval_s}"
            )
        if not (self.warmup_s >= 0 and math.isfinite(self.warmup_s)):
            raise ServingError(
                f"warmup_s must be finite and >= 0, got {self.warmup_s}"
            )
        if self.min_chips is not None and self.min_chips < 1:
            raise ServingError(
                f"min_chips must be positive, got {self.min_chips}"
            )
        if self.max_chips < 1:
            raise ServingError(
                f"max_chips must be positive, got {self.max_chips}"
            )
        if self.min_chips is not None and self.min_chips > self.max_chips:
            raise ServingError(
                f"min_chips ({self.min_chips}) cannot exceed "
                f"max_chips ({self.max_chips})"
            )
        if not 0 < self.target_utilization <= 1:
            raise ServingError(
                "target_utilization must be in (0, 1], "
                f"got {self.target_utilization}"
            )
        if self.deadband < 0:
            raise ServingError(f"deadband must be >= 0, got {self.deadband}")
        if self.target_queue <= 0:
            raise ServingError(
                f"target_queue must be positive, got {self.target_queue}"
            )
        if self.slo_s is not None and self.slo_s <= 0:
            raise ServingError(f"slo_s must be positive, got {self.slo_s}")
        if self.batch_min < 1 or self.batch_max < self.batch_min:
            raise ServingError(
                "batch bounds need 1 <= batch_min <= batch_max, got "
                f"[{self.batch_min}, {self.batch_max}]"
            )
        if self.imbalance_threshold < 1:
            raise ServingError(
                "imbalance_threshold must be positive, "
                f"got {self.imbalance_threshold}"
            )
        if isinstance(self.slo_budget_s, Mapping):
            budgets = dict(self.slo_budget_s)
            if any(value <= 0 for value in budgets.values()):
                raise ServingError("slo_budget_s budgets must be positive")
            object.__setattr__(
                self, "slo_budget_s", tuple(sorted(budgets.items()))
            )
        elif self.slo_budget_s is not None and self.slo_budget_s <= 0:
            raise ServingError(
                f"slo_budget_s must be positive, got {self.slo_budget_s}"
            )

    def budget_for(self, workload: str) -> float | None:
        """Admission queue-wait budget for ``workload`` (None = no limit)."""
        if not self.admission:
            return None
        if isinstance(self.slo_budget_s, tuple):
            for name, value in self.slo_budget_s:
                if name == workload:
                    return value
            return self.slo_s
        if self.slo_budget_s is not None:
            return float(self.slo_budget_s)
        return self.slo_s

    def to_dict(self) -> dict:
        """JSON-ready provenance form (knobs only, no run state)."""
        budget = self.slo_budget_s
        return {
            "policy": self.policy,
            "interval_s": self.interval_s,
            "warmup_s": self.warmup_s,
            "min_chips": self.min_chips,
            "max_chips": self.max_chips,
            "target_utilization": self.target_utilization,
            "deadband": self.deadband,
            "target_queue": self.target_queue,
            "kp": self.kp,
            "ki": self.ki,
            "kd": self.kd,
            "slo_s": self.slo_s,
            "slo_budget_s": dict(budget) if isinstance(budget, tuple) else budget,
            "admission": self.admission,
            "adapt_batching": self.adapt_batching,
            "batch_min": self.batch_min,
            "batch_max": self.batch_max,
            "adapt_routing": self.adapt_routing,
            "imbalance_threshold": self.imbalance_threshold,
        }


class _Chip:
    """Mutable chip state for the controlled event loop.

    Satisfies the :class:`~repro.serving.fleet.ChipView` protocol
    (``chip_id``/``busy``/``inflight``/``queue_depth``) plus the lifecycle
    fields the autoscaler drives.
    """

    __slots__ = (
        "chip_id", "busy", "inflight", "queue", "busy_s", "served",
        "pending_wake_s", "current", "down", "factors", "mult",
        "state", "warm_seq", "created_at", "first_active_at",
    )

    def __init__(self, chip_id: int, created_at: float, active: bool):
        self.chip_id = chip_id
        self.busy = False
        self.inflight = 0
        self.queue = []
        self.busy_s = 0.0
        self.served = 0
        self.pending_wake_s = None
        #: ``(seq, dispatch_s, finish_s, batch, service_s, energy_j)``
        self.current = None
        self.down = 0
        self.factors = []
        self.mult = 1.0
        self.state = _ACTIVE if active else _WARMING
        #: warm-up generation counter; a stale _WARM event must not
        #: activate a chip whose warm-up was cancelled and restarted
        self.warm_seq = 0
        self.created_at = created_at
        self.first_active_at = created_at if active else None

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def pending(self) -> int:
        """Queued plus in-flight requests (the JSQ routing key)."""
        return len(self.queue) + self.inflight


def run_controlled(
    simulator,
    config: ControllerConfig,
    requests,
    telemetry_window_s: float | None = None,
) -> ServingResult:
    """Serve an open-loop stream under a closed-loop fleet controller.

    Reuses the simulator's batching policy, per-chip service model and
    chaos timeline; the fleet itself becomes dynamic (the simulator's
    ``num_chips`` is the *initial* provisioning, scaled between
    ``config.min_chips`` and ``config.max_chips`` at control ticks).
    Returns a full-trace :class:`ServingResult` whose ``num_chips`` counts
    every chip ever provisioned; ``provenance["controller"]`` carries the
    realized action log, peak provisioning and per-chip warm-up instants.
    """
    if not isinstance(config, ControllerConfig):
        raise ServingError(
            f"config must be a ControllerConfig, got {type(config).__name__}"
        )
    if not requests:
        raise ServingError("cannot run a controller over an empty stream")
    if simulator.fleet.is_heterogeneous:
        raise ServingError(
            "controller runs need a homogeneous fleet: autoscaling "
            "provisions interchangeable chips"
        )
    router_name = simulator.fleet.router
    if router_name not in _CONTROLLABLE_ROUTERS:
        raise ServingError(
            f"controller runs support routers {list(_CONTROLLABLE_ROUTERS)}; "
            f"'{router_name}' pins an ownership map to a fixed fleet shape"
        )
    initial = simulator.fleet.num_chips
    min_chips = config.min_chips if config.min_chips is not None else initial
    if min_chips > config.max_chips:
        raise ServingError(
            f"min_chips ({min_chips}) cannot exceed "
            f"max_chips ({config.max_chips})"
        )
    if initial > config.max_chips:
        raise ServingError(
            f"the initial fleet ({initial} chips) already exceeds "
            f"max_chips ({config.max_chips})"
        )
    model = simulator._chip_models()[0]
    policy = simulator.batching_policy
    chaos = simulator.chaos
    interval = config.interval_s

    adapt_batching = (
        config.adapt_batching
        and config.slo_s is not None
        and hasattr(policy, "max_batch_size")
        and hasattr(policy, "single_group_cap")
    )
    saved_batch = (
        (policy.max_batch_size, policy.single_group_cap)
        if adapt_batching else None
    )

    stream = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    chips = [_Chip(chip_id, 0.0, active=True) for chip_id in range(initial)]

    heap: list = []
    seq_counter = 0

    def next_seq() -> int:
        nonlocal seq_counter
        seq_counter += 1
        return seq_counter

    for request in stream:
        heappush(heap, (request.arrival_s, _ARRIVAL, next_seq(), request))
    if chaos is not None:
        for ev_time, op, ev_chip, ev_mult in chaos.compile(initial):
            heappush(heap, (ev_time, _CHAOS, next_seq(), (op, ev_chip, ev_mult)))
    heappush(heap, (interval, _TICK, next_seq(), None))

    arrived = len(stream)
    remaining_arrivals = arrived
    records: list[RequestRecord] = []
    energy = 0.0
    num_batches = 0
    first_arrival = stream[0].arrival_s
    horizon = 0.0
    lost = 0
    shed = 0
    shed_admission = 0
    shed_times: list[float] = []
    incident_log: list[dict] = []
    actions: list[dict] = []
    scale_ups = 0
    scale_downs = 0
    current_router = router_name
    rr_next = 0
    peak = initial

    # Windowed sensor accumulators, reset at every control tick.
    win_busy_s = 0.0
    win_completions = 0
    win_latencies: list[float] = []
    # queue_pid state
    pid_integral = 0.0
    pid_prev_error: float | None = None

    est_service: dict[str, float] = {}

    def service_estimate(workload: str) -> float:
        """Memoized batch-1 service time (the admission-control unit)."""
        est = est_service.get(workload)
        if est is None:
            est = float(model.service_seconds(workload, 1))
            est_service[workload] = est
        return est

    def provisioned_count() -> int:
        """Capacity the policy steers: serving plus warming chips.

        Draining chips are excluded — they are capacity already decided
        away — which (with warming chips cancelled before active ones on
        scale-down) guarantees at least ``min_chips`` chips stay ACTIVE.
        """
        return sum(1 for chip in chips if chip.state in (_WARMING, _ACTIVE))

    def physical_count() -> int:
        """Chips occupying resources right now (peak-provisioning metric)."""
        return sum(
            1 for chip in chips
            if chip.state in (_WARMING, _ACTIVE, _DRAINING)
        )

    def eligible_chips() -> list:
        """Chips the router may choose: warm, not draining, not parked."""
        eligible = [chip for chip in chips if chip.state == _ACTIVE]
        if eligible:
            return eligible
        # Defensive: the scale logic keeps >= min_chips chips ACTIVE, but
        # routing must never crash — fall back to warming, then any chip.
        return [chip for chip in chips if chip.state == _WARMING] or chips

    def route(request) -> "_Chip":
        nonlocal rr_next
        eligible = eligible_chips()
        if current_router == "jsq":
            return min(eligible, key=lambda chip: (chip.pending, chip.chip_id))
        chosen = eligible[rr_next % len(eligible)]
        rr_next += 1
        return chosen

    def dispatch(chip: "_Chip", now: float) -> None:
        """Launch the policy's batch on an idle, healthy, serving chip."""
        if chip.busy or chip.down or not chip.queue:
            if (
                chip.state == _DRAINING
                and not chip.busy
                and not chip.queue
            ):
                chip.state = _PARKED
            return
        if chip.state not in (_ACTIVE, _DRAINING):
            return
        decision = policy.select(chip.queue, now)
        batch = decision.batch
        if batch is None:
            wake = decision.wake_s
            if wake is not None and (
                chip.pending_wake_s is None or wake < chip.pending_wake_s
            ):
                chip.pending_wake_s = wake
                heappush(heap, (wake, _WAKE, next_seq(), chip.chip_id))
            return
        members = set(id(request) for request in batch)
        chip.queue = [
            request for request in chip.queue if id(request) not in members
        ]
        size = len(batch)
        workload = batch[0].workload
        service_s = model.service_seconds(workload, size)
        energy_j = model.energy_joules(workload, size)
        if chip.mult != 1.0:
            service_s *= chip.mult
            energy_j *= chip.mult
        finish = now + service_s
        seq = next_seq()
        chip.current = (seq, now, finish, tuple(batch), service_s, energy_j)
        chip.busy = True
        chip.inflight = size
        heappush(heap, (finish, _FREE, seq, chip.chip_id))

    def drop_batch(chip: "_Chip") -> int:
        """Kill the in-flight batch (chip failure): requests are lost."""
        batch = chip.current[3]
        chip.current = None
        chip.busy = False
        chip.inflight = 0
        return len(batch)

    def drop_queue(chip: "_Chip", now: float) -> int:
        """Shed every queued request (chip failure drops its queue)."""
        dropped = len(chip.queue)
        shed_times.extend([now] * dropped)
        chip.queue.clear()
        if chip.state == _DRAINING and not chip.busy:
            chip.state = _PARKED
        return dropped

    def start_warming(chip: "_Chip", now: float) -> None:
        """(Re)provision a cold chip; it serves after ``warmup_s``."""
        if config.warmup_s == 0:
            chip.state = _ACTIVE
            if chip.first_active_at is None:
                chip.first_active_at = now
            return
        chip.state = _WARMING
        chip.warm_seq += 1
        heappush(
            heap,
            (now + config.warmup_s, _WARM, next_seq(),
             (chip.chip_id, chip.warm_seq)),
        )

    def scale_to(desired: int, now: float) -> None:
        """Apply one scale decision, preferring warm capacity first."""
        nonlocal scale_ups, scale_downs, peak
        provisioned = provisioned_count()
        if desired > provisioned:
            reactivated = 0
            added = 0
            need = desired - provisioned
            # Draining chips are still warm: un-drain them for free.
            for chip in chips:
                if need and chip.state == _DRAINING:
                    chip.state = _ACTIVE
                    reactivated += 1
                    need -= 1
            # Parked chips went cold: they re-warm like new capacity.
            for chip in chips:
                if need and chip.state == _PARKED:
                    start_warming(chip, now)
                    added += 1
                    need -= 1
            while need:
                chip = _Chip(len(chips), now, active=config.warmup_s == 0)
                chips.append(chip)
                if config.warmup_s > 0:
                    start_warming(chip, now)
                added += 1
                need -= 1
            scale_ups += 1
            peak = max(peak, physical_count())
            actions.append({
                "at_s": now, "action": "scale_up", "added": added,
                "reactivated": reactivated, "provisioned": provisioned_count(),
            })
        elif desired < provisioned:
            need = provisioned - desired
            removed = 0
            # Cancel still-warming chips first (nothing runs on them yet),
            # newest first, then drain the newest active chips.
            for chip in reversed(chips):
                if need and chip.state == _WARMING:
                    chip.state = _PARKED
                    removed += 1
                    need -= 1
            for chip in reversed(chips):
                if need and chip.state == _ACTIVE:
                    chip.state = _DRAINING
                    if not chip.busy and not chip.queue:
                        chip.state = _PARKED
                    removed += 1
                    need -= 1
            if removed:
                scale_downs += 1
                actions.append({
                    "at_s": now, "action": "scale_down", "removed": removed,
                    "provisioned": provisioned_count(),
                })

    def control_tick(now: float) -> None:
        """Observe the closed window, decide, act, reset the sensor."""
        nonlocal win_busy_s, win_completions, win_latencies
        nonlocal pid_integral, pid_prev_error, current_router
        active = eligible_chips()
        active_count = max(1, len(active))
        provisioned = provisioned_count()
        outstanding = sum(chip.pending for chip in chips)
        utilization = win_busy_s / (interval * active_count)

        if config.policy == "target_util":
            target = config.target_utilization
            desired = provisioned
            if utilization > target + config.deadband:
                desired = math.ceil(provisioned * utilization / target)
            elif (
                utilization < target - config.deadband and outstanding == 0
            ):
                desired = (
                    math.ceil(provisioned * utilization / target)
                    if utilization > 0 else min_chips
                )
            desired = max(min_chips, min(config.max_chips, desired))
        else:  # queue_pid
            error = outstanding - config.target_queue
            pid_integral = max(-64.0, min(64.0, pid_integral + error * interval))
            derivative = (
                (error - pid_prev_error) / interval
                if pid_prev_error is not None else 0.0
            )
            pid_prev_error = error
            signal = (
                config.kp * error
                + config.ki * pid_integral
                + config.kd * derivative
            )
            desired = max(
                min_chips,
                min(config.max_chips, provisioned + int(round(signal))),
            )
        if desired != provisioned:
            scale_to(desired, now)

        if adapt_batching and win_latencies:
            p99 = float(np.percentile(np.array(win_latencies, dtype=float), 99))
            cap = policy.max_batch_size
            if p99 > config.slo_s and cap < config.batch_max:
                cap = min(config.batch_max, cap * 2)
            elif p99 < 0.5 * config.slo_s and cap > config.batch_min:
                cap = max(config.batch_min, cap // 2)
            if cap != policy.max_batch_size:
                policy.max_batch_size = cap
                policy.single_group_cap = cap
                actions.append({
                    "at_s": now, "action": "batch", "max_batch_size": cap,
                })

        if config.adapt_routing and current_router == "round_robin":
            pendings = [chip.pending for chip in active] or [0]
            if max(pendings) - min(pendings) >= config.imbalance_threshold:
                current_router = "jsq"
                actions.append({
                    "at_s": now, "action": "router", "router": "jsq",
                })

        win_busy_s = 0.0
        win_completions = 0
        win_latencies = []

        # Keep ticking while work can still arrive or progress; queues
        # stranded on never-recovering chips do not hold the clock open.
        if remaining_arrivals or any(
            chip.busy or (chip.queue and not chip.down) for chip in chips
        ):
            heappush(heap, (now + interval, _TICK, next_seq(), None))

    while heap:
        now, kind, seq, payload = heappop(heap)
        if kind == _ARRIVAL:
            remaining_arrivals -= 1
            request = payload
            chip = route(request)
            budget = config.budget_for(request.workload)
            if budget is not None and chip.pending:
                est = service_estimate(request.workload)
                cap = getattr(policy, "max_batch_size", None) or 1
                batches_ahead = -(-chip.pending // cap)  # ceil division
                if batches_ahead * est > budget:
                    shed += 1
                    shed_admission += 1
                    shed_times.append(now)
                    continue
            chip.queue.append(request)
            dispatch(chip, now)
        elif kind == _FREE:
            chip = chips[payload]
            entry = chip.current
            if entry is None or entry[0] != seq:
                continue  # stale completion of a killed batch
            _, dispatch_s, finish_s, batch, service_s, energy_j = entry
            chip.current = None
            chip.busy = False
            chip.inflight = 0
            if finish_s > horizon:
                horizon = finish_s
            energy += energy_j
            num_batches += 1
            chip.busy_s += service_s
            chip.served += len(batch)
            win_busy_s += service_s
            win_completions += len(batch)
            for request in batch:
                records.append(RequestRecord(
                    request.request_id, request.workload, chip.chip_id,
                    request.arrival_s, dispatch_s, finish_s, len(batch),
                ))
                win_latencies.append(finish_s - request.arrival_s)
            dispatch(chip, now)
        elif kind == _WAKE:
            chip = chips[payload]
            if chip.pending_wake_s is not None and chip.pending_wake_s <= now:
                chip.pending_wake_s = None
            dispatch(chip, now)
        elif kind == _CHAOS:
            op, ev_chip, ev_mult = payload
            chip = chips[ev_chip]
            if op == OP_FAIL:
                chip.down += 1
                lost_here = drop_batch(chip) if chip.busy else 0
                shed_here = drop_queue(chip, now)
                lost += lost_here
                shed += shed_here
                incident_log.append({
                    "at_s": now, "kind": "fail", "chip": ev_chip,
                    "requests_lost": lost_here, "requests_shed": shed_here,
                })
            elif op == OP_RECOVER:
                chip.down -= 1
                incident_log.append(
                    {"at_s": now, "kind": "recover", "chip": ev_chip}
                )
                if not chip.down:
                    dispatch(chip, now)
            elif op == OP_SLOW_START:
                chip.factors.append(ev_mult)
                chip.mult = math.prod(chip.factors)
                incident_log.append({
                    "at_s": now, "kind": "slow", "chip": ev_chip,
                    "multiplier": ev_mult,
                })
            else:  # OP_SLOW_END
                chip.factors.remove(ev_mult)
                chip.mult = math.prod(chip.factors) if chip.factors else 1.0
                incident_log.append({
                    "at_s": now, "kind": "slow_end", "chip": ev_chip,
                    "multiplier": ev_mult,
                })
        elif kind == _WARM:
            chip_id, warm_seq = payload
            chip = chips[chip_id]
            if chip.state == _WARMING and chip.warm_seq == warm_seq:
                chip.state = _ACTIVE
                if chip.first_active_at is None:
                    chip.first_active_at = now
        else:  # _TICK
            control_tick(now)

    # Requests still queued sit on chips whose failure window never
    # closed; conservation over arrivals must still hold, so count them
    # shed (mirrors the sessions loop's stranded sweep).
    for chip in chips:
        if chip.queue:
            stranded = len(chip.queue)
            chip.queue.clear()
            shed += stranded
            shed_times.extend([horizon] * stranded)
            incident_log.append({
                "at_s": horizon, "kind": "stranded",
                "chip": chip.chip_id, "requests_shed": stranded,
            })
    if len(records) + lost + shed != arrived:
        raise ServingError(
            f"controlled run lost requests: {len(records)} served + {lost} "
            f"lost + {shed} shed of {arrived}"
        )

    if saved_batch is not None:
        # The policy object belongs to the caller; leave it as configured.
        final_batch = policy.max_batch_size
        policy.max_batch_size, policy.single_group_cap = saved_batch
    else:
        final_batch = getattr(policy, "max_batch_size", None)

    records.sort(key=lambda record: record.request_id)
    provenance = simulator._provenance(len(records), None)
    provenance["controller"] = {
        **config.to_dict(),
        "min_chips": min_chips,
        "initial_chips": initial,
        "peak_chips": peak,
        "final_active": sum(1 for chip in chips if chip.state == _ACTIVE),
        "final_router": current_router,
        "final_max_batch_size": final_batch,
        "scale_ups": scale_ups,
        "scale_downs": scale_downs,
        "shed_admission": shed_admission,
        "actions": actions,
        "chips": [
            {
                "chip": chip.chip_id,
                "created_at_s": chip.created_at,
                "first_active_at_s": chip.first_active_at,
            }
            for chip in chips
        ],
    }
    backend = simulator.fleet.chip_backends[0]
    result = ServingResult(
        records=tuple(records),
        num_chips=len(chips),
        chip_busy_s=tuple(chip.busy_s for chip in chips),
        chip_requests=tuple(chip.served for chip in chips),
        energy_joules=energy,
        num_batches=num_batches,
        horizon_s=horizon,
        first_arrival_s=first_arrival,
        chip_backends=(backend,) * len(chips),
        provenance=provenance,
        requests_lost=lost,
        requests_shed=shed,
        incidents=tuple(incident_log),
    )
    if telemetry_window_s is None:
        return result
    from repro.serving.telemetry import derive_series

    # The dynamic fleet can outgrow the simulator's static chip-model
    # list, so derive the series directly over the homogeneous model.
    series = derive_series(result, telemetry_window_s, [model] * len(chips))
    if shed_times and series.windows:
        # Admission control finally populates the schema's reserved
        # ``shed`` field: count each shed instant into its window.
        lo = series.windows[0]["window"]
        hi = series.windows[-1]["window"]
        by_window: dict[int, int] = {}
        for at_s in shed_times:
            index = min(hi, max(lo, int(at_s // series.window_s)))
            by_window[index] = by_window.get(index, 0) + 1
        for row in series.windows:
            count = by_window.get(row["window"])
            if count:
                row["shed"] = count
    return replace(result, telemetry=series)
