"""Exporters for the serving telemetry time series.

Three renderings of one :class:`~repro.serving.telemetry.TelemetrySeries`:

* :func:`write_jsonl` — a self-describing JSONL file (one header line
  declaring the frozen field list, then one window per line), the
  machine-readable format the CI schema check validates,
* :func:`to_prometheus` — Prometheus text exposition: every window
  becomes one timestamped sample per metric (per-chip gauges carry a
  ``chip`` label), ready for ``promtool``-style ingestion or diffing,
* :func:`render_dashboard` — a terminal dashboard of unicode sparklines
  over the windowed series with a summary footer (``repro serve
  --dashboard``).

Exports are deterministic functions of the series (no wall-clock
timestamps or absolute paths), so golden-file tests can assert bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ServingError
from repro.serving.telemetry import SPAN_FIELDS, TELEMETRY_FIELDS, TelemetrySeries

__all__ = [
    "TELEMETRY_FORMAT",
    "write_jsonl",
    "write_spans_jsonl",
    "to_prometheus",
    "render_dashboard",
]

#: format tag of the JSONL telemetry export's header line
TELEMETRY_FORMAT = "cogsys-serving-telemetry"

#: sparkline glyphs, lowest to highest
_SPARKS = "▁▂▃▄▅▆▇█"


def _dumps(obj) -> str:
    """Compact, key-order-preserving JSON for one export line."""
    return json.dumps(obj, separators=(",", ":"))


def write_jsonl(path, series: TelemetrySeries, source=None) -> Path:
    """Write the series as self-describing JSONL and return the path.

    Line 1 is a header carrying the format tag, window geometry, totals,
    the frozen :data:`~repro.serving.telemetry.TELEMETRY_FIELDS` list and
    the caller-supplied ``source`` dict (scenario name, seed, ...); every
    further line is one window row in schema order.
    """
    path = Path(path)
    header = {
        "format": TELEMETRY_FORMAT,
        "version": 1,
        "window_s": series.window_s,
        "num_chips": series.num_chips,
        "num_windows": series.num_windows,
        "requests": series.requests,
        "completed": series.completed,
        "fields": list(TELEMETRY_FIELDS),
        "source": dict(source or {}),
    }
    lines = [_dumps(header)]
    lines.extend(_dumps(row) for row in series.windows)
    path.write_text("\n".join(lines) + "\n")
    return path


def write_spans_jsonl(path, spans, source=None) -> Path:
    """Write per-request lifecycle spans as self-describing JSONL."""
    path = Path(path)
    spans = tuple(spans)
    header = {
        "format": "cogsys-serving-spans",
        "version": 1,
        "num_spans": len(spans),
        "fields": list(SPAN_FIELDS),
        "source": dict(source or {}),
    }
    lines = [_dumps(header)]
    lines.extend(_dumps(span) for span in spans)
    path.write_text("\n".join(lines) + "\n")
    return path


def _prom_name(field: str) -> str:
    """Metric suffix for one telemetry field."""
    return field.replace("_rps", "_per_s")


_PROM_HELP = {
    "arrivals": "requests arriving in the window",
    "completions": "requests completing in the window",
    "batches": "batches dispatched in the window",
    "shed": "requests shed by admission control in the window",
    "arrival_rate_rps": "windowed arrival rate",
    "completion_rate_rps": "windowed completion rate",
    "p50_ms": "windowed p50 latency in milliseconds",
    "p95_ms": "windowed p95 latency in milliseconds",
    "p99_ms": "windowed p99 latency in milliseconds",
    "energy_j": "energy of batches dispatched in the window, joules",
    "utilization": "fleet busy fraction over the window",
    "queue_depth": "queued requests per chip at the window end",
    "inflight": "in-flight batches per chip at the window end",
}


def to_prometheus(series: TelemetrySeries, prefix: str = "repro_serving") -> str:
    """Render the series in Prometheus text exposition format.

    Every window contributes one sample per metric, timestamped at the
    window's end boundary in simulated milliseconds; per-chip fields
    (queue depth, in-flight) fan out over a ``chip`` label.  Windows
    without completions skip the latency-percentile samples.
    """
    scalar_fields = (
        "arrivals", "completions", "batches", "shed", "arrival_rate_rps",
        "completion_rate_rps", "p50_ms", "p95_ms", "p99_ms", "energy_j",
        "utilization",
    )
    out: list[str] = []
    for field in scalar_fields:
        name = f"{prefix}_{_prom_name(field)}"
        out.append(f"# HELP {name} {_PROM_HELP[field]}")
        out.append(f"# TYPE {name} gauge")
        for row in series.windows:
            value = row[field]
            if value is None:
                continue
            stamp = int(round(row["end_s"] * 1000.0))
            out.append(f"{name} {value} {stamp}")
    for field in ("queue_depth", "inflight"):
        name = f"{prefix}_{_prom_name(field)}"
        out.append(f"# HELP {name} {_PROM_HELP[field]}")
        out.append(f"# TYPE {name} gauge")
        for row in series.windows:
            stamp = int(round(row["end_s"] * 1000.0))
            for chip, value in enumerate(row[field]):
                out.append(f'{name}{{chip="{chip}"}} {value} {stamp}')
    return "\n".join(out) + "\n"


def _sparkline(values, width: int) -> str:
    """Scale a value sequence into a fixed-width unicode sparkline.

    ``None`` samples (e.g. percentiles of empty windows) count as zero;
    series longer than ``width`` downsample by per-bucket maximum so
    spikes stay visible.
    """
    cleaned = [0.0 if value is None else float(value) for value in values]
    if not cleaned:
        return ""
    if len(cleaned) > width:
        buckets = []
        step = len(cleaned) / width
        for i in range(width):
            lo = int(i * step)
            hi = max(int((i + 1) * step), lo + 1)
            buckets.append(max(cleaned[lo:hi]))
        cleaned = buckets
    peak = max(cleaned)
    if peak <= 0:
        return _SPARKS[0] * len(cleaned)
    levels = len(_SPARKS) - 1
    return "".join(
        _SPARKS[int(round(value / peak * levels))] for value in cleaned
    )


def _fmt(value: float) -> str:
    """Compact human number formatting for the dashboard."""
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}".rstrip("0").rstrip(".")


def render_dashboard(series: TelemetrySeries, title: str | None = None,
                     width: int = 64) -> str:
    """Render the terminal sparkline dashboard over the windowed series."""
    if series.num_windows == 0:
        raise ServingError("cannot render a dashboard over an empty series")
    window_ms = series.window_s * 1000.0
    head = title or "Serving telemetry"
    lines = [
        f"## {head} — {series.num_windows} windows × {window_ms:g} ms",
        "",
    ]
    queue_total = [sum(row["queue_depth"]) for row in series.windows]
    inflight_total = [sum(row["inflight"]) for row in series.windows]
    panels = (
        ("arrivals/s", series.column("arrival_rate_rps"), "/s"),
        ("completions/s", series.column("completion_rate_rps"), "/s"),
        ("p99 latency", series.column("p99_ms"), " ms"),
        ("utilization", series.column("utilization"), ""),
        ("queue depth", queue_total, ""),
        ("in-flight", inflight_total, ""),
        ("energy/window", series.column("energy_j"), " J"),
    )
    for label, values, unit in panels:
        peak = max(0.0 if value is None else float(value) for value in values)
        lines.append(
            f"{label:<14} {_sparkline(values, width)}  peak {_fmt(peak)}{unit}"
        )
    total_energy = sum(series.column("energy_j"))
    lines.extend([
        "",
        f"requests {series.requests} · completed {series.completed} · "
        f"batches {sum(series.column('batches'))} · "
        f"chips {series.num_chips} · energy {_fmt(total_energy)} J",
    ])
    return "\n".join(lines) + "\n"
