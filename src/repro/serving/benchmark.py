"""Event-core throughput suite: the serving layer's performance contract.

The suite measures *simulated requests per wall-clock second* of
:meth:`~repro.serving.simulator.ServingSimulator.run` across five load
regimes — nominal, moderate overload, deep saturation, an extreme flash
crowd and a sharded hot spot.  Service-report caches are pre-warmed so the
numbers isolate the discrete-event hot path (the thing PR 5 rewrote), not
one-time workload-graph construction.

Wall-clock throughput is machine-dependent, so the recorded baseline in
``benchmarks/BENCH_serving.json`` stores a *calibration* figure (a fixed
pure-Python loop's ops/s) next to every measurement; comparisons scale the
recorded numbers by the live-to-recorded calibration ratio before
applying tolerances.  ``scripts/check_serving_throughput.py`` is the CI
gate built on this module; ``benchmarks/bench_serving_sweep.py`` runs the
same suite under pytest-benchmark.
"""

from __future__ import annotations

import math
import statistics
import time
from typing import NamedTuple

from repro.serving.batching import build_policy
from repro.serving.fleet import Fleet, FleetServiceModel
from repro.serving.scenarios import get_scenario
from repro.serving.simulator import ServingSimulator

__all__ = [
    "ThroughputCase",
    "THROUGHPUT_SUITE",
    "ShardedThroughputCase",
    "SHARDED_SUITE",
    "CoupledThroughputCase",
    "COUPLED_SUITE",
    "calibration_ops_per_s",
    "measure_case",
    "measure_suite",
    "measure_sharded_case",
    "measure_sharded_suite",
    "measure_coupled_case",
    "measure_coupled_suite",
    "measure_telemetry_overhead",
    "geometric_mean",
]


class ThroughputCase(NamedTuple):
    """One throughput measurement: a scenario preset at a load regime."""

    label: str
    scenario: str
    load_scale: float
    duration_scale: float


#: the five load regimes the event core is graded on.  The saturated and
#: flash cases push offered load past *batched* fleet capacity — standing
#: queues grow to thousands of requests, which is exactly where the old
#: per-dispatch queue scans collapsed (sub-20k req/s) and where a serving
#: simulator for million-request traces must stay fast.
THROUGHPUT_SUITE: tuple[ThroughputCase, ...] = (
    ThroughputCase("steady_nominal", "steady", 1.0, 4.0),
    ThroughputCase("steady_overload", "steady", 1.6, 4.0),
    ThroughputCase("steady_saturated", "steady", 4.0, 2.0),
    ThroughputCase("flash_megacrowd", "flash_crowd", 4.0, 2.0),
    ThroughputCase("mixed_hotspot", "mixed_workload", 1.3, 4.0),
)

class ShardedThroughputCase(NamedTuple):
    """A sharded measurement: a deep-saturation regime on a wide rr fleet."""

    label: str
    scenario: str
    load_scale: float
    duration_scale: float
    num_chips: int
    router: str
    shards: int


#: the million-req/s regimes: deep saturation (mean batch ≈ 7-8) on an
#: 8-chip round-robin fleet, where the fleet factors into one component
#: per chip and the columnar per-component engine takes over.  Shallower
#: loads (e.g. ``steady_saturated``'s 4.0 on 2 chips) leave each chip at
#: batch ≈ 1 and the sharded path merely matches the single-shard core.
SHARDED_SUITE: tuple[ShardedThroughputCase, ...] = (
    ShardedThroughputCase(
        "steady_saturated_x8", "steady", 16.0, 2.0, 8, "round_robin", 4
    ),
    ShardedThroughputCase(
        "flash_megacrowd_x8", "flash_crowd", 16.0, 2.0, 8, "round_robin", 4
    ),
)

class CoupledThroughputCase(NamedTuple):
    """A coupled-fleet measurement: deep saturation on a JSQ fleet."""

    label: str
    scenario: str
    load_scale: float
    duration_scale: float
    num_chips: int
    max_batch_size: int


#: the coupled-fleet regimes: deep saturation on JSQ fleets, which cannot
#: shard (every routing decision reads every chip's queue depth) and so ran
#: on the scalar per-arrival path before the water-fill engine.  Standing
#: queues of thousands keep the whole fleet busy, which is exactly when
#: arrival runs route as single vectorized spans; large continuous-batching
#: caps are what deep saturation pairs with in practice (draining a
#: thousand-deep queue eight requests at a time would be a config bug).
COUPLED_SUITE: tuple[CoupledThroughputCase, ...] = (
    CoupledThroughputCase("steady_coupled_x2", "steady", 64.0, 0.5, 2, 128),
    CoupledThroughputCase(
        "steady_coupled_deep_x2", "steady", 128.0, 0.25, 2, 256
    ),
    CoupledThroughputCase("steady_coupled_x4", "steady", 192.0, 0.25, 4, 128),
)

#: iterations of the calibration loop (a fixed, allocation-free workload)
_CALIBRATION_OPS = 2_000_000


def calibration_ops_per_s() -> float:
    """Machine-speed yardstick: ops/s of a fixed pure-Python loop.

    Recorded next to every baseline measurement so a throughput check on a
    faster or slower machine can rescale the recorded numbers instead of
    comparing wall-clock figures across hardware.  Best of three, like the
    measurements it normalizes.
    """
    best = 0.0
    for _ in range(3):
        total = 0
        started = time.perf_counter()
        for i in range(_CALIBRATION_OPS):
            total += i % 7
        elapsed = time.perf_counter() - started
        best = max(best, _CALIBRATION_OPS / elapsed)
    return best


def measure_case(case: ThroughputCase, repeats: int = 3) -> dict:
    """Measure one suite case: best-of-``repeats`` requests/s of ``run``.

    Traffic generation and the first (cache-warming) run are excluded from
    timing — the measurement is the event loop itself over a fully
    memoized service table.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    scenario = get_scenario(case.scenario)
    requests = scenario.traffic(0, case.load_scale, case.duration_scale)
    fleet = Fleet(num_chips=scenario.num_chips, router=scenario.router)
    simulator = ServingSimulator(
        service_model=FleetServiceModel(fleet=fleet),
        fleet=fleet,
        batching_policy=build_policy(scenario.policy),
    )
    simulator.run(requests)  # warm every (workload, batch) service report
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        simulator.run(requests)
        elapsed = time.perf_counter() - started
        best = max(best, len(requests) / elapsed)
    return {
        "label": case.label,
        "scenario": case.scenario,
        "load_scale": case.load_scale,
        "duration_scale": case.duration_scale,
        "requests": len(requests),
        "requests_per_s": round(best, 1),
    }


def measure_suite(repeats: int = 3, jobs: int = 1) -> list[dict]:
    """Measure every case of :data:`THROUGHPUT_SUITE`.

    ``jobs > 1`` fans the cases across the suite runner's process pool
    (:func:`repro.serving.suite.map_cases`) — useful for quick sweeps on
    multi-core machines, but keep the default for gate timings: parallel
    cases contend for cores and distort each other's wall clock.
    """
    from functools import partial

    from repro.serving.suite import map_cases

    return map_cases(
        partial(measure_case, repeats=repeats), THROUGHPUT_SUITE, jobs=jobs
    )


def measure_sharded_case(case: ShardedThroughputCase, repeats: int = 3) -> dict:
    """Measure one sharded case at ``shards=1`` and ``shards=case.shards``.

    Both numbers go through :meth:`ServingSimulator.run_stream` over one
    pre-columnarized chunk, so the comparison isolates the sharded merge
    against the single-shard streaming core on identical input.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    scenario = get_scenario(case.scenario)
    requests = scenario.traffic(0, case.load_scale, case.duration_scale)
    fleet = Fleet(num_chips=case.num_chips, router=case.router)
    simulator = ServingSimulator(
        service_model=FleetServiceModel(fleet=fleet),
        fleet=fleet,
        batching_policy=build_policy(scenario.policy),
    )
    columns = (
        [request.arrival_s for request in requests],
        [request.workload for request in requests],
        [request.request_id for request in requests],
    )
    workloads = tuple(sorted({request.workload for request in requests}))
    simulator.run_stream([columns], workloads)  # warm the service reports

    def best_of(shards: int) -> float:
        best = 0.0
        for _ in range(repeats):
            started = time.perf_counter()
            simulator.run_stream([columns], workloads, shards=shards)
            elapsed = time.perf_counter() - started
            best = max(best, len(requests) / elapsed)
        return best

    single = best_of(1)
    sharded = best_of(case.shards)
    return {
        "label": case.label,
        "scenario": case.scenario,
        "load_scale": case.load_scale,
        "duration_scale": case.duration_scale,
        "num_chips": case.num_chips,
        "router": case.router,
        "shards": case.shards,
        "requests": len(requests),
        "requests_per_s": round(sharded, 1),
        "single_shard_requests_per_s": round(single, 1),
    }


def measure_sharded_suite(repeats: int = 3) -> list[dict]:
    """Measure every case of :data:`SHARDED_SUITE`."""
    return [
        measure_sharded_case(case, repeats=repeats) for case in SHARDED_SUITE
    ]


def measure_coupled_case(case: CoupledThroughputCase, repeats: int = 3) -> dict:
    """Measure one coupled case: best-of-``repeats`` req/s on a JSQ fleet.

    Like :func:`measure_sharded_case`, the measurement goes through
    :meth:`ServingSimulator.run_stream` over one pre-columnarized chunk
    with a pre-warmed service table, so it isolates the coupled event
    core — water-fill spans plus indexed min-queue routing — from traffic
    generation and one-time workload-graph construction.  The returned
    row carries the run's ``event_paths`` provenance so recordings show
    how much of the load actually took the vectorized path.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    scenario = get_scenario(case.scenario)
    requests = scenario.traffic(0, case.load_scale, case.duration_scale)
    fleet = Fleet(num_chips=case.num_chips, router="jsq")
    simulator = ServingSimulator(
        service_model=FleetServiceModel(fleet=fleet),
        fleet=fleet,
        batching_policy=build_policy(
            "continuous", max_batch_size=case.max_batch_size
        ),
    )
    columns = (
        [request.arrival_s for request in requests],
        [request.workload for request in requests],
        [request.request_id for request in requests],
    )
    workloads = tuple(sorted({request.workload for request in requests}))
    result = simulator.run_stream([columns], workloads)  # warm the reports
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        simulator.run_stream([columns], workloads)
        elapsed = time.perf_counter() - started
        best = max(best, len(requests) / elapsed)
    event_paths = result.provenance.get("event_paths", {})
    return {
        "label": case.label,
        "scenario": case.scenario,
        "load_scale": case.load_scale,
        "duration_scale": case.duration_scale,
        "num_chips": case.num_chips,
        "router": "jsq",
        "max_batch_size": case.max_batch_size,
        "requests": len(requests),
        "requests_per_s": round(best, 1),
        "water_fill_requests": event_paths.get("water_fill_requests", 0),
    }


def measure_coupled_suite(repeats: int = 3, jobs: int = 1) -> list[dict]:
    """Measure every case of :data:`COUPLED_SUITE`.

    Coupled fleets cannot shard, but independent cases can still run in
    parallel: ``jobs > 1`` uses the suite runner's pool (see
    :func:`measure_suite` for the gate-timing caveat).
    """
    from functools import partial

    from repro.serving.suite import map_cases

    return map_cases(
        partial(measure_coupled_case, repeats=repeats), COUPLED_SUITE,
        jobs=jobs,
    )


def measure_telemetry_overhead(
    case: ThroughputCase | None = None,
    window_s: float = 0.02,
    repeats: int = 3,
) -> dict:
    """Wall-clock cost of telemetry on one suite case, off vs on.

    Runs the case ``repeats`` times alternating ``telemetry_window_s=None``
    and the given window over a pre-warmed service table.  The returned
    ``overhead_pct`` is the *median of the paired per-iteration deltas*
    over the median off time (the acceptance budget is <10 %):
    interleaving makes each pair see the same machine state, and the
    median of deltas is robust against the multi-millisecond noise a
    single slow iteration injects into a best-of comparison.  The
    telemetry-off number is the same measurement the throughput gate
    takes, so "off means free" stays checked by CI without a second
    gate.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    case = case if case is not None else THROUGHPUT_SUITE[0]
    scenario = get_scenario(case.scenario)
    requests = scenario.traffic(0, case.load_scale, case.duration_scale)
    fleet = Fleet(num_chips=scenario.num_chips, router=scenario.router)
    simulator = ServingSimulator(
        service_model=FleetServiceModel(fleet=fleet),
        fleet=fleet,
        batching_policy=build_policy(scenario.policy),
    )
    simulator.run(requests)  # warm every (workload, batch) service report

    offs: list[float] = []
    ons: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        simulator.run(requests)
        offs.append(time.perf_counter() - started)
        started = time.perf_counter()
        simulator.run(requests, telemetry_window_s=window_s)
        ons.append(time.perf_counter() - started)
    off_s = statistics.median(offs)
    on_s = statistics.median(ons)
    delta_s = statistics.median(on - off for on, off in zip(ons, offs))
    return {
        "label": case.label,
        "scenario": case.scenario,
        "requests": len(requests),
        "window_s": window_s,
        "off_s": round(off_s, 6),
        "on_s": round(on_s, 6),
        "overhead_pct": round(100.0 * delta_s / off_s, 2)
        if off_s > 0
        else 0.0,
    }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the right average for per-case speedup ratios)."""
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    if any(value <= 0 for value in values):
        raise ValueError(f"geometric_mean needs positive values, got {values}")
    return math.exp(sum(math.log(value) for value in values) / len(values))
