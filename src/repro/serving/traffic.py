"""Seeded arrival-process generators for the serving simulator.

Traffic is a stream of :class:`Request` objects — (id, workload, arrival
time) — produced by one of three generators:

* :class:`PoissonArrivals` — homogeneous Poisson process with exponential
  inter-arrival gaps, the classic open-loop serving assumption.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (normal/burst) producing the bursty traffic real request logs show.
* :class:`TraceArrivals` — replay of an explicit ``(arrival_s, workload)``
  trace, for reproducing recorded load shapes (e.g. diurnal curves).

Every generator is deterministic given a seed: the same ``(generator
configuration, seed)`` pair always yields the identical request stream,
which is what makes whole serving simulations replayable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = [
    "Request",
    "WorkloadMix",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "TraceArrivals",
    "SEED_STRIDE",
    "concatenate_segments",
]

#: sub-seed stride between chained generation segments.  Shared by
#: :func:`concatenate_segments`, the scenario DSL's multi-phase compilation
#: and windowed trace recording — all three must derive segment ``i``'s
#: seed as ``seed * SEED_STRIDE + i`` or recorded streams stop matching
#: their generators.
SEED_STRIDE = 10_007


@dataclass(frozen=True)
class Request:
    """One inference request entering the serving system."""

    request_id: int
    workload: str
    arrival_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ServingError(
                f"request {self.request_id} has negative arrival time {self.arrival_s}"
            )


class WorkloadMix:
    """A normalised distribution over workload names.

    Names must be registered workload builders so every sampled request can
    actually be served; weights are normalised to probabilities.
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ServingError("workload mix must name at least one workload")
        unknown = set(weights) - set(WORKLOAD_BUILDERS)
        if unknown:
            raise ServingError(
                f"workload mix names unknown workloads {sorted(unknown)}; "
                f"known: {sorted(WORKLOAD_BUILDERS)}"
            )
        if any(weight < 0 for weight in weights.values()):
            raise ServingError("workload mix weights must be non-negative")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ServingError("workload mix weights must sum to a positive value")
        # Sorted name order makes sampling independent of dict insertion order.
        self.names: tuple[str, ...] = tuple(sorted(weights))
        self.probabilities: tuple[float, ...] = tuple(
            weights[name] / total for name in self.names
        )

    @classmethod
    def uniform(cls, names: Iterable[str] | None = None) -> "WorkloadMix":
        """Equal-probability mix over ``names`` (default: every workload)."""
        names = tuple(names) if names is not None else tuple(sorted(WORKLOAD_BUILDERS))
        return cls({name: 1.0 for name in names})

    def sample(self, rng: np.random.Generator) -> str:
        """Draw one workload name."""
        index = rng.choice(len(self.names), p=self.probabilities)
        return self.names[int(index)]


class ArrivalProcess:
    """Base class for request-stream generators."""

    def generate(
        self,
        duration_s: float,
        seed: int = 0,
        start_s: float = 0.0,
        start_id: int = 0,
    ) -> list[Request]:
        """Produce the arrival stream for ``[start_s, start_s + duration_s)``."""
        if duration_s <= 0:
            raise ServingError(f"duration must be positive, got {duration_s}")
        rng = np.random.default_rng(seed)
        requests = self._generate(duration_s, rng, start_s, start_id)
        return sorted(requests, key=lambda r: (r.arrival_s, r.request_id))

    def _generate(
        self,
        duration_s: float,
        rng: np.random.Generator,
        start_s: float,
        start_id: int,
    ) -> list[Request]:
        """Subclass hook producing the (possibly unsorted) raw arrivals."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_rps`` requests per second."""

    def __init__(self, rate_rps: float, mix: WorkloadMix) -> None:
        if rate_rps <= 0:
            raise ServingError(f"arrival rate must be positive, got {rate_rps}")
        self.rate_rps = rate_rps
        self.mix = mix

    def _generate(self, duration_s, rng, start_s, start_id):
        """Exponential inter-arrival times, workloads sampled per request."""
        requests = []
        clock = start_s
        horizon = start_s + duration_s
        while True:
            clock += rng.exponential(1.0 / self.rate_rps)
            if clock >= horizon:
                return requests
            requests.append(
                Request(start_id + len(requests), self.mix.sample(rng), clock)
            )


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (normal/burst).

    The process alternates between a *normal* state and a *burst* state;
    dwell times in each state are exponential with the configured means, and
    within a state arrivals are Poisson at that state's rate.  This is the
    standard minimal model of bursty request traffic.
    """

    def __init__(
        self,
        normal_rate_rps: float,
        burst_rate_rps: float,
        mix: WorkloadMix,
        mean_normal_s: float = 1.0,
        mean_burst_s: float = 0.2,
    ) -> None:
        if normal_rate_rps <= 0 or burst_rate_rps <= 0:
            raise ServingError("MMPP state rates must be positive")
        if mean_normal_s <= 0 or mean_burst_s <= 0:
            raise ServingError("MMPP mean dwell times must be positive")
        self.normal_rate_rps = normal_rate_rps
        self.burst_rate_rps = burst_rate_rps
        self.mean_normal_s = mean_normal_s
        self.mean_burst_s = mean_burst_s
        self.mix = mix

    def _generate(self, duration_s, rng, start_s, start_id):
        """Two-state MMPP: alternate normal/burst dwells, Poisson within."""
        requests = []
        clock = start_s
        horizon = start_s + duration_s
        in_burst = False
        while clock < horizon:
            mean_dwell = self.mean_burst_s if in_burst else self.mean_normal_s
            rate = self.burst_rate_rps if in_burst else self.normal_rate_rps
            dwell_end = min(horizon, clock + rng.exponential(mean_dwell))
            arrival = clock
            while True:
                arrival += rng.exponential(1.0 / rate)
                if arrival >= dwell_end:
                    break
                requests.append(
                    Request(start_id + len(requests), self.mix.sample(rng), arrival)
                )
            clock = dwell_end
            in_burst = not in_burst
        return requests


class TraceArrivals(ArrivalProcess):
    """Replay an explicit ``(arrival_s, workload)`` trace.

    Entries outside the generation window are dropped; the seed is unused
    (replay is deterministic by construction).
    """

    def __init__(self, trace: Sequence[tuple[float, str]]) -> None:
        if not trace:
            raise ServingError("trace must contain at least one entry")
        unknown = {workload for _, workload in trace} - set(WORKLOAD_BUILDERS)
        if unknown:
            raise ServingError(
                f"trace names unknown workloads {sorted(unknown)}; "
                f"known: {sorted(WORKLOAD_BUILDERS)}"
            )
        self.trace = tuple(
            sorted(((float(t), workload) for t, workload in trace))
        )

    def _generate(self, duration_s, rng, start_s, start_id):
        """Replay the trace entries that fall inside the window."""
        horizon = start_s + duration_s
        return [
            Request(start_id + index, workload, arrival)
            for index, (arrival, workload) in enumerate(
                (t, w) for t, w in self.trace if start_s <= t < horizon
            )
        ]


def concatenate_segments(
    segments: Sequence[tuple[ArrivalProcess, float]], seed: int = 0
) -> list[Request]:
    """Chain arrival processes back to back (e.g. a diurnal low/high/low day).

    Each segment is ``(process, duration_s)``; segment ``i`` starts where
    segment ``i - 1`` ended and gets its own sub-seed so streams stay
    deterministic yet uncorrelated.
    """
    if not segments:
        raise ServingError("concatenate_segments needs at least one segment")
    requests: list[Request] = []
    offset = 0.0
    for index, (process, duration_s) in enumerate(segments):
        requests.extend(
            process.generate(
                duration_s,
                seed=seed * SEED_STRIDE + index,
                start_s=offset,
                start_id=len(requests),
            )
        )
        offset += duration_s
    return requests
