"""Serving metrics: tail latency, goodput under SLO, saturation summaries.

All functions consume the plain :class:`~repro.serving.simulator.ServingResult`
/ :class:`~repro.serving.simulator.RequestRecord` structures and return JSON
-clean dictionaries, so experiment drivers can hand them straight to the
result engine and the ``repro serve`` CLI can print them unmodified.
Latencies are reported in milliseconds (the natural scale of the modelled
chip), rates in requests per second.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ServingError
from repro.serving.fleet import DEFAULT_BACKEND
from repro.serving.simulator import RequestRecord, ServingResult

__all__ = [
    "percentile",
    "latency_summary",
    "queueing_summary",
    "goodput",
    "summarize_result",
    "per_workload_summary",
    "per_backend_summary",
    "saturation_summary",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation) of ``values``."""
    if not 0 <= q <= 100:
        raise ServingError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        raise ServingError("cannot take a percentile of no values")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _ms(seconds: float) -> float:
    """Seconds to milliseconds (the tables' latency unit)."""
    return seconds * 1e3


def latency_summary(records: Sequence[RequestRecord]) -> dict:
    """p50/p95/p99/mean/max end-to-end latency of ``records`` (ms)."""
    if not records:
        raise ServingError("latency_summary needs at least one record")
    latencies = [record.latency_s for record in records]
    return {
        "count": len(records),
        "p50_ms": round(_ms(percentile(latencies, 50)), 4),
        "p95_ms": round(_ms(percentile(latencies, 95)), 4),
        "p99_ms": round(_ms(percentile(latencies, 99)), 4),
        "mean_ms": round(_ms(float(np.mean(latencies))), 4),
        "max_ms": round(_ms(max(latencies)), 4),
    }


def queueing_summary(records: Sequence[RequestRecord]) -> dict:
    """Mean and tail queueing delay of ``records`` (ms)."""
    if not records:
        raise ServingError("queueing_summary needs at least one record")
    delays = [record.queue_delay_s for record in records]
    return {
        "mean_queue_ms": round(_ms(float(np.mean(delays))), 4),
        "p99_queue_ms": round(_ms(percentile(delays, 99)), 4),
    }


def goodput(
    records: Sequence[RequestRecord], slo_s: float, span_s: float
) -> dict:
    """SLO attainment and goodput (SLO-met requests per second)."""
    if slo_s <= 0:
        raise ServingError(f"slo_s must be positive, got {slo_s}")
    if not records:
        raise ServingError("goodput needs at least one record")
    met = sum(1 for record in records if record.latency_s <= slo_s)
    return {
        "slo_ms": round(_ms(slo_s), 4),
        "slo_attainment": round(met / len(records), 4),
        "goodput_rps": round(met / span_s, 2) if span_s > 0 else 0.0,
    }


def summarize_result(
    result: ServingResult,
    slo_s: float,
    offered_rps: float | None = None,
) -> dict:
    """One flat row summarising a serving run (the drivers' row format)."""
    row = {
        "requests": result.num_requests,
        "num_chips": result.num_chips,
        "throughput_rps": round(result.throughput_rps, 2),
        **latency_summary(result.records),
        **queueing_summary(result.records),
        **goodput(result.records, slo_s, result.span_s),
        "mean_batch": round(result.mean_batch_size, 3),
        "utilization": round(result.utilization, 4),
        "energy_mj_per_request": round(
            result.energy_joules / result.num_requests * 1e3, 4
        ),
    }
    row.pop("count")
    if offered_rps is not None:
        row["offered_rps"] = round(offered_rps, 2)
    return row


def per_workload_summary(result: ServingResult, slo_s: float) -> list[dict]:
    """Latency/goodput rows broken down by workload."""
    rows = []
    by_workload: dict[str, list[RequestRecord]] = {}
    for record in result.records:
        by_workload.setdefault(record.workload, []).append(record)
    for workload in sorted(by_workload):
        records = by_workload[workload]
        rows.append(
            {
                "workload": workload,
                **latency_summary(records),
                **goodput(records, slo_s, result.span_s),
            }
        )
    return rows


def per_backend_summary(result: ServingResult, slo_s: float) -> list[dict]:
    """Utilization/latency/goodput rows broken down by chip backend.

    The key observability surface of heterogeneous fleets: one row per
    distinct backend (sorted by name), aggregating its chips.  Backends
    whose chips served nothing still get a row — an idle pool is exactly
    what affinity-routing debugging needs to see — with zeroed latency
    fields.
    """
    backends = result.chip_backends or (DEFAULT_BACKEND,) * result.num_chips
    chips_by_backend: dict[str, list[int]] = {}
    for chip, backend in enumerate(backends):
        chips_by_backend.setdefault(backend, []).append(chip)
    records_by_chip: dict[int, list[RequestRecord]] = {}
    for record in result.records:
        records_by_chip.setdefault(record.chip, []).append(record)
    rows = []
    for backend in sorted(chips_by_backend):
        chips = chips_by_backend[backend]
        records = [
            record for chip in chips for record in records_by_chip.get(chip, [])
        ]
        busy_s = sum(result.chip_busy_s[chip] for chip in chips)
        utilization = (
            min(1.0, busy_s / (result.span_s * len(chips)))
            if result.span_s > 0
            else 0.0
        )
        row = {
            "backend": backend,
            "chips": len(chips),
            "requests": len(records),
            "request_share": round(len(records) / result.num_requests, 4)
            if result.num_requests
            else 0.0,
            "utilization": round(utilization, 4),
        }
        if records:
            latency = latency_summary(records)
            latency.pop("count")
            row.update(latency)
            row.update(goodput(records, slo_s, result.span_s))
        else:
            row.update(_zeroed_latency_goodput(slo_s))
        rows.append(row)
    return rows


def _zeroed_latency_goodput(slo_s: float) -> dict:
    """Zero-valued latency/goodput fields for a backend that served nothing.

    Built by running the real summary functions on a synthetic record so
    the key set can never drift from the served-backend rows.
    """
    placeholder = RequestRecord(
        request_id=-1,
        workload="",
        chip=-1,
        arrival_s=0.0,
        dispatch_s=0.0,
        finish_s=0.0,
        batch_size=0,
    )
    template = {
        **latency_summary([placeholder]),
        **goodput([placeholder], slo_s, 0.0),
    }
    template.pop("count")
    zeroed = {key: 0.0 for key in template}
    zeroed["slo_ms"] = template["slo_ms"]
    return zeroed


def saturation_summary(
    rows: Sequence[dict],
    load_key: str = "load",
    latency_key: str = "p99_ms",
    knee_factor: float = 3.0,
) -> dict:
    """Find the saturation knee in a latency-vs-load sweep.

    Given per-load-point rows sorted by ``load_key``, the knee is the first
    load whose tail latency exceeds ``knee_factor`` times the lightest
    point's — the operating region a capacity planner must stay below.
    """
    if not rows:
        raise ServingError("saturation_summary needs at least one sweep row")
    ordered = sorted(rows, key=lambda row: row[load_key])
    base = ordered[0][latency_key]
    knee = None
    for row in ordered:
        if row[latency_key] > knee_factor * base:
            knee = row[load_key]
            break
    return {
        "base_load": ordered[0][load_key],
        "base_latency_ms": base,
        "peak_load": ordered[-1][load_key],
        "peak_latency_ms": ordered[-1][latency_key],
        "knee_load": knee,
        "knee_factor": knee_factor,
    }
