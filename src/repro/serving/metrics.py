"""Serving metrics: tail latency, goodput under SLO, saturation summaries.

All functions consume the plain :class:`~repro.serving.simulator.ServingResult`
/ :class:`~repro.serving.simulator.RequestRecord` structures — or the
array-native :class:`~repro.serving.simulator.StreamedServingResult` a
streamed trace replay produces — and return JSON-clean dictionaries, so
experiment drivers can hand them straight to the result engine and the
``repro serve`` CLI can print them unmodified.  The distribution math runs
on NumPy arrays either way (a full-trace result exports its records as
arrays), which keeps summarizing a million-request replay vectorized.
Latencies are reported in milliseconds (the natural scale of the modelled
chip), rates in requests per second.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ServingError
from repro.serving.fleet import DEFAULT_BACKEND
from repro.serving.simulator import (
    RequestRecord,
    ServingResult,
    StreamedServingResult,
)

__all__ = [
    "percentile",
    "latency_summary",
    "queueing_summary",
    "goodput",
    "summarize_result",
    "resilience_metrics",
    "per_workload_summary",
    "per_backend_summary",
    "saturation_summary",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation) of ``values``."""
    if not 0 <= q <= 100:
        raise ServingError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        raise ServingError("cannot take a percentile of no values")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _ms(seconds: float) -> float:
    """Seconds to milliseconds (the tables' latency unit)."""
    return seconds * 1e3


def _latency_summary_values(latencies: np.ndarray) -> dict:
    """p50/p95/p99/mean/max of a latency array (ms)."""
    if latencies.size == 0:
        raise ServingError("latency_summary needs at least one record")
    return {
        "count": int(latencies.size),
        "p50_ms": round(_ms(float(np.percentile(latencies, 50))), 4),
        "p95_ms": round(_ms(float(np.percentile(latencies, 95))), 4),
        "p99_ms": round(_ms(float(np.percentile(latencies, 99))), 4),
        "mean_ms": round(_ms(float(np.mean(latencies))), 4),
        "max_ms": round(_ms(float(latencies.max())), 4),
    }


def latency_summary(records: Sequence[RequestRecord]) -> dict:
    """p50/p95/p99/mean/max end-to-end latency of ``records`` (ms)."""
    if not len(records):
        raise ServingError("latency_summary needs at least one record")
    return _latency_summary_values(
        np.array([record.latency_s for record in records], dtype=float)
    )


def _queueing_summary_values(delays: np.ndarray) -> dict:
    """Mean and tail queueing delay of a delay array (ms)."""
    if delays.size == 0:
        raise ServingError("queueing_summary needs at least one record")
    return {
        "mean_queue_ms": round(_ms(float(np.mean(delays))), 4),
        "p99_queue_ms": round(_ms(float(np.percentile(delays, 99))), 4),
    }


def queueing_summary(records: Sequence[RequestRecord]) -> dict:
    """Mean and tail queueing delay of ``records`` (ms)."""
    if not len(records):
        raise ServingError("queueing_summary needs at least one record")
    return _queueing_summary_values(
        np.array([record.queue_delay_s for record in records], dtype=float)
    )


def _goodput_values(latencies: np.ndarray, slo_s: float, span_s: float) -> dict:
    """SLO attainment and goodput from a latency array."""
    if slo_s <= 0:
        raise ServingError(f"slo_s must be positive, got {slo_s}")
    if latencies.size == 0:
        raise ServingError("goodput needs at least one record")
    met = int(np.count_nonzero(latencies <= slo_s))
    return {
        "slo_ms": round(_ms(slo_s), 4),
        "slo_attainment": round(met / latencies.size, 4),
        "goodput_rps": round(met / span_s, 2) if span_s > 0 else 0.0,
    }


def goodput(
    records: Sequence[RequestRecord], slo_s: float, span_s: float
) -> dict:
    """SLO attainment and goodput (SLO-met requests per second)."""
    if slo_s <= 0:
        raise ServingError(f"slo_s must be positive, got {slo_s}")
    if not len(records):
        raise ServingError("goodput needs at least one record")
    return _goodput_values(
        np.array([record.latency_s for record in records], dtype=float),
        slo_s,
        span_s,
    )


def summarize_result(
    result: ServingResult | StreamedServingResult,
    slo_s: float,
    offered_rps: float | None = None,
) -> dict:
    """One flat row summarising a serving run (the drivers' row format)."""
    latencies = result.latency_values()
    row = {
        "requests": result.num_requests,
        "num_chips": result.num_chips,
        "throughput_rps": round(result.throughput_rps, 2),
        **_latency_summary_values(latencies),
        **_queueing_summary_values(result.queue_delay_values()),
        **_goodput_values(latencies, slo_s, result.span_s),
        "mean_batch": round(result.mean_batch_size, 3),
        "utilization": round(result.utilization, 4),
        "energy_mj_per_request": round(
            result.energy_joules / result.num_requests * 1e3, 4
        ),
    }
    row.pop("count")
    if offered_rps is not None:
        row["offered_rps"] = round(offered_rps, 2)
    if result.incidents or result.requests_lost or result.requests_shed:
        # Present only on chaos runs, so chaos-free rows (and their golden
        # tables) stay byte-identical to the pre-chaos layer.
        row["requests_arrived"] = result.requests_arrived
        row["requests_lost"] = result.requests_lost
        row["requests_shed"] = result.requests_shed
    return row


def resilience_metrics(
    result: ServingResult | StreamedServingResult,
    window_s: float = 0.05,
    tolerance: float = 1.2,
) -> dict:
    """Resilience accounting of a chaos run: losses, tail, recovery time.

    Consumes the result's realized incident log plus (when available) its
    per-request records, and reports:

    * the conservation counters — ``requests_arrived`` splits exactly into
      completed, lost (in-flight batch killed) and shed (queue dropped),
    * ``pre_incident_p95_ms`` — p95 latency of requests that *finished*
      before the first incident began (the healthy baseline),
    * ``during_p95_ms`` / ``tail_inflation_x`` — p95 of requests arriving
      between the first and last incident event, as a ratio to baseline,
    * ``recovery_time_s`` — time from the last incident event until the
      first ``window_s``-wide window whose completion p95 is back within
      ``tolerance`` of the baseline (an empty window — nothing completing,
      so no elevated-tail evidence — also qualifies); ``inf`` when there
      is a baseline but the tail never re-converges before the run's
      horizon (a never-recovering outage), ``None`` when there is no
      pre-incident baseline to converge to.

    Percentile fields need per-request timestamps and are therefore
    ``None`` for streamed results (which keep only latency arrays).
    """
    if window_s <= 0:
        raise ServingError(f"window_s must be positive, got {window_s}")
    if tolerance < 1.0:
        raise ServingError(f"tolerance must be >= 1.0, got {tolerance}")
    out = {
        "incidents": len(result.incidents),
        "requests_arrived": result.requests_arrived,
        "requests_completed": result.num_requests,
        "requests_lost": result.requests_lost,
        "requests_shed": result.requests_shed,
        "pre_incident_p95_ms": None,
        "during_p95_ms": None,
        "tail_inflation_x": None,
        "recovery_time_s": None,
    }
    records = getattr(result, "records", None)
    if not result.incidents or not records:
        return out
    first_s = min(event["at_s"] for event in result.incidents)
    last_s = max(event["at_s"] for event in result.incidents)
    arrivals = np.array([record.arrival_s for record in records], dtype=float)
    finishes = np.array([record.finish_s for record in records], dtype=float)
    latencies = finishes - arrivals
    pre = latencies[finishes <= first_s]
    if pre.size:
        pre_p95 = float(np.percentile(pre, 95))
        out["pre_incident_p95_ms"] = round(_ms(pre_p95), 4)
    during = latencies[(arrivals >= first_s) & (arrivals <= last_s)]
    if during.size:
        during_p95 = float(np.percentile(during, 95))
        out["during_p95_ms"] = round(_ms(during_p95), 4)
        if pre.size and pre_p95 > 0:
            out["tail_inflation_x"] = round(during_p95 / pre_p95, 4)
    if pre.size:
        start = last_s
        while start < result.horizon_s:
            window = latencies[(finishes > start)
                               & (finishes <= start + window_s)]
            if window.size == 0 or (
                float(np.percentile(window, 95)) <= tolerance * pre_p95
            ):
                out["recovery_time_s"] = round(
                    start + window_s - last_s, 6
                )
                break
            start += window_s
        else:
            # There was a healthy baseline but the tail never re-converged
            # before the horizon (e.g. an infinite-duration outage):
            # distinguish "never recovered" from "no baseline to judge by".
            out["recovery_time_s"] = float("inf")
    return out


def per_workload_summary(
    result: ServingResult | StreamedServingResult, slo_s: float
) -> list[dict]:
    """Latency/goodput rows broken down by workload."""
    rows = []
    by_workload = result.workload_latency_values()
    for workload in sorted(by_workload):
        latencies = by_workload[workload]
        if latencies.size == 0:
            continue  # declared in the stream's universe but never arrived
        rows.append(
            {
                "workload": workload,
                **_latency_summary_values(latencies),
                **_goodput_values(latencies, slo_s, result.span_s),
            }
        )
    return rows


def per_backend_summary(
    result: ServingResult | StreamedServingResult, slo_s: float
) -> list[dict]:
    """Utilization/latency/goodput rows broken down by chip backend.

    The key observability surface of heterogeneous fleets: one row per
    distinct backend (sorted by name), aggregating its chips.  Backends
    whose chips served nothing still get a row — an idle pool is exactly
    what affinity-routing debugging needs to see — with zeroed latency
    fields.
    """
    backends = result.chip_backends or (DEFAULT_BACKEND,) * result.num_chips
    chips_by_backend: dict[str, list[int]] = {}
    for chip, backend in enumerate(backends):
        chips_by_backend.setdefault(backend, []).append(chip)
    if isinstance(result, StreamedServingResult):
        latencies_of_chip = list(result.chip_latency_s)
    else:
        grouped: dict[int, list[float]] = {}
        for record in result.records:
            grouped.setdefault(record.chip, []).append(record.latency_s)
        latencies_of_chip = [
            np.array(grouped.get(chip, ()), dtype=float)
            for chip in range(result.num_chips)
        ]
    rows = []
    for backend in sorted(chips_by_backend):
        chips = chips_by_backend[backend]
        latencies = np.concatenate([latencies_of_chip[chip] for chip in chips])
        busy_s = sum(result.chip_busy_s[chip] for chip in chips)
        utilization = (
            min(1.0, busy_s / (result.span_s * len(chips)))
            if result.span_s > 0
            else 0.0
        )
        row = {
            "backend": backend,
            "chips": len(chips),
            "requests": int(latencies.size),
            "request_share": round(latencies.size / result.num_requests, 4)
            if result.num_requests
            else 0.0,
            "utilization": round(utilization, 4),
        }
        if latencies.size:
            summary = _latency_summary_values(latencies)
            summary.pop("count")
            row.update(summary)
            row.update(_goodput_values(latencies, slo_s, result.span_s))
        else:
            row.update(_zeroed_latency_goodput(slo_s))
        rows.append(row)
    return rows


def _zeroed_latency_goodput(slo_s: float) -> dict:
    """Zero-valued latency/goodput fields for a backend that served nothing.

    Built by running the real summary functions on a synthetic record so
    the key set can never drift from the served-backend rows.
    """
    placeholder = RequestRecord(
        request_id=-1,
        workload="",
        chip=-1,
        arrival_s=0.0,
        dispatch_s=0.0,
        finish_s=0.0,
        batch_size=0,
    )
    template = {
        **latency_summary([placeholder]),
        **goodput([placeholder], slo_s, 0.0),
    }
    template.pop("count")
    zeroed = {key: 0.0 for key in template}
    zeroed["slo_ms"] = template["slo_ms"]
    return zeroed


def saturation_summary(
    rows: Sequence[dict],
    load_key: str = "load",
    latency_key: str = "p99_ms",
    knee_factor: float = 3.0,
) -> dict:
    """Find the saturation knee in a latency-vs-load sweep.

    Given per-load-point rows sorted by ``load_key``, the knee is the first
    load whose tail latency exceeds ``knee_factor`` times the lightest
    point's — the operating region a capacity planner must stay below.
    """
    if not rows:
        raise ServingError("saturation_summary needs at least one sweep row")
    ordered = sorted(rows, key=lambda row: row[load_key])
    base = ordered[0][latency_key]
    knee = None
    for row in ordered:
        if row[latency_key] > knee_factor * base:
            knee = row[load_key]
            break
    return {
        "base_load": ordered[0][load_key],
        "base_latency_ms": base,
        "peak_load": ordered[-1][load_key],
        "peak_latency_ms": ordered[-1][latency_key],
        "knee_load": knee,
        "knee_factor": knee_factor,
    }
