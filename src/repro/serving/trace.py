"""Recordable, replayable request traces for the serving simulator.

A *request trace* is a JSONL file: one fixed-width header line of
metadata, then one compact ``[request_id, workload, arrival_s]`` line per
request, sorted by ``(arrival_s, request_id)`` with strictly increasing
ids.  The format is deliberately boring — greppable, diffable, appendable
— and built for scale in both directions:

* **Recording** streams requests to disk as they are produced (a recorder
  over a long arrival process never holds the full stream), rewriting the
  space-padded header in place once the totals are known.
* **Replaying** streams the file back as columnar chunks
  (:meth:`RequestTrace.iter_chunks`), which
  :meth:`~repro.serving.simulator.ServingSimulator.run_stream` consumes in
  bounded memory — a multi-million-request trace never materializes as one
  Python list.

Determinism: a trace pins the exact arrival stream, so replaying it
through the deterministic event core reproduces the identical result on
every run — the serving analogue of the repo-wide "same seed, same
numbers" rule, and the workload-side half of what trace-driven cluster
evaluation needs.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServingError
from repro.serving.simulator import (
    DEFAULT_CHUNK_SIZE,
    ServingSimulator,
    StreamedServingResult,
)
from repro.serving.traffic import SEED_STRIDE, ArrivalProcess, Request
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceInfo",
    "RequestTrace",
    "write_trace",
    "record_process",
    "record_scenario",
    "replay_trace",
]

#: the ``format`` field every trace header carries
TRACE_FORMAT = "cogsys-request-trace"

#: current trace schema version
TRACE_VERSION = 1

#: on-disk width of the (space-padded) header line, newline included —
#: fixed so a streaming writer can rewrite the totals in place afterwards
_HEADER_WIDTH = 512



@dataclass(frozen=True)
class TraceInfo:
    """Parsed trace header: identity, size and provenance of a trace."""

    path: str
    version: int
    num_requests: int
    workloads: tuple[str, ...]
    duration_s: float
    source: Mapping[str, object]


def _pad_header(payload: dict) -> bytes:
    """The header line, space-padded to its fixed on-disk width."""
    line = json.dumps(payload, sort_keys=True)
    if len(line) >= _HEADER_WIDTH:
        raise ServingError(
            f"trace header exceeds {_HEADER_WIDTH} bytes; trim the source "
            "metadata"
        )
    return (line + " " * (_HEADER_WIDTH - 1 - len(line)) + "\n").encode("ascii")


def write_trace(
    path: str | Path,
    requests: Iterable[Request],
    source: Mapping[str, object] | None = None,
) -> TraceInfo:
    """Stream ``requests`` to a trace file at ``path``.

    ``requests`` must arrive sorted by ``(arrival_s, request_id)`` with
    strictly increasing ids (every generator in
    :mod:`repro.serving.traffic` satisfies this); the input is only
    iterated once and never buffered, so recording scales to arbitrarily
    long streams.  ``source`` is free-form provenance stored in the header
    (e.g. the scenario name and seed that produced the stream).
    """
    path = Path(path)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "num_requests": 0,
        "duration_s": 0.0,
        "workloads": [],
        "source": dict(source or {}),
    }
    count = 0
    last_arrival = 0.0
    prev_key = (-float("inf"), -1)
    workloads: set[str] = set()
    with path.open("wb") as handle:
        handle.write(_pad_header(header))
        for request in requests:
            key = (request.arrival_s, request.request_id)
            if key <= prev_key or request.request_id <= prev_key[1]:
                raise ServingError(
                    "trace recording requires requests sorted by "
                    "(arrival_s, request_id) with strictly increasing ids; "
                    f"violated near request {request.request_id}"
                )
            prev_key = key
            workloads.add(request.workload)
            handle.write(
                json.dumps(
                    [request.request_id, request.workload, request.arrival_s]
                ).encode("ascii")
            )
            handle.write(b"\n")
            count += 1
            last_arrival = request.arrival_s
        if not count:
            raise ServingError("refusing to record an empty request trace")
        header.update(
            num_requests=count,
            duration_s=last_arrival,
            workloads=sorted(workloads),
        )
        handle.seek(0)
        handle.write(_pad_header(header))
    return read_header(path)


def read_header(path: str | Path) -> TraceInfo:
    """Parse and validate the header line of the trace at ``path``."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            raw = handle.read(_HEADER_WIDTH)
    except OSError as error:
        raise ServingError(f"cannot read trace '{path}': {error}") from None
    try:
        header = json.loads(raw.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServingError(
            f"'{path}' is not a request trace (unparseable header line)"
        ) from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ServingError(
            f"'{path}' is not a request trace (missing '{TRACE_FORMAT}' marker)"
        )
    if header.get("version") != TRACE_VERSION:
        raise ServingError(
            f"trace '{path}' has version {header.get('version')}; this build "
            f"reads version {TRACE_VERSION}"
        )
    workloads = tuple(header.get("workloads") or ())
    unknown = set(workloads) - set(WORKLOAD_BUILDERS)
    if unknown:
        raise ServingError(
            f"trace '{path}' names unknown workloads {sorted(unknown)}; "
            f"known: {sorted(WORKLOAD_BUILDERS)}"
        )
    num_requests = header.get("num_requests")
    if not isinstance(num_requests, int) or num_requests < 1 or not workloads:
        raise ServingError(
            f"trace '{path}' header lacks totals — was the recording "
            "interrupted?"
        )
    return TraceInfo(
        path=str(path),
        version=TRACE_VERSION,
        num_requests=num_requests,
        workloads=workloads,
        duration_s=float(header.get("duration_s", 0.0)),
        source=dict(header.get("source") or {}),
    )


class RequestTrace:
    """Streaming handle on a recorded trace file."""

    def __init__(self, path: str | Path) -> None:
        self.info = read_header(path)
        self.path = Path(path)

    @property
    def num_requests(self) -> int:
        """Requests recorded in the trace."""
        return self.info.num_requests

    @property
    def workloads(self) -> tuple[str, ...]:
        """Sorted workload universe of the trace."""
        return self.info.workloads

    def iter_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[tuple[list[float], list[str], list[int]]]:
        """Yield ``(arrivals, workloads, request_ids)`` columnar chunks.

        Lines are parsed and validated on the fly — sortedness, strictly
        increasing ids, known workloads, non-negative arrivals — and at
        most ``chunk_size`` requests are in memory at once.  The header's
        ``num_requests`` must match the line count, so a truncated file
        fails loudly instead of replaying silently short.
        """
        if chunk_size < 1:
            raise ServingError(f"chunk_size must be positive, got {chunk_size}")
        info = self.info
        known = set(info.workloads)
        loads = json.loads
        count = 0
        prev_arrival = -float("inf")
        prev_id = -1
        arrivals: list[float] = []
        names: list[str] = []
        ids: list[int] = []
        with self.path.open("r", encoding="ascii") as handle:
            handle.read(_HEADER_WIDTH)
            for line in handle:
                if not line.strip():
                    continue
                try:
                    request_id, workload, arrival_s = loads(line)
                except (json.JSONDecodeError, ValueError):
                    raise ServingError(
                        f"trace '{self.path}' has a malformed line near "
                        f"request {count}"
                    ) from None
                if workload not in known:
                    raise ServingError(
                        f"trace '{self.path}' line names workload "
                        f"'{workload}' missing from its header"
                    )
                if arrival_s < 0:
                    raise ServingError(
                        f"trace '{self.path}' has a negative arrival at "
                        f"request {request_id}"
                    )
                if (
                    arrival_s < prev_arrival
                    or (arrival_s == prev_arrival and request_id <= prev_id)
                    or request_id <= prev_id
                ):
                    raise ServingError(
                        f"trace '{self.path}' is not sorted by "
                        "(arrival_s, request_id) with strictly increasing "
                        f"ids near request {request_id}"
                    )
                prev_arrival = arrival_s
                prev_id = request_id
                arrivals.append(arrival_s)
                names.append(workload)
                ids.append(request_id)
                count += 1
                if len(arrivals) >= chunk_size:
                    yield arrivals, names, ids
                    arrivals, names, ids = [], [], []
        if arrivals:
            yield arrivals, names, ids
        if count != info.num_requests:
            raise ServingError(
                f"trace '{self.path}' is truncated: header promises "
                f"{info.num_requests} requests, found {count}"
            )

    def iter_requests(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[Request]:
        """Yield :class:`Request` objects one by one (streaming)."""
        for arrivals, names, ids in self.iter_chunks(chunk_size):
            for arrival_s, workload, request_id in zip(arrivals, names, ids):
                yield Request(request_id, workload, arrival_s)

    def requests(self) -> list[Request]:
        """Materialize the whole trace as a request list.

        Convenience for small traces (full-record runs, round-trip tests);
        stick to :meth:`iter_chunks` + ``run_stream`` for very large ones.
        """
        return list(self.iter_requests())


def record_process(
    path: str | Path,
    process: ArrivalProcess,
    duration_s: float,
    seed: int = 0,
    window_s: float | None = None,
    source: Mapping[str, object] | None = None,
) -> TraceInfo:
    """Record ``process``'s arrivals over ``duration_s`` to a trace file.

    With ``window_s`` the stream is generated in consecutive time windows
    (window ``k`` seeded ``seed * 10_007 + k``, ids continuing across
    windows), so recording a multi-million-request trace needs memory for
    one window only.  Without it the process generates in one shot with
    ``seed`` — byte-identical to serving the same generator directly.
    """
    if duration_s <= 0:
        raise ServingError(f"duration must be positive, got {duration_s}")
    provenance = {
        "process": type(process).__name__,
        "duration_s": duration_s,
        "seed": seed,
        **({"window_s": window_s} if window_s is not None else {}),
        **dict(source or {}),
    }

    if window_s is None:
        stream: Iterable[Request] = process.generate(duration_s, seed=seed)
    else:
        if window_s <= 0:
            raise ServingError(f"window_s must be positive, got {window_s}")

        def windows() -> Iterator[Request]:
            offset = 0.0
            start_id = 0
            window = 0
            while offset < duration_s:
                span = min(window_s, duration_s - offset)
                generated = process.generate(
                    span,
                    seed=seed * SEED_STRIDE + window,
                    start_s=offset,
                    start_id=start_id,
                )
                yield from generated
                start_id += len(generated)
                offset += span
                window += 1

        stream = windows()
    return write_trace(path, stream, source=provenance)


def record_scenario(
    path: str | Path,
    name: str,
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
) -> TraceInfo:
    """Record a scenario preset's traffic to a trace file.

    The recorded stream is exactly what ``run_scenario`` with the same
    parameters would serve, so replaying the trace reproduces the
    scenario's results.
    """
    from repro.serving.scenarios import get_scenario

    if load_scale <= 0 or duration_scale <= 0:
        raise ServingError("load_scale and duration_scale must be positive")
    scenario = get_scenario(name)
    requests = scenario.traffic(seed, load_scale, duration_scale)
    if not requests:
        raise ServingError(
            f"scenario '{name}' generated no requests "
            f"(seed={seed}, load_scale={load_scale}, "
            f"duration_scale={duration_scale})"
        )
    return write_trace(
        path,
        requests,
        source={
            "scenario": name,
            "seed": seed,
            "load_scale": load_scale,
            "duration_scale": duration_scale,
        },
    )


def replay_trace(
    path: str | Path,
    num_chips: int | None = None,
    router: str = "jsq",
    policy: str = "continuous",
    backends: Sequence[str] = (),
    service_model=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    shards: int = 1,
    shard_workers: int | None = None,
    telemetry_window_s: float | None = None,
) -> StreamedServingResult:
    """Stream the trace at ``path`` through the serving simulator.

    Fleet defaults mirror the ``steady`` preset (2 chips, join-shortest-
    queue, continuous batching); ``backends`` cycles registry backend
    names across the fleet exactly like ``repro serve --backend``.  The
    replay is deterministic: the same trace and fleet configuration always
    produce the identical result.  ``shards > 1`` splits router-independent
    sub-fleets into per-shard simulations (see
    :mod:`repro.serving.sharding`); fleets that cannot shard fall back to
    the single-shard core and record why in the result's provenance.
    ``telemetry_window_s`` attaches the windowed time series
    (:mod:`repro.serving.telemetry`) to the result.
    """
    from repro.serving.batching import build_policy
    from repro.serving.fleet import Fleet

    trace = RequestTrace(path)
    backend_tuple = tuple(backends or ())
    if num_chips is not None:
        chips = num_chips
    elif backend_tuple:
        chips = len(backend_tuple)
    else:
        chips = 2
    fleet = Fleet(num_chips=chips, router=router, backends=backend_tuple)
    simulator = ServingSimulator(
        service_model=service_model,
        fleet=fleet,
        batching_policy=build_policy(policy),
    )
    return simulator.run_stream(
        trace.iter_chunks(chunk_size),
        workloads=trace.workloads,
        provenance={
            "trace": trace.path.name,
            "trace_requests": trace.num_requests,
            "trace_source": dict(trace.info.source),
        },
        shards=shards,
        shard_workers=shard_workers,
        telemetry_window_s=telemetry_window_s,
    )
