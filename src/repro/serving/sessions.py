"""Closed-loop session traffic: users whose offered load reacts to latency.

Every preset scenario so far is *open loop* — arrivals are generated ahead
of time and keep coming no matter how slow the fleet gets.  Real chat and
agent traffic is closed loop: a user submits a request, reads the answer,
thinks, and only then submits the next turn, so the offered rate falls as
observed latency grows.  This module adds that feedback loop as a traffic
*source* in front of the same routing/batching/service machinery the open
loop uses.

:class:`SessionConfig` describes a fixed population of users, each running
``sessions_per_user`` conversations of ``turns`` requests with exponential
think times between turns and gaps between conversations.
:func:`run_sessions` executes the population against a
:class:`~repro.serving.simulator.ServingSimulator`'s fleet with its own
compact scalar event loop (arrival instants depend on completion instants,
which rules out the pre-sorted-chunk contract of the open-loop core) and
returns an ordinary :class:`~repro.serving.simulator.ServingResult`, so
the whole metrics/telemetry/CLI surface works unchanged.

Determinism: user ``u`` of a run seeded ``s`` draws from
``default_rng(s * SEED_STRIDE + u)`` in a fixed per-user order (start
offset, then workload/think pairs), so the draw sequence — and therefore
the trace, given the fleet — is a pure function of the seed.  Chaos
timelines inject the same fail/straggler semantics as the open loop; a
lost or shed request unblocks its user at the drop instant (the user saw
an error and moves on), keeping conservation over *submitted* requests:
``arrived == completed + lost + shed``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.errors import ServingError
from repro.serving.chaos import OP_FAIL, OP_RECOVER, OP_SLOW_START
from repro.serving.simulator import RequestRecord, ServingResult
from repro.serving.traffic import SEED_STRIDE, Request

__all__ = ["SessionConfig", "run_sessions"]

# Heap event kinds, ordered like the open-loop core at equal instants:
# submissions enqueue first, completions next, wake-ups, then incidents —
# so a batch finishing exactly at a failure instant completes normally.
_SUBMIT, _FREE, _WAKE, _CHAOS = 0, 1, 2, 3


def _normalize_mix(mix: Mapping[str, float]) -> tuple[tuple[str, float], ...]:
    """Sorted ``(name, probability)`` pairs from a weight mapping.

    Unlike :class:`~repro.serving.traffic.WorkloadMix` this does not
    require registered workload builders: a session run serves whatever
    workloads its service model understands (tests use synthetic ones).
    """
    if not mix:
        raise ServingError("session mix must name at least one workload")
    if any(weight < 0 for weight in mix.values()):
        raise ServingError("session mix weights must be non-negative")
    total = float(sum(mix.values()))
    if total <= 0:
        raise ServingError("session mix weights must sum to a positive value")
    return tuple((name, mix[name] / total) for name in sorted(mix))


@dataclass(frozen=True)
class SessionConfig:
    """A fixed closed-loop user population.

    ``users`` independent users each run ``sessions_per_user``
    conversations of ``turns`` requests.  Between turns a user thinks for
    an exponential ``think_time_s`` (mean); between conversations they
    pause for an exponential ``session_gap_s``.  Users come online spread
    uniformly over ``[0, start_spread_s)`` so the population does not
    arrive as one synchronized burst.  ``mix`` weights the workload each
    turn samples.
    """

    users: int
    turns: int = 4
    sessions_per_user: int = 1
    think_time_s: float = 0.02
    session_gap_s: float = 0.05
    start_spread_s: float = 0.5
    mix: tuple[tuple[str, float], ...] = field(
        default_factory=lambda: (("nvsa", 1.0),)
    )

    def __post_init__(self):
        if self.users < 1:
            raise ServingError(f"users must be positive, got {self.users}")
        if self.turns < 1:
            raise ServingError(f"turns must be positive, got {self.turns}")
        if self.sessions_per_user < 1:
            raise ServingError(
                f"sessions_per_user must be positive, "
                f"got {self.sessions_per_user}"
            )
        for name, value in (("think_time_s", self.think_time_s),
                            ("session_gap_s", self.session_gap_s),
                            ("start_spread_s", self.start_spread_s)):
            if not (value >= 0.0 and math.isfinite(value)):
                raise ServingError(
                    f"{name} must be finite and >= 0, got {value}"
                )
        object.__setattr__(self, "mix", _normalize_mix(dict(self.mix)))

    @property
    def total_requests(self) -> int:
        """Requests the population offers if no chip strands a user."""
        return self.users * self.sessions_per_user * self.turns

    def scaled(self, load_scale: float, duration_scale: float
               ) -> "SessionConfig":
        """The population ``repro serve`` knobs map onto.

        ``load_scale`` multiplies the user population and
        ``duration_scale`` the per-user conversation count (both rounded,
        floor one), mirroring what the knobs do to open-loop phases:
        more concurrent demand versus a longer experiment.
        """
        if load_scale <= 0 or duration_scale <= 0:
            raise ServingError("load_scale and duration_scale must be positive")
        if load_scale == 1.0 and duration_scale == 1.0:
            return self
        return SessionConfig(
            users=max(1, round(self.users * load_scale)),
            turns=self.turns,
            sessions_per_user=max(
                1, round(self.sessions_per_user * duration_scale)
            ),
            think_time_s=self.think_time_s,
            session_gap_s=self.session_gap_s,
            start_spread_s=self.start_spread_s,
            mix=self.mix,
        )

    def to_dict(self) -> dict:
        """JSON-ready provenance form."""
        return {
            "users": self.users,
            "turns": self.turns,
            "sessions_per_user": self.sessions_per_user,
            "think_time_s": self.think_time_s,
            "session_gap_s": self.session_gap_s,
            "start_spread_s": self.start_spread_s,
            "mix": dict(self.mix),
        }


class _User:
    """One closed-loop user: RNG stream plus conversation counters."""

    __slots__ = ("rng", "turns_left", "sessions_left", "names", "probs")

    def __init__(self, rng, config: SessionConfig, names, probs):
        self.rng = rng
        self.turns_left = config.turns
        self.sessions_left = config.sessions_per_user
        self.names = names
        self.probs = probs

    def draw_workload(self) -> str:
        """Sample this turn's workload from the mix."""
        index = self.rng.choice(len(self.names), p=self.probs)
        return self.names[int(index)]


class _Chip:
    """Mutable chip state for the sessions event loop.

    Satisfies the :class:`~repro.serving.fleet.ChipView` protocol the
    routers observe (``chip_id``/``busy``/``inflight``/``queue_depth``).
    """

    __slots__ = ("chip_id", "busy", "inflight", "queue", "busy_s", "served",
                 "pending_wake_s", "current", "down", "factors", "mult")

    def __init__(self, chip_id: int):
        self.chip_id = chip_id
        self.busy = False
        self.inflight = 0
        self.queue: list[Request] = []
        self.busy_s = 0.0
        self.served = 0
        self.pending_wake_s: float | None = None
        #: ``(seq, dispatch_s, finish_s, batch)`` of the in-flight batch
        self.current: tuple | None = None
        self.down = 0
        self.factors: list[float] = []
        self.mult = 1.0

    @property
    def queue_depth(self) -> int:
        return len(self.queue)


def run_sessions(
    simulator,
    config: SessionConfig,
    seed: int = 0,
    telemetry_window_s: float | None = None,
) -> ServingResult:
    """Serve a closed-loop user population on the simulator's fleet.

    Reuses the simulator's fleet router, batching policy, per-chip service
    models and chaos timeline; only the arrival side differs from
    :meth:`~repro.serving.simulator.ServingSimulator.run` (requests are
    born from completions plus think time instead of a pre-generated
    stream).  Returns a full-trace :class:`ServingResult` whose records
    are in request-id (submission) order.
    """
    if not isinstance(config, SessionConfig):
        raise ServingError(
            f"config must be a SessionConfig, got {type(config).__name__}"
        )
    chip_models = simulator._chip_models()
    names = tuple(name for name, _ in config.mix)
    probs = tuple(prob for _, prob in config.mix)
    router = simulator._make_router(names, chip_models)
    policy = simulator.batching_policy
    chips = [_Chip(chip_id) for chip_id in range(simulator.fleet.num_chips)]
    chaos = simulator.chaos

    heap: list[tuple[float, int, int, object]] = []
    seq_counter = 0

    def next_seq() -> int:
        nonlocal seq_counter
        seq_counter += 1
        return seq_counter

    users: list[_User] = []
    for user_id in range(config.users):
        rng = np.random.default_rng(seed * SEED_STRIDE + user_id)
        user = _User(rng, config, names, probs)
        users.append(user)
        start = float(rng.uniform(0.0, config.start_spread_s)) \
            if config.start_spread_s > 0 else 0.0
        heappush(heap, (start, _SUBMIT, next_seq(), user_id))
    if chaos is not None:
        for ev_time, op, ev_chip, ev_mult in chaos.compile(len(chips)):
            heappush(heap, (ev_time, _CHAOS, next_seq(),
                            (op, ev_chip, ev_mult)))

    next_rid = 0
    #: request_id -> user index, for unblocking on completion or drop
    owner: dict[int, int] = {}
    records: list[RequestRecord] = []
    energy = 0.0
    num_batches = 0
    first_arrival: float | None = None
    horizon = 0.0
    lost = 0
    shed = 0
    incident_log: list[dict] = []

    def advance_user(user_id: int, now: float) -> None:
        """Schedule the user's next turn after a completion (or drop)."""
        user = users[user_id]
        user.turns_left -= 1
        if user.turns_left > 0:
            delay = float(user.rng.exponential(config.think_time_s)) \
                if config.think_time_s > 0 else 0.0
            heappush(heap, (now + delay, _SUBMIT, next_seq(), user_id))
            return
        user.sessions_left -= 1
        if user.sessions_left > 0:
            user.turns_left = config.turns
            delay = float(user.rng.exponential(config.session_gap_s)) \
                if config.session_gap_s > 0 else 0.0
            heappush(heap, (now + delay, _SUBMIT, next_seq(), user_id))

    def dispatch(chip: _Chip, now: float) -> None:
        """Launch the policy's batch on an idle, healthy chip."""
        if chip.busy or chip.down or not chip.queue:
            return
        decision = policy.select(chip.queue, now)
        batch = decision.batch
        if batch is None:
            wake = decision.wake_s
            if wake is not None and (
                chip.pending_wake_s is None or wake < chip.pending_wake_s
            ):
                chip.pending_wake_s = wake
                heappush(heap, (wake, _WAKE, next_seq(), chip.chip_id))
            return
        members = set(id(request) for request in batch)
        chip.queue = [
            request for request in chip.queue if id(request) not in members
        ]
        size = len(batch)
        workload = batch[0].workload
        model = chip_models[chip.chip_id]
        service_s = model.service_seconds(workload, size)
        energy_j = model.energy_joules(workload, size)
        if chip.mult != 1.0:
            service_s *= chip.mult
            energy_j *= chip.mult
        finish = now + service_s
        seq = next_seq()
        chip.current = (seq, now, finish, tuple(batch), service_s, energy_j)
        chip.busy = True
        chip.inflight = size
        heappush(heap, (finish, _FREE, seq, chip.chip_id))

    def drop_batch(chip: _Chip, now: float) -> int:
        """Kill the in-flight batch; unblock its users at ``now``."""
        _, _, _, batch, _, _ = chip.current
        chip.current = None
        chip.busy = False
        chip.inflight = 0
        for request in batch:
            advance_user(owner.pop(request.request_id), now)
        return len(batch)

    def drop_queue(chip: _Chip, now: float) -> int:
        """Shed every queued request; unblock their users at ``now``."""
        dropped = len(chip.queue)
        for request in chip.queue:
            advance_user(owner.pop(request.request_id), now)
        chip.queue.clear()
        return dropped

    while heap:
        now, kind, seq, payload = heappop(heap)
        if kind == _SUBMIT:
            user = users[payload]
            workload = user.draw_workload()
            request = Request(next_rid, workload, now)
            owner[next_rid] = payload
            next_rid += 1
            if first_arrival is None:
                first_arrival = now
            chip = chips[router.route(request, chips)]
            chip.queue.append(request)
            dispatch(chip, now)
        elif kind == _FREE:
            chip = chips[payload]
            entry = chip.current
            if entry is None or entry[0] != seq:
                continue  # stale completion of a killed batch
            _, dispatch_s, finish_s, batch, service_s, energy_j = entry
            chip.current = None
            chip.busy = False
            chip.inflight = 0
            if finish_s > horizon:
                horizon = finish_s
            energy += energy_j
            num_batches += 1
            chip.busy_s += service_s
            chip.served += len(batch)
            for request in batch:
                records.append(RequestRecord(
                    request.request_id, request.workload, chip.chip_id,
                    request.arrival_s, dispatch_s, finish_s, len(batch),
                ))
                advance_user(owner.pop(request.request_id), finish_s)
            dispatch(chip, now)
        elif kind == _WAKE:
            chip = chips[payload]
            if chip.pending_wake_s is not None and chip.pending_wake_s <= now:
                chip.pending_wake_s = None
            dispatch(chip, now)
        else:  # _CHAOS
            op, ev_chip, ev_mult = payload
            chip = chips[ev_chip]
            if op == OP_FAIL:
                chip.down += 1
                lost_here = drop_batch(chip, now) if chip.busy else 0
                shed_here = drop_queue(chip, now)
                lost += lost_here
                shed += shed_here
                incident_log.append({
                    "at_s": now, "kind": "fail", "chip": ev_chip,
                    "requests_lost": lost_here, "requests_shed": shed_here,
                })
            elif op == OP_RECOVER:
                chip.down -= 1
                incident_log.append(
                    {"at_s": now, "kind": "recover", "chip": ev_chip}
                )
                if not chip.down:
                    dispatch(chip, now)
            elif op == OP_SLOW_START:
                chip.factors.append(ev_mult)
                chip.mult = math.prod(chip.factors)
                incident_log.append({
                    "at_s": now, "kind": "slow", "chip": ev_chip,
                    "multiplier": ev_mult,
                })
            else:  # OP_SLOW_END
                chip.factors.remove(ev_mult)
                chip.mult = math.prod(chip.factors) if chip.factors else 1.0
                incident_log.append({
                    "at_s": now, "kind": "slow_end", "chip": ev_chip,
                    "multiplier": ev_mult,
                })

    # Requests still queued after the heap drained sit on chips whose
    # failure window never closed; their users never advance (the
    # conversation died with the chip) but conservation over submissions
    # must still hold, so count them shed.
    for chip in chips:
        if chip.queue:
            stranded = len(chip.queue)
            for request in chip.queue:
                owner.pop(request.request_id)
            chip.queue.clear()
            shed += stranded
            incident_log.append({
                "at_s": horizon, "kind": "stranded",
                "chip": chip.chip_id, "requests_shed": stranded,
            })
    if len(records) + lost + shed != next_rid:
        raise ServingError(
            f"session run lost requests: {len(records)} served + {lost} lost "
            f"+ {shed} shed of {next_rid}"
        )

    records.sort(key=lambda record: record.request_id)
    provenance = simulator._provenance(len(records), None)
    provenance["closed_loop"] = {"seed": seed, **config.to_dict()}
    result = ServingResult(
        records=tuple(records),
        num_chips=len(chips),
        chip_busy_s=tuple(chip.busy_s for chip in chips),
        chip_requests=tuple(chip.served for chip in chips),
        energy_joules=energy,
        num_batches=num_batches,
        horizon_s=horizon,
        first_arrival_s=first_arrival or 0.0,
        chip_backends=tuple(simulator.fleet.chip_backends),
        provenance=provenance,
        requests_lost=lost,
        requests_shed=shed,
        incidents=tuple(incident_log),
    )
    # Telemetry derives post-hoc from the completed records (the same
    # path sharded open-loop runs use); dropped requests surface in the
    # resilience metrics rather than the per-window arrival counts.
    return simulator._attach_telemetry(result, telemetry_window_s)
