"""Named serving scenario presets, defined in the scenario DSL.

A :class:`Scenario` bundles everything one reproducible serving run needs:
a seeded traffic builder, a fleet (chip count + router), a batching policy
and an SLO.  Every preset is declared as a
:class:`~repro.serving.dsl.ScenarioSpec` — a composition of ``steady`` /
``ramp`` / ``burst`` / ``drain`` / ``mix_shift`` phases — and covers a
canonical load shape a production deployment must survive:

* ``steady`` — constant Poisson traffic, uniform workload mix.
* ``diurnal`` — low/peak/low daily curve built from chained steady
  phases.
* ``flash_crowd`` — bursty MMPP traffic with an order-of-magnitude gap
  between the quiet and burst rates.
* ``mixed_workload`` — heavily skewed workload mix on an affinity-sharded
  fleet, stressing per-shard hot spots.
* ``ramp_surge`` — a ramp into an over-capacity burst, then a drain —
  the capacity-planning shape (only expressible with the DSL's ramp and
  drain phases).
* ``mix_shift`` — constant-rate traffic whose workload mix migrates from
  neural-heavy to symbolic-heavy mid-run (a model rollout), the shape
  that stresses adaptive batching and routing controllers.
* ``chip_outage`` — steady traffic through a mid-run chip failure and
  recovery (a :mod:`~repro.serving.chaos` timeline), the basic
  resilience measurement.
* ``straggler_storm`` — a seeded storm of per-chip slowdown windows
  capped off by a fleet-wide power-cap window.
* ``session_surge`` — closed-loop session traffic
  (:mod:`~repro.serving.sessions`): a fixed user population whose
  offered load backs off as latency grows.

Rates are calibrated against the cycle model's sub-millisecond service
times (a single chip sustains roughly 1.4-5.8k requests/s depending on the
workload), so the presets land in the interesting 60-90 % utilization band
at ``load_scale=1.0``.  New scenarios can be added at runtime with
:func:`register_scenario`; recorded traces of any scenario replay through
``repro serve --trace`` (see :mod:`repro.serving.trace`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace as _dc_replace

from repro.errors import ServingError
from repro.serving.batching import build_policy
from repro.serving.chaos import ChaosTimeline, chip_failure, power_cap
from repro.serving.control import ControllerConfig, run_controlled
from repro.serving.dsl import ScenarioSpec, burst, drain, mix_shift, ramp, steady
from repro.serving.fleet import Fleet
from repro.serving.sessions import SessionConfig, run_sessions
from repro.serving.simulator import ServingResult, ServingSimulator
from repro.serving.traffic import Request
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = [
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "run_scenario",
]

#: every registered workload, in stable order — presets draw from all of them
SERVED_WORKLOADS = tuple(sorted(WORKLOAD_BUILDERS))

#: traffic builder signature: (seed, load_scale, duration_scale) -> requests
TrafficBuilder = Callable[[int, float, float], list[Request]]


@dataclass(frozen=True)
class Scenario:
    """A named, fully specified serving experiment."""

    name: str
    description: str
    traffic: TrafficBuilder
    num_chips: int
    router: str
    policy: str
    slo_s: float
    #: the DSL spec this scenario was built from (None for ad-hoc builders)
    spec: ScenarioSpec | None = None
    #: incident timeline every run of this scenario injects (unscaled time)
    chaos: ChaosTimeline | None = None
    #: closed-loop user population (``traffic`` is unused when set)
    sessions: SessionConfig | None = None
    #: fleet controller every run executes under (None = static fleet)
    controller: ControllerConfig | None = None


#: 70 % NVSA hot spot over a light background of the other workloads
_HOTSPOT_MIX = {"nvsa": 0.7, "mimonet": 0.1, "lvrf": 0.1, "prae": 0.1}

#: the DSL definitions of every preset, in presentation order
_PRESET_SPECS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="steady",
        description="constant Poisson load, uniform workload mix",
        phases=(steady(2400.0, duration_s=2.0),),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=5e-3,
    ),
    ScenarioSpec(
        name="diurnal",
        description="low/peak/low daily curve from chained Poisson segments",
        phases=(
            steady(400.0, duration_s=0.6),
            steady(2800.0, duration_s=1.0),
            steady(400.0, duration_s=0.6),
        ),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=5e-3,
    ),
    ScenarioSpec(
        name="flash_crowd",
        description="bursty MMPP traffic with 13x burst-to-quiet rate ratio",
        phases=(
            burst(
                base_rps=300.0,
                burst_rps=4000.0,
                duration_s=2.0,
                mean_normal_s=0.5,
                mean_burst_s=0.15,
            ),
        ),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=10e-3,
    ),
    ScenarioSpec(
        name="mixed_workload",
        description="70% NVSA hot spot on an affinity-sharded fleet",
        phases=(steady(1200.0, duration_s=2.0, mix=_HOTSPOT_MIX),),
        num_chips=4,
        router="affinity",
        policy="continuous",
        slo_s=5e-3,
    ),
    ScenarioSpec(
        name="ramp_surge",
        description="ramp into an over-capacity surge, then a drain",
        phases=(
            ramp(400.0, 3200.0, duration_s=1.0),
            burst(
                base_rps=3200.0,
                burst_rps=6400.0,
                duration_s=0.6,
                mean_normal_s=0.2,
                mean_burst_s=0.1,
            ),
            drain(0.2),
            steady(600.0, duration_s=0.4),
        ),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=10e-3,
    ),
    ScenarioSpec(
        name="mix_shift",
        description="model-rollout migration: neural-heavy to symbolic-heavy mix",
        phases=(
            mix_shift(
                1600.0,
                duration_s=2.0,
                mix_from={"mimonet": 0.7, "lvrf": 0.1, "nvsa": 0.1, "prae": 0.1},
                mix_to={"nvsa": 0.7, "lvrf": 0.1, "mimonet": 0.1, "prae": 0.1},
                steps=4,
            ),
        ),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=5e-3,
    ),
    ScenarioSpec(
        name="chip_outage",
        description="chip failure at the peak of an over-capacity surge",
        phases=(
            steady(9600.0, duration_s=0.5),
            steady(1600.0, duration_s=1.5),
        ),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=5e-3,
        # Chip 1 dies near the end of the surge — its standing queue
        # guarantees a batch in flight (lost) and queued requests (shed)
        # at any duration_scale — and recovers into the light phase,
        # giving the tail a finite, measurable recovery time.
        chaos=ChaosTimeline((chip_failure(1, 0.45, 0.4),)),
    ),
    ScenarioSpec(
        name="straggler_storm",
        description="seeded per-chip slowdown storm plus a fleet power cap",
        phases=(steady(4000.0, duration_s=2.0),),
        num_chips=4,
        router="jsq",
        policy="continuous",
        slo_s=10e-3,
        chaos=ChaosTimeline(
            ChaosTimeline.seeded(
                7, num_chips=4, horizon_s=1.3,
                straggler_rate=1.5, mean_duration_s=0.2, multiplier=4.0,
            ).incidents
            + (power_cap(1.5, 0.3, 2.0),)
        ),
    ),
    ScenarioSpec(
        name="session_surge",
        description="closed-loop user surge: think-time loops, multi-turn chats",
        phases=(),
        num_chips=2,
        router="jsq",
        policy="continuous",
        slo_s=5e-3,
        sessions=SessionConfig(
            users=96,
            turns=5,
            sessions_per_user=2,
            think_time_s=0.004,
            session_gap_s=0.01,
            start_spread_s=0.25,
            mix=tuple((name, 1.0) for name in SERVED_WORKLOADS),
        ),
    ),
)

#: scenario name -> preset, in presentation order
SCENARIOS: dict[str, Scenario] = {
    spec.name: spec.scenario() for spec in _PRESET_SPECS
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario preset by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ServingError(
            f"unknown scenario '{name}'; known: {', '.join(SCENARIOS)}"
        ) from None


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> Scenario:
    """Add a DSL-defined scenario to the preset registry.

    Registered scenarios become runnable through :func:`run_scenario`,
    ``repro serve`` and trace recording like any built-in preset.  Re-using
    a built-in or registered name requires ``replace=True``.
    """
    if spec.name in SCENARIOS and not replace:
        raise ServingError(
            f"scenario '{spec.name}' already exists; pass replace=True to "
            "override it"
        )
    scenario = spec.scenario()
    SCENARIOS[spec.name] = scenario
    return scenario


def run_scenario(
    name: str,
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    num_chips: int | None = None,
    router: str | None = None,
    policy: str | None = None,
    service_model=None,
    backends: Sequence[str] | None = None,
    shards: int = 1,
    shard_workers: int | None = None,
    telemetry_window_s: float | None = None,
    chaos: ChaosTimeline | None = None,
    sessions: SessionConfig | None = None,
    controller: ControllerConfig | None = None,
) -> tuple[Scenario, ServingResult]:
    """Execute one scenario preset (with optional overrides) end to end.

    ``backends`` names the per-chip backends (cycled across the fleet);
    when given without ``num_chips`` the fleet grows to one chip per name.
    A caller-supplied ``service_model`` must match the resulting fleet —
    heterogeneous fleets build their own per-chip model when it is None.
    ``shards > 1`` splits router-independent sub-fleets into per-shard
    simulations with records identical to the single-shard run (see
    :mod:`repro.serving.sharding`).  ``telemetry_window_s`` attaches the
    windowed time series (:mod:`repro.serving.telemetry`) to the result.

    ``chaos`` replaces the scenario's incident timeline for this run
    (``repro serve --chaos FILE``); open-loop runs scale it by
    ``duration_scale`` so incidents stay aligned with the stretched
    traffic phases.  ``sessions`` replaces the scenario's closed-loop
    population (``--sessions``); a closed-loop run maps ``load_scale``
    onto the user count and ``duration_scale`` onto conversations per
    user, and cannot shard (incident and feedback accounting are
    fleet-global).

    ``controller`` replaces the scenario's fleet controller
    (``--controller``): the run executes through
    :func:`~repro.serving.control.run_controlled`, which autoscales the
    fleet from the scenario's chip count and may shed over-budget
    arrivals.  A controller whose ``slo_s`` is unset inherits the
    scenario's SLO.  Controller runs are open-loop (no ``sessions``) and
    cannot shard; with ``controller=None`` (and no scenario-declared
    controller) this function is byte-identical to the pre-controller
    layer — the control plane is never on the static path.
    """
    if load_scale <= 0 or duration_scale <= 0:
        raise ServingError("load_scale and duration_scale must be positive")
    scenario = get_scenario(name)
    # Validate the fleet and policy overrides before paying for traffic
    # generation, so bad --backend/--router input fails fast.
    backend_tuple = tuple(backends or ())
    if num_chips is not None:
        chips = num_chips
    elif backend_tuple:
        chips = len(backend_tuple)
    else:
        chips = scenario.num_chips
    fleet = Fleet(
        num_chips=chips,
        router=router if router is not None else scenario.router,
        backends=backend_tuple,
    )
    batching = build_policy(policy if policy is not None else scenario.policy)
    session_config = sessions if sessions is not None else scenario.sessions
    control = controller if controller is not None else scenario.controller
    if control is not None:
        if session_config is not None:
            raise ServingError(
                "controller runs are open-loop: closed-loop sessions shape "
                "their own offered load and cannot be autoscaled"
            )
        if shards != 1:
            raise ServingError(
                "controller runs do not shard: scale actions couple every "
                "chip through the controller"
            )
        if control.slo_s is None:
            control = _dc_replace(control, slo_s=scenario.slo_s)
    timeline = chaos if chaos is not None else scenario.chaos
    if timeline is not None and session_config is None:
        # Closed-loop runs keep incident times as-is: their clock is set
        # by think times and service latency, which the knobs don't touch.
        timeline = timeline.scaled(duration_scale)
    simulator = ServingSimulator(
        service_model=service_model,
        fleet=fleet,
        batching_policy=batching,
        chaos=timeline,
    )
    if session_config is not None:
        if shards != 1:
            raise ServingError(
                "closed-loop session runs do not shard: think-time "
                "feedback couples every chip through the users"
            )
        result = run_sessions(
            simulator,
            session_config.scaled(load_scale, duration_scale),
            seed=seed,
            telemetry_window_s=telemetry_window_s,
        )
    else:
        requests = scenario.traffic(seed, load_scale, duration_scale)
        if not requests:
            raise ServingError(
                f"scenario '{name}' generated no requests "
                f"(seed={seed}, load_scale={load_scale}, "
                f"duration_scale={duration_scale})"
            )
        if control is not None:
            result = run_controlled(
                simulator, control, requests,
                telemetry_window_s=telemetry_window_s,
            )
        else:
            result = simulator.run(
                requests, shards=shards, shard_workers=shard_workers,
                telemetry_window_s=telemetry_window_s,
            )
    result.provenance.update(
        {"scenario": name, "seed": seed, "load_scale": load_scale,
         "duration_scale": duration_scale}
    )
    return scenario, result
