"""Named serving scenario presets.

A :class:`Scenario` bundles everything one reproducible serving run needs:
a seeded traffic builder, a fleet (chip count + router), a batching policy
and an SLO.  The presets cover the canonical load shapes a production
deployment must survive:

* ``steady`` — constant Poisson traffic, uniform workload mix.
* ``diurnal`` — low/peak/low daily curve built from chained Poisson
  segments.
* ``flash_crowd`` — bursty MMPP traffic with an order-of-magnitude gap
  between the quiet and burst rates.
* ``mixed_workload`` — heavily skewed workload mix on an affinity-sharded
  fleet, stressing per-shard hot spots.

Rates are calibrated against the cycle model's sub-millisecond service
times (a single chip sustains roughly 1.4-5.8k requests/s depending on the
workload), so the presets land in the interesting 60-90 % utilization band
at ``load_scale=1.0``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.batching import build_policy
from repro.serving.fleet import Fleet
from repro.serving.simulator import ServingResult, ServingSimulator
from repro.serving.traffic import (
    MMPPArrivals,
    PoissonArrivals,
    Request,
    WorkloadMix,
    concatenate_segments,
)
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "run_scenario"]

#: every registered workload, in stable order — presets draw from all of them
SERVED_WORKLOADS = tuple(sorted(WORKLOAD_BUILDERS))

#: traffic builder signature: (seed, load_scale, duration_scale) -> requests
TrafficBuilder = Callable[[int, float, float], list[Request]]


@dataclass(frozen=True)
class Scenario:
    """A named, fully specified serving experiment."""

    name: str
    description: str
    traffic: TrafficBuilder
    num_chips: int
    router: str
    policy: str
    slo_s: float


def _steady_traffic(seed: int, load_scale: float, duration_scale: float):
    """Constant Poisson load over a uniform workload mix."""
    mix = WorkloadMix.uniform(SERVED_WORKLOADS)
    return PoissonArrivals(2400.0 * load_scale, mix).generate(
        2.0 * duration_scale, seed=seed
    )


def _diurnal_traffic(seed: int, load_scale: float, duration_scale: float):
    """Low/peak/low daily curve from chained Poisson segments."""
    mix = WorkloadMix.uniform(SERVED_WORKLOADS)
    segments = [
        (PoissonArrivals(400.0 * load_scale, mix), 0.6 * duration_scale),
        (PoissonArrivals(2800.0 * load_scale, mix), 1.0 * duration_scale),
        (PoissonArrivals(400.0 * load_scale, mix), 0.6 * duration_scale),
    ]
    return concatenate_segments(segments, seed=seed)


def _flash_crowd_traffic(seed: int, load_scale: float, duration_scale: float):
    """Bursty MMPP stream with a 13x burst-to-quiet rate ratio."""
    mix = WorkloadMix.uniform(SERVED_WORKLOADS)
    process = MMPPArrivals(
        normal_rate_rps=300.0 * load_scale,
        burst_rate_rps=4000.0 * load_scale,
        mix=mix,
        mean_normal_s=0.5,
        mean_burst_s=0.15,
    )
    return process.generate(2.0 * duration_scale, seed=seed)


def _mixed_workload_traffic(seed: int, load_scale: float, duration_scale: float):
    """70% NVSA hot spot over a light background mix."""
    # 70 % NVSA hot spot over a light background of the other workloads.
    mix = WorkloadMix({"nvsa": 0.7, "mimonet": 0.1, "lvrf": 0.1, "prae": 0.1})
    return PoissonArrivals(1200.0 * load_scale, mix).generate(
        2.0 * duration_scale, seed=seed
    )


#: scenario name -> preset, in presentation order
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="steady",
            description="constant Poisson load, uniform workload mix",
            traffic=_steady_traffic,
            num_chips=2,
            router="jsq",
            policy="continuous",
            slo_s=5e-3,
        ),
        Scenario(
            name="diurnal",
            description="low/peak/low daily curve from chained Poisson segments",
            traffic=_diurnal_traffic,
            num_chips=2,
            router="jsq",
            policy="continuous",
            slo_s=5e-3,
        ),
        Scenario(
            name="flash_crowd",
            description="bursty MMPP traffic with 13x burst-to-quiet rate ratio",
            traffic=_flash_crowd_traffic,
            num_chips=2,
            router="jsq",
            policy="continuous",
            slo_s=10e-3,
        ),
        Scenario(
            name="mixed_workload",
            description="70% NVSA hot spot on an affinity-sharded fleet",
            traffic=_mixed_workload_traffic,
            num_chips=4,
            router="affinity",
            policy="continuous",
            slo_s=5e-3,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario preset by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ServingError(
            f"unknown scenario '{name}'; known: {', '.join(SCENARIOS)}"
        ) from None


def run_scenario(
    name: str,
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    num_chips: int | None = None,
    router: str | None = None,
    policy: str | None = None,
    service_model=None,
    backends: Sequence[str] | None = None,
) -> tuple[Scenario, ServingResult]:
    """Execute one scenario preset (with optional overrides) end to end.

    ``backends`` names the per-chip backends (cycled across the fleet);
    when given without ``num_chips`` the fleet grows to one chip per name.
    A caller-supplied ``service_model`` must match the resulting fleet —
    heterogeneous fleets build their own per-chip model when it is None.
    """
    if load_scale <= 0 or duration_scale <= 0:
        raise ServingError("load_scale and duration_scale must be positive")
    scenario = get_scenario(name)
    # Validate the fleet and policy overrides before paying for traffic
    # generation, so bad --backend/--router input fails fast.
    backend_tuple = tuple(backends or ())
    if num_chips is not None:
        chips = num_chips
    elif backend_tuple:
        chips = len(backend_tuple)
    else:
        chips = scenario.num_chips
    fleet = Fleet(
        num_chips=chips,
        router=router if router is not None else scenario.router,
        backends=backend_tuple,
    )
    batching = build_policy(policy if policy is not None else scenario.policy)
    requests = scenario.traffic(seed, load_scale, duration_scale)
    if not requests:
        raise ServingError(
            f"scenario '{name}' generated no requests "
            f"(seed={seed}, load_scale={load_scale}, duration_scale={duration_scale})"
        )
    simulator = ServingSimulator(
        service_model=service_model,
        fleet=fleet,
        batching_policy=batching,
    )
    result = simulator.run(requests)
    result.provenance.update(
        {"scenario": name, "seed": seed, "load_scale": load_scale,
         "duration_scale": duration_scale}
    )
    return scenario, result
