"""Multi-chip fleet model: per-chip service times and routing policies.

Each chip in the fleet is one CogSys accelerator; its service time for a
batch of ``b`` same-workload requests is the end-to-end latency the
cycle-level :class:`~repro.hardware.accelerator.CogSysAccelerator` model
reports for the ``num_tasks=b`` variant of that workload.  Reports are
memoized per ``(workload, batch size)`` — the expensive part is building
the kernel graph and scheduling it once; afterwards the discrete-event loop
only does dictionary lookups, which is what keeps full load sweeps fast.

Routing policies place an arriving request on a chip:

* :class:`RoundRobinRouter` — cyclic assignment, oblivious to load.
* :class:`JoinShortestQueueRouter` — least pending work (queued plus
  in-flight requests), the classic latency-optimal heuristic.
* :class:`WorkloadAffinityRouter` — workloads are sharded across chips and
  a request only goes to chips owning its workload (least-loaded among
  them).  Affinity keeps per-chip batches homogeneous, which is what the
  same-workload batching amortization needs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ServingError
from repro.hardware.accelerator import CogSysAccelerator, CogSysReport
from repro.serving.traffic import Request
from repro.workloads.registry import build_workload

__all__ = [
    "AcceleratorServiceModel",
    "ChipView",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "WorkloadAffinityRouter",
    "ROUTERS",
    "build_router",
    "Fleet",
]


class AcceleratorServiceModel:
    """Memoized ``(workload, batch size) -> CogSysReport`` service-time oracle."""

    def __init__(
        self,
        accelerator: CogSysAccelerator | None = None,
        scheduler: str = "adaptive",
        workload_params: Mapping[str, Mapping[str, object]] | None = None,
    ) -> None:
        self.accelerator = accelerator or CogSysAccelerator()
        self.scheduler = scheduler
        self.workload_params = {
            name: dict(params) for name, params in (workload_params or {}).items()
        }
        self._reports: dict[tuple[str, int], CogSysReport] = {}

    def report(self, workload: str, batch_size: int) -> CogSysReport:
        """The accelerator report for a batch, computed once and memoized."""
        if batch_size < 1:
            raise ServingError(f"batch_size must be positive, got {batch_size}")
        key = (workload, batch_size)
        if key not in self._reports:
            graph = build_workload(
                workload,
                num_tasks=batch_size,
                **self.workload_params.get(workload, {}),
            )
            self._reports[key] = self.accelerator.simulate(
                graph, scheduler=self.scheduler
            )
        return self._reports[key]

    def service_seconds(self, workload: str, batch_size: int) -> float:
        """Chip-occupancy seconds for one batch."""
        return self.report(workload, batch_size).total_seconds

    def energy_joules(self, workload: str, batch_size: int) -> float:
        """Energy one batch costs on the chip."""
        return self.report(workload, batch_size).energy_joules

    @property
    def cached_reports(self) -> int:
        """Number of distinct ``(workload, batch)`` simulations performed."""
        return len(self._reports)


class ChipView(Protocol):
    """The chip state a router is allowed to observe."""

    chip_id: int
    busy: bool
    inflight: int

    @property
    def queue_depth(self) -> int: ...


def _pending(chip: ChipView) -> int:
    """Requests a chip still owes: queued plus currently executing."""
    return chip.queue_depth + chip.inflight


class Router:
    """Base class for request-routing policies."""

    name = "base"

    def route(self, request: Request, chips: Sequence[ChipView]) -> int:
        """Index of the chip that should enqueue ``request``."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the chips regardless of their load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request, chips):
        chosen = self._next % len(chips)
        self._next += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Send the request to the chip with the fewest pending requests."""

    name = "jsq"

    def route(self, request, chips):
        return min(chips, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


class WorkloadAffinityRouter(Router):
    """Shard workloads across chips; least-loaded owner wins.

    Chips are dealt to workloads round-robin (chip ``i`` serves workload
    ``i mod W`` of the sorted workload list), so every workload owns
    ``num_chips / W`` chips when the fleet is large and falls back to a
    single shared chip when it is smaller than the workload set.
    """

    name = "affinity"

    def __init__(self, num_chips: int, workloads: Sequence[str]) -> None:
        if num_chips < 1:
            raise ServingError(f"num_chips must be positive, got {num_chips}")
        if not workloads:
            raise ServingError("affinity router needs at least one workload")
        names = sorted(set(workloads))
        self.owners: dict[str, tuple[int, ...]] = {}
        for index, name in enumerate(names):
            owned = tuple(
                chip for chip in range(num_chips) if chip % len(names) == index
            )
            self.owners[name] = owned or (index % num_chips,)

    def route(self, request, chips):
        try:
            owners = self.owners[request.workload]
        except KeyError:
            raise ServingError(
                f"affinity router has no shard for workload '{request.workload}'"
            ) from None
        candidates = [chips[chip_id] for chip_id in owners]
        return min(candidates, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


#: names accepted by :func:`build_router`
ROUTERS: frozenset[str] = frozenset(
    {RoundRobinRouter.name, JoinShortestQueueRouter.name, WorkloadAffinityRouter.name}
)


def build_router(name: str, num_chips: int, workloads: Sequence[str]) -> Router:
    """Instantiate a routing policy by registry name."""
    if name == RoundRobinRouter.name:
        return RoundRobinRouter()
    if name == JoinShortestQueueRouter.name:
        return JoinShortestQueueRouter()
    if name == WorkloadAffinityRouter.name:
        return WorkloadAffinityRouter(num_chips, workloads)
    raise ServingError(f"unknown router '{name}'; known: {sorted(ROUTERS)}")


@dataclass(frozen=True)
class Fleet:
    """Static description of a serving fleet."""

    num_chips: int = 1
    router: str = RoundRobinRouter.name
    workloads: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_chips < 1:
            raise ServingError(f"num_chips must be positive, got {self.num_chips}")
        if self.router not in ROUTERS:
            raise ServingError(
                f"unknown router '{self.router}'; known: {sorted(ROUTERS)}"
            )

    def make_router(self, workloads: Sequence[str]) -> Router:
        """Build this fleet's router over the workload set actually served."""
        names = tuple(self.workloads) or tuple(workloads)
        return build_router(self.router, self.num_chips, names)
