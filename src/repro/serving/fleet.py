"""Multi-chip fleet model: per-chip backends, service times and routing.

Each chip in the fleet is one *backend* — a CogSys accelerator by default,
but any registry name (``"a100"``, ``"tpu_like"``, an ablated CogSys
variant) works, and a fleet may mix them.  A chip's service time for a
batch of ``b`` same-workload requests is the end-to-end latency its
backend reports for the ``num_tasks=b`` variant of that workload; reports
are memoized per ``(workload, batch size)`` in a shared
:class:`~repro.backends.cache.ExecutionCache` per distinct backend — the
expensive part is building the kernel graph and scheduling it once, so the
discrete-event loop only does dictionary lookups.

Routing policies place an arriving request on a chip:

* :class:`RoundRobinRouter` — cyclic assignment, oblivious to load.
* :class:`JoinShortestQueueRouter` — least pending work (queued plus
  in-flight requests), the classic latency-optimal heuristic.
* :class:`WorkloadAffinityRouter` — workloads are sharded across chips and
  a request only goes to chips owning its workload (least-loaded among
  them).  Affinity keeps per-chip batches homogeneous, which is what the
  same-workload batching amortization needs.
* :class:`SymbolicAffinityRouter` — heterogeneous-fleet affinity: requests
  for symbolic-heavy workloads go to chips whose backend has native
  symbolic support (the CogSys family), neural-heavy workloads to the
  rest, least-loaded within each pool.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol

from repro.backends.cache import ExecutionCache
from repro.backends.cogsys import CogSysBackend
from repro.backends.registry import backend_names, get_backend, is_symbolic_friendly
from repro.errors import BackendError, ServingError
from repro.serving.traffic import Request

__all__ = [
    "AcceleratorServiceModel",
    "FleetServiceModel",
    "ChipView",
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "WorkloadAffinityRouter",
    "SymbolicAffinityRouter",
    "FixedOwnersRouter",
    "ROUTERS",
    "build_router",
    "Fleet",
]

#: backend every chip runs when a fleet does not say otherwise
DEFAULT_BACKEND = "cogsys"


class AcceleratorServiceModel(ExecutionCache):
    """Deprecated: memoized CogSys-only service model.

    Thin shim over :class:`~repro.backends.cache.ExecutionCache` pinned to
    the CogSys backend; new code should build an ``ExecutionCache`` (any
    backend) or a :class:`FleetServiceModel` (per-chip backends) directly.
    """

    def __init__(
        self,
        accelerator=None,
        scheduler: str = "adaptive",
        workload_params: Mapping[str, Mapping[str, object]] | None = None,
    ) -> None:
        warnings.warn(
            "AcceleratorServiceModel is deprecated; use "
            "repro.backends.ExecutionCache (single backend) or "
            "repro.serving.fleet.FleetServiceModel (per-chip backends)",
            DeprecationWarning,
            stacklevel=2,
        )
        backend = (
            CogSysBackend(accelerator) if accelerator is not None else DEFAULT_BACKEND
        )
        super().__init__(
            backend=backend, scheduler=scheduler, workload_params=workload_params
        )

    @property
    def accelerator(self):
        """The wrapped cycle model (legacy attribute)."""
        return self.backend.accelerator

    def report(self, workload, batch_size):
        """Legacy error contract: invalid requests raise ServingError."""
        try:
            return super().report(workload, batch_size)
        except BackendError as error:
            raise ServingError(str(error)) from None


class ChipView(Protocol):
    """The chip state a router is allowed to observe."""

    chip_id: int
    busy: bool
    inflight: int

    @property
    def queue_depth(self) -> int:
        """Requests queued on the chip (excluding the executing batch)."""
        ...


def _pending(chip: ChipView) -> int:
    """Requests a chip still owes: queued plus currently executing."""
    return chip.queue_depth + chip.inflight


class Router:
    """Base class for request-routing policies."""

    name = "base"

    def route(self, request: Request, chips: Sequence[ChipView]) -> int:
        """Index of the chip that should enqueue ``request``."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the chips regardless of their load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, request, chips):
        """The next chip in cyclic order, regardless of load."""
        chosen = self._next % len(chips)
        self._next += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Send the request to the chip with the fewest pending requests."""

    name = "jsq"

    def route(self, request, chips):
        """The chip with the least pending work (lowest id breaks ties)."""
        return min(chips, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


class WorkloadAffinityRouter(Router):
    """Shard workloads across chips; least-loaded owner wins.

    Chips are dealt to workloads round-robin (chip ``i`` serves workload
    ``i mod W`` of the sorted workload list), so every workload owns
    ``num_chips / W`` chips when the fleet is large and falls back to a
    single shared chip when it is smaller than the workload set.
    """

    name = "affinity"

    def __init__(self, num_chips: int, workloads: Sequence[str]) -> None:
        if num_chips < 1:
            raise ServingError(f"num_chips must be positive, got {num_chips}")
        if not workloads:
            raise ServingError("affinity router needs at least one workload")
        names = sorted(set(workloads))
        self.owners: dict[str, tuple[int, ...]] = {}
        for index, name in enumerate(names):
            owned = tuple(
                chip for chip in range(num_chips) if chip % len(names) == index
            )
            self.owners[name] = owned or (index % num_chips,)

    def route(self, request, chips):
        """The least-loaded chip among the workload's shard owners."""
        try:
            owners = self.owners[request.workload]
        except KeyError:
            raise ServingError(
                f"affinity router has no shard for workload '{request.workload}'"
            ) from None
        candidates = [chips[chip_id] for chip_id in owners]
        return min(candidates, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


class SymbolicAffinityRouter(Router):
    """Heterogeneous-fleet affinity keyed on native symbolic support.

    Chips whose backend exposes the reconfigurable symbolic mode (the
    CogSys family) form the *symbolic pool*; every other chip the *neural
    pool*.  A workload whose batch-1 report spends at least ``threshold``
    of its stage-summed runtime in symbolic kernels owns the symbolic
    pool, the rest own the neural pool; an empty pool falls back to the
    whole fleet, so homogeneous fleets degrade to join-shortest-queue.
    """

    name = "symbolic_affinity"

    def __init__(
        self,
        chip_backends: Sequence[str],
        workloads: Sequence[str],
        symbolic_fraction_of: Callable[[str], float],
        threshold: float = 0.5,
    ) -> None:
        if not chip_backends:
            raise ServingError("symbolic-affinity router needs at least one chip")
        if not workloads:
            raise ServingError("symbolic-affinity router needs at least one workload")
        if not 0.0 <= threshold <= 1.0:
            raise ServingError(f"threshold must be in [0, 1], got {threshold}")
        every_chip = tuple(range(len(chip_backends)))
        symbolic_pool = tuple(
            chip
            for chip, backend in enumerate(chip_backends)
            if is_symbolic_friendly(backend)
        )
        neural_pool = tuple(
            chip for chip in every_chip if chip not in symbolic_pool
        )
        self.symbolic_pool = symbolic_pool or every_chip
        self.neural_pool = neural_pool or every_chip
        self.owners: dict[str, tuple[int, ...]] = {}
        self.workload_symbolic_fraction: dict[str, float] = {}
        for name in sorted(set(workloads)):
            fraction = symbolic_fraction_of(name)
            self.workload_symbolic_fraction[name] = fraction
            self.owners[name] = (
                self.symbolic_pool if fraction >= threshold else self.neural_pool
            )

    def route(self, request, chips):
        """The least-loaded chip of the workload's symbolic/neural pool."""
        owners = self.owners.get(request.workload)
        if owners is None:
            raise ServingError(
                "symbolic-affinity router has no pool for workload "
                f"'{request.workload}'"
            )
        candidates = [chips[chip_id] for chip_id in owners]
        return min(candidates, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


class FixedOwnersRouter(Router):
    """Affinity router with an injected, pre-computed ownership table.

    The sharding layer uses this to rebuild a shard's slice of a parent
    affinity/symbolic-affinity router: the parent's ``owners`` mapping is
    remapped to shard-local chip ids and injected verbatim, so the shard
    routes exactly as the chips did inside the full fleet.  Re-dealing
    ownership over the shard's smaller workload set would pick different
    owners, which is why this router never computes its own table.  Owner
    tuples must be ascending chip ids, matching the builtin routers.
    """

    name = "fixed_owners"

    def __init__(self, owners: Mapping[str, Sequence[int]]) -> None:
        if not owners:
            raise ServingError("fixed-owners router needs an ownership table")
        self.owners: dict[str, tuple[int, ...]] = {
            workload: tuple(chip_ids) for workload, chip_ids in owners.items()
        }
        for workload, chip_ids in self.owners.items():
            if not chip_ids:
                raise ServingError(
                    f"fixed-owners router has an empty pool for '{workload}'"
                )

    def route(self, request, chips):
        """The least-loaded chip among the workload's fixed owners."""
        owners = self.owners.get(request.workload)
        if owners is None:
            raise ServingError(
                "fixed-owners router has no owners for workload "
                f"'{request.workload}'"
            )
        candidates = [chips[chip_id] for chip_id in owners]
        return min(candidates, key=lambda chip: (_pending(chip), chip.chip_id)).chip_id


#: names accepted by :func:`build_router`
ROUTERS: frozenset[str] = frozenset(
    {
        RoundRobinRouter.name,
        JoinShortestQueueRouter.name,
        WorkloadAffinityRouter.name,
        SymbolicAffinityRouter.name,
    }
)


def build_router(
    name: str,
    num_chips: int,
    workloads: Sequence[str],
    chip_backends: Sequence[str] | None = None,
    symbolic_fraction_of: Callable[[str], float] | None = None,
) -> Router:
    """Instantiate a routing policy by registry name."""
    if name == RoundRobinRouter.name:
        return RoundRobinRouter()
    if name == JoinShortestQueueRouter.name:
        return JoinShortestQueueRouter()
    if name == WorkloadAffinityRouter.name:
        return WorkloadAffinityRouter(num_chips, workloads)
    if name == SymbolicAffinityRouter.name:
        if chip_backends is None or symbolic_fraction_of is None:
            raise ServingError(
                "symbolic_affinity routing needs per-chip backends and a "
                "symbolic-fraction oracle (run it through ServingSimulator)"
            )
        return SymbolicAffinityRouter(chip_backends, workloads, symbolic_fraction_of)
    raise ServingError(f"unknown router '{name}'; known: {sorted(ROUTERS)}")


@dataclass(frozen=True)
class Fleet:
    """Static description of a serving fleet.

    ``backends`` names the backend of each chip: empty means every chip is
    a CogSys accelerator; fewer names than chips are cycled round-robin
    (``("cogsys", "a100")`` on four chips alternates them); more names than
    chips are rejected rather than silently truncated.
    """

    num_chips: int = 1
    router: str = RoundRobinRouter.name
    workloads: tuple[str, ...] = field(default_factory=tuple)
    backends: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_chips < 1:
            raise ServingError(f"num_chips must be positive, got {self.num_chips}")
        if self.router not in ROUTERS:
            raise ServingError(
                f"unknown router '{self.router}'; known: {sorted(ROUTERS)}"
            )
        if len(self.backends) > self.num_chips:
            raise ServingError(
                f"{len(self.backends)} backends for {self.num_chips} chip(s); "
                "backend names must not outnumber the fleet"
            )
        if self.backends:
            # Registry lookup only when backends are actually named, so the
            # default homogeneous fleet never pays for registry init.
            known = backend_names()
            for backend in self.backends:
                if backend not in known:
                    raise BackendError(
                        f"unknown backend '{backend}' in fleet; known "
                        f"backends: {list(known)}"
                    )

    @property
    def chip_backends(self) -> tuple[str, ...]:
        """Backend name of every chip (cycled when fewer names are given)."""
        if not self.backends:
            return (DEFAULT_BACKEND,) * self.num_chips
        return tuple(
            self.backends[chip % len(self.backends)] for chip in range(self.num_chips)
        )

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the fleet mixes more than one backend."""
        return len(set(self.chip_backends)) > 1

    @property
    def reference_chip(self) -> int:
        """Chip whose backend measures per-workload symbolic *demand*.

        Symbolic demand is only visible on a baseline backend — the CogSys
        family accelerates symbolic kernels so much that their share of
        runtime collapses — so the first chip *without* native symbolic
        support is the reference, falling back to chip 0 on all-CogSys
        fleets (where affinity pools degenerate to the whole fleet anyway).
        """
        for chip, backend in enumerate(self.chip_backends):
            if not is_symbolic_friendly(backend):
                return chip
        return 0

    def make_router(
        self,
        workloads: Sequence[str],
        symbolic_fraction_of: Callable[[str], float] | None = None,
    ) -> Router:
        """Build this fleet's router over the workload set actually served."""
        names = tuple(self.workloads) or tuple(workloads)
        return build_router(
            self.router,
            self.num_chips,
            names,
            chip_backends=self.chip_backends,
            symbolic_fraction_of=symbolic_fraction_of,
        )


class FleetServiceModel:
    """Per-chip service-time oracle for (possibly heterogeneous) fleets.

    Chips sharing a backend share one
    :class:`~repro.backends.cache.ExecutionCache`, so a fleet of eight
    CogSys chips still simulates each ``(workload, batch)`` point exactly
    once.  ``scheduler`` is applied per backend where supported (e.g.
    ``"sequential"`` pins the CogSys chips while the device chips — which
    only know sequential execution — are unaffected); backends that do not
    know it keep their default, and a scheduler no fleet backend supports
    is rejected at construction.
    """

    def __init__(
        self,
        fleet: Fleet | None = None,
        scheduler: str | None = None,
        workload_params: Mapping[str, Mapping[str, object]] | None = None,
    ) -> None:
        self.fleet = fleet or Fleet()
        self.chip_backends = self.fleet.chip_backends
        self._caches: dict[str, ExecutionCache] = {}
        for name in self.chip_backends:
            if name not in self._caches:
                backend = get_backend(name)
                supported = scheduler is not None and backend.supports_scheduler(
                    scheduler
                )
                self._caches[name] = ExecutionCache(
                    backend=backend,
                    scheduler=scheduler if supported else None,
                    workload_params=workload_params,
                )
        if scheduler is not None and all(
            cache.scheduler != scheduler for cache in self._caches.values()
        ):
            raise BackendError(
                f"no backend in the fleet supports scheduler '{scheduler}'; "
                f"fleet backends: {sorted(self._caches)}"
            )

    @property
    def num_chips(self) -> int:
        """Chips this model answers for."""
        return len(self.chip_backends)

    def for_chip(self, chip_id: int) -> ExecutionCache:
        """The execution cache serving ``chip_id``."""
        if not 0 <= chip_id < self.num_chips:
            raise ServingError(
                f"chip {chip_id} outside the {self.num_chips}-chip fleet"
            )
        return self._caches[self.chip_backends[chip_id]]

    def service_seconds(self, workload: str, batch_size: int, chip_id: int = 0) -> float:
        """Chip-occupancy seconds for one batch on ``chip_id``."""
        return self.for_chip(chip_id).service_seconds(workload, batch_size)

    def energy_joules(self, workload: str, batch_size: int, chip_id: int = 0) -> float:
        """Energy one batch costs on ``chip_id``."""
        return self.for_chip(chip_id).energy_joules(workload, batch_size)

    @property
    def scheduler(self) -> str:
        """Resolved scheduler(s), ``+``-joined when backends differ."""
        return "+".join(
            sorted({cache.scheduler for cache in self._caches.values()})
        )

    @property
    def cached_reports(self) -> int:
        """Distinct ``(workload, batch)`` executions across all backends."""
        return sum(cache.cached_reports for cache in self._caches.values())
