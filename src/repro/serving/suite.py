"""Parallel suite runner for independent ``(scenario, config)`` cases.

Coupled (jsq) fleets cannot shard — every routing decision depends on all
queue depths, so ``--shards`` records a fallback and runs single-shard.
What *can* parallelise is the suite level: independent scenario runs share
nothing, so :func:`run_suite` fans them across a persistent process pool
(``repro serve SCENARIO[,SCENARIO...] --jobs N``), giving coupled fleets
the process-level parallelism that ``--shards`` gives shardable ones.

Workers are forked once and reused for the whole suite; each keeps a
process-global memo of :class:`~repro.serving.fleet.FleetServiceModel`
instances keyed by the fleet's per-chip backends, so the memoized
``(workload, batch)`` service tables warm once per fleet shape and stay
warm across every case that worker runs.  Results come back in input
order as plain picklable summaries.  ``jobs=1`` (and any pool start-up
failure, e.g. a platform without ``fork``) degrades to running the cases
sequentially in-process with the same memo — byte-identical output,
no pool.

Output is byte-identical across ``jobs`` values with one documented
exception: ``provenance["cached_reports"]`` counts the warmth of the
worker's service-table memo at result time, which depends on which cases
that worker (or the sequential path) ran before — it describes the memo,
not the simulation.  Records, summaries and telemetry never vary.
"""

from __future__ import annotations

import os
from typing import NamedTuple, Sequence

from repro.errors import ServingError

__all__ = ["SuiteCase", "SuiteResult", "run_suite", "map_cases"]


class SuiteCase(NamedTuple):
    """One independent scenario run: a preset name plus config overrides.

    ``None`` overrides defer to the preset (same contract as
    :func:`repro.serving.scenarios.run_scenario`); ``backends`` names
    per-chip backends cycled across the fleet.  ``label`` names the case
    in results (defaults to the scenario name).
    """

    scenario: str
    seed: int = 0
    load_scale: float = 1.0
    duration_scale: float = 1.0
    num_chips: int | None = None
    router: str | None = None
    policy: str | None = None
    backends: tuple[str, ...] = ()
    label: str | None = None

    @property
    def name(self) -> str:
        """The case's display name: ``label`` when set, else the scenario."""
        return self.label or self.scenario


class SuiteResult(NamedTuple):
    """Summarised outcome of one case (picklable, no simulator state)."""

    case: SuiteCase
    scenario: str
    description: str
    slo_s: float
    num_requests: int
    provenance: dict
    summary: dict
    per_workload: list
    per_backend: list


#: worker-global service-model memo: chip_backends tuple -> FleetServiceModel.
#: Populated lazily inside each pool worker (and by the sequential path),
#: so repeated cases over the same fleet shape reuse warmed service tables.
_MODEL_MEMO: dict = {}


def _service_model_for(case: SuiteCase):
    """The memoized service model matching the case's resolved fleet."""
    from repro.serving.fleet import Fleet, FleetServiceModel
    from repro.serving.scenarios import get_scenario

    scenario = get_scenario(case.scenario)
    if case.num_chips is not None:
        chips = case.num_chips
    elif case.backends:
        chips = len(case.backends)
    else:
        chips = scenario.num_chips
    fleet = Fleet(
        num_chips=chips,
        router=case.router if case.router is not None else scenario.router,
        backends=tuple(case.backends),
    )
    key = fleet.chip_backends
    model = _MODEL_MEMO.get(key)
    if model is None:
        model = _MODEL_MEMO[key] = FleetServiceModel(fleet=fleet)
    return model


def _run_case(case: SuiteCase) -> SuiteResult:
    """Execute one case end to end (runs inside a pool worker)."""
    from repro.serving import metrics
    from repro.serving.scenarios import run_scenario

    scenario, result = run_scenario(
        case.scenario,
        seed=case.seed,
        load_scale=case.load_scale,
        duration_scale=case.duration_scale,
        num_chips=case.num_chips,
        router=case.router,
        policy=case.policy,
        service_model=_service_model_for(case),
        backends=case.backends or None,
    )
    return SuiteResult(
        case=case,
        scenario=scenario.name,
        description=scenario.description,
        slo_s=scenario.slo_s,
        num_requests=len(result.records),
        provenance=dict(result.provenance),
        summary=metrics.summarize_result(result, scenario.slo_s),
        per_workload=metrics.per_workload_summary(result, scenario.slo_s),
        per_backend=metrics.per_backend_summary(result, scenario.slo_s),
    )


def map_cases(fn, items: Sequence, jobs: int = 1) -> list:
    """Map ``fn`` over ``items`` on a persistent pool, results in order.

    The shared fan-out primitive under :func:`run_suite` and the
    benchmark suites' ``jobs`` parameter.  ``fn`` and every item must be
    picklable (module-level callables, NamedTuple cases).  ``jobs=1`` —
    or a pool that cannot start — runs sequentially in-process.
    """
    items = list(items)
    jobs = max(1, min(int(jobs), len(items) or 1))
    if jobs == 1:
        return [fn(item) for item in items]
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
        pool = context.Pool(processes=jobs)
    except (ValueError, OSError):
        return [fn(item) for item in items]
    with pool:
        return pool.map(fn, items)


def run_suite(
    cases: Sequence[SuiteCase], jobs: int | None = 1
) -> list[SuiteResult]:
    """Run independent scenario cases, ``jobs`` at a time.

    Returns one :class:`SuiteResult` per case, in input order regardless
    of completion order.  ``jobs=None`` uses the machine's CPU count.
    """
    cases = list(cases)
    if not cases:
        return []
    for case in cases:
        if not isinstance(case, SuiteCase):
            raise ServingError(
                f"run_suite takes SuiteCase entries, got {type(case).__name__}"
            )
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ServingError(f"jobs must be at least 1, got {jobs}")
    return map_cases(_run_case, cases, jobs=jobs)
