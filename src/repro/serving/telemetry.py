"""Windowed time-series telemetry over the serving event core.

The simulator's results are end-of-run aggregates; this module adds the
*over time* view: the run is cut into fixed simulated-time windows
(anchored at ``t = 0``, width ``window_s``) and each window reports
arrival/completion/batch counts and rates, windowed latency percentiles,
energy, fleet utilization, and per-chip queue depth / in-flight state at
the window boundary — the sensor series a closed-loop controller (or a
dashboard) consumes.

Three producers build the exact same series:

* :func:`_series_from_emits` — vectorized derivation straight from the
  emit structures ``run()`` already captures (the event core is never
  touched, so telemetry-off runs pay nothing); :func:`derive_series`
  rebuilds the identical series post-hoc from any finished full-trace
  :class:`~repro.serving.simulator.ServingResult`,
* :class:`TelemetryCollector` — an incremental tap on ``run_stream()``'s
  ``emit``/``emit_run`` callbacks plus the fed arrival chunks, flushing
  windows as soon as their content is provably complete so multi-million
  request replays keep bounded memory,
* the sharded merge (:mod:`repro.serving.sharding`) — derives from the
  canonically merged columns via the same vectorized kernel.

Byte-identity across the three is a hard guarantee (and CI-tested): all
floating-point reductions happen per window over *sorted* value
multisets inside :func:`_window_row`, window indices use the identical
``t // window_s`` floor division everywhere, and per-batch energy comes
from the same memoized ``model.energy_joules(workload, batch_size)``
call the event core uses.

Per-request lifecycle *spans* (arrive -> dispatch -> complete with
queue-wait and service segments) are derived from the existing records
by :func:`request_spans`; nothing is added to the hot path.
"""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError

__all__ = [
    "DEFAULT_WINDOW_S",
    "TELEMETRY_FIELDS",
    "SPAN_FIELDS",
    "TelemetrySeries",
    "TelemetryCollector",
    "derive_series",
    "request_spans",
]

#: default telemetry window width in simulated seconds (100 ms)
DEFAULT_WINDOW_S = 0.1

#: frozen per-window schema, in emission order — the JSONL exporter and
#: the CI schema check both validate against exactly this list
TELEMETRY_FIELDS = (
    "window",
    "start_s",
    "end_s",
    "arrivals",
    "completions",
    "batches",
    "shed",
    "arrival_rate_rps",
    "completion_rate_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "energy_j",
    "utilization",
    "queue_depth",
    "inflight",
)

#: per-request lifecycle span schema (see :func:`request_spans`)
SPAN_FIELDS = (
    "request_id",
    "workload",
    "chip",
    "arrival_s",
    "dispatch_s",
    "finish_s",
    "queue_wait_s",
    "service_s",
    "latency_s",
    "batch_size",
)


@dataclass(frozen=True)
class TelemetrySeries:
    """The windowed time series one serving run produced.

    ``windows`` holds one dict per window (consecutive, covering the
    first arrival through the horizon) whose keys are exactly
    :data:`TELEMETRY_FIELDS`.  ``queue_depth`` and ``inflight`` are
    per-chip integer lists sampled at the window's end boundary;
    ``shed`` is reserved for admission control (always 0 today);
    latency percentiles are ``None`` in windows with no completions.
    """

    window_s: float
    num_chips: int
    windows: tuple[dict, ...]

    @property
    def num_windows(self) -> int:
        """Number of windows in the series."""
        return len(self.windows)

    @property
    def requests(self) -> int:
        """Total arrivals across all windows."""
        return sum(row["arrivals"] for row in self.windows)

    @property
    def completed(self) -> int:
        """Total completions across all windows."""
        return sum(row["completions"] for row in self.windows)

    def column(self, name: str) -> list:
        """One field of every window, in window order."""
        if name not in TELEMETRY_FIELDS:
            raise ServingError(
                f"unknown telemetry field '{name}'; "
                f"choose from {list(TELEMETRY_FIELDS)}"
            )
        return [row[name] for row in self.windows]


def _quantile(sorted_values: np.ndarray, q: float) -> float:
    """Linear-interpolated quantile of an already-sorted array.

    Same formula (and same ``gamma >= 0.5`` lerp branch) as
    ``np.percentile``'s default method, inlined because the per-call
    overhead of ``np.percentile`` dominated per-window finalization —
    windows hold tens of latencies, and a run can have thousands of
    windows.
    """
    n = sorted_values.shape[0]
    pos = q * (n - 1)
    lo = int(pos)
    gamma = pos - lo
    a = float(sorted_values[lo])
    if gamma == 0.0:
        return a
    b = float(sorted_values[lo + 1 if lo + 1 < n else n - 1])
    diff = b - a
    if gamma < 0.5:
        return a + gamma * diff
    return b - diff * (1.0 - gamma)


def _window_row(
    window: int,
    window_s: float,
    num_chips: int,
    arrivals: int,
    completions: int,
    batches: int,
    latencies,
    energies,
    busy,
    queue_depth,
    inflight,
) -> dict:
    """Finalize one window's raw accumulators into its schema row.

    Every producer funnels through this function with the same value
    *multisets*; all float reductions sort first, so any two producers
    that accumulated the same values in any order emit identical bytes.
    """
    lat = np.sort(np.asarray(latencies, dtype=float))
    if lat.size:
        p50 = round(_quantile(lat, 0.5) * 1000.0, 4)
        p95 = round(_quantile(lat, 0.95) * 1000.0, 4)
        p99 = round(_quantile(lat, 0.99) * 1000.0, 4)
    else:
        p50 = p95 = p99 = None
    energy_j = float(np.sort(np.asarray(energies, dtype=float)).sum())
    busy_s = float(np.sort(np.asarray(busy, dtype=float)).sum())
    capacity_s = window_s * num_chips
    return {
        "window": int(window),
        "start_s": round(window * window_s, 9),
        "end_s": round((window + 1) * window_s, 9),
        "arrivals": int(arrivals),
        "completions": int(completions),
        "batches": int(batches),
        "shed": 0,
        "arrival_rate_rps": round(arrivals / window_s, 3),
        "completion_rate_rps": round(completions / window_s, 3),
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "energy_j": round(energy_j, 9),
        "utilization": round(min(1.0, busy_s / capacity_s), 6),
        "queue_depth": [int(v) for v in queue_depth],
        "inflight": [int(v) for v in inflight],
    }


def _busy_overlaps(dispatch_s: float, finish_s: float, w_lo: int, w_hi: int,
                   window_s: float) -> list[tuple[int, float]]:
    """Per-window busy overlap of one batch spanning several windows.

    Only called when ``w_lo < w_hi``; same-window batches contribute the
    plain ``finish - dispatch`` everywhere so the arithmetic stays
    identical across the scalar and vectorized producers.
    """
    out = []
    for w in range(w_lo, w_hi + 1):
        start = w * window_s
        end = (w + 1) * window_s
        lo = dispatch_s if dispatch_s > start else start
        hi = finish_s if finish_s < end else end
        out.append((w, hi - lo))
    return out


def _energy_lookup(chip_models):
    """Memoized ``(chip, workload, batch_size) -> joules`` closure.

    Wraps the exact ``model.energy_joules`` call the event core's hoisted
    service table uses, so the telemetry energy column sums the same
    per-batch floats the run's ``energy_joules`` total did.
    """
    memo: dict[tuple, float] = {}

    def energy_of(chip: int, workload: str, size: int) -> float:
        key = (chip, workload, size)
        value = memo.get(key)
        if value is None:
            value = float(chip_models[chip].energy_joules(workload, size))
            memo[key] = value
        return value

    return energy_of


def _check_window(window_s) -> float:
    """Validate and normalize a window width."""
    window_s = float(window_s)
    if not window_s > 0:
        raise ServingError(
            f"telemetry window must be positive, got {window_s}"
        )
    return window_s


def _window_slices(widx: np.ndarray, values: np.ndarray, n_win: int) -> list:
    """Group ``values`` by 0-based window index into per-window arrays."""
    sorter = np.argsort(widx, kind="stable")
    return _sorted_slices(widx[sorter], values[sorter], n_win)


def _sorted_slices(
    sorted_w: np.ndarray, sorted_v: np.ndarray, n_win: int
) -> list:
    """Per-window views of values already ordered by window index."""
    bounds = np.searchsorted(sorted_w, np.arange(n_win + 1))
    return [sorted_v[bounds[i]:bounds[i + 1]] for i in range(n_win)]


def _batch_energy(b_chip, b_codes, b_size, names, energy_of) -> np.ndarray:
    """Per-batch energy via memoized model lookups over unique triples.

    Collapses the batches to unique ``(chip, workload, batch size)``
    composite keys so the python-level ``energy_of`` call count is the
    number of distinct service-table cells, not the number of batches.
    """
    n_names = len(names)
    size_span = int(b_size.max()) + 1
    b_key = (b_chip * n_names + b_codes) * size_span + b_size
    max_key = int(b_key.max())
    if max_key < (1 << 20):
        # The key space (chips x workloads x sizes) is tiny in practice:
        # resolve through a dense table, skipping np.unique's O(n log n)
        # sort of the per-batch keys.
        table = np.zeros(max_key + 1, dtype=float)
        present = np.nonzero(np.bincount(b_key, minlength=max_key + 1))[0]
        for key in present.tolist():
            batch_size = key % size_span
            rest = key // size_span
            table[key] = energy_of(
                int(rest // n_names), names[int(rest % n_names)],
                int(batch_size),
            )
        return table[b_key]
    uniq_keys, inverse = np.unique(b_key, return_inverse=True)
    uniq_energy = np.empty(uniq_keys.size, dtype=float)
    for i, key in enumerate(uniq_keys.tolist()):
        batch_size = key % size_span
        rest = key // size_span
        uniq_energy[i] = energy_of(
            int(rest // n_names), names[int(rest % n_names)], int(batch_size)
        )
    return uniq_energy[inverse]


def _series_from_parts(
    *,
    latency: np.ndarray,
    aw: np.ndarray,
    dw: np.ndarray,
    fw: np.ndarray,
    req_chip: np.ndarray,
    b_chip: np.ndarray,
    b_disp: np.ndarray,
    b_fin: np.ndarray,
    b_dw: np.ndarray,
    b_fw: np.ndarray,
    b_energy: np.ndarray,
    num_chips: int,
    window_s: float,
    horizon_s: float,
    first_arrival_s: float,
    extra_aw: np.ndarray | None = None,
) -> TelemetrySeries:
    """Windowing core shared by every vectorized telemetry producer.

    ``extra_aw`` carries the arrival *window indices* of requests that
    never completed (lost/shed by a chaos incident): they count toward
    each window's arrivals — matching the streaming collector, which
    counts fed arrivals — but contribute to nothing else.

    Takes per-request latency/chip columns with their arrival/dispatch/
    finish *window indices* (``t // window_s``, computed by the caller —
    the emit path repeats batch-level indices instead of re-dividing
    per-request columns) plus per-batch occupancy/energy columns, all in
    *any* row order: counts become ``bincount`` histograms over window
    indices and float multisets are grouped per window and reduced
    inside :func:`_window_row`, which sorts first.  Row-order
    independence is what makes the ``run()`` emit-tap path, the
    record-derivation path and the sharded merge byte-identical.
    """
    w0 = int(first_arrival_s // window_s)
    last = max(int(horizon_s // window_s), int(fw.max()))
    if extra_aw is not None and extra_aw.size:
        last = max(last, int(extra_aw.max()))
    n_win = last - w0 + 1

    count_arrived = np.bincount(aw - w0, minlength=n_win)
    if extra_aw is not None and extra_aw.size:
        count_arrived = count_arrived + np.bincount(
            extra_aw - w0, minlength=n_win
        )
    count_finished = np.bincount(fw - w0, minlength=n_win)
    b_widx = b_dw - w0
    count_batches = np.bincount(b_widx, minlength=n_win)

    # Latency multiset of each window's completions.
    lat_groups = _window_slices(fw - w0, latency, n_win)
    # Energy and busy are both keyed by the batch dispatch window, so one
    # stable argsort serves both groupings (busy falls back to its own
    # sort only when a window-spanning batch rewrites its key list).
    b_sorter = np.argsort(b_widx, kind="stable")
    b_widx_sorted = b_widx[b_sorter]
    energy_groups = _sorted_slices(b_widx_sorted, b_energy[b_sorter], n_win)

    # Busy overlap: batches inside one window contribute finish - dispatch;
    # the rare window-spanning batch splits via the shared scalar helper.
    same = b_dw == b_fw
    spanning = np.nonzero(~same)[0]
    if spanning.size:
        span_w: list[int] = []
        span_v: list[float] = []
        for i in spanning.tolist():
            for w, overlap in _busy_overlaps(
                float(b_disp[i]), float(b_fin[i]), int(b_dw[i]), int(b_fw[i]),
                window_s,
            ):
                span_w.append(w - w0)
                span_v.append(overlap)
        busy_groups = _window_slices(
            np.concatenate([b_widx[same], np.asarray(span_w, dtype=np.int64)]),
            np.concatenate(
                [(b_fin - b_disp)[same], np.asarray(span_v, dtype=float)]
            ),
            n_win,
        )
    else:
        busy_groups = _sorted_slices(
            b_widx_sorted, (b_fin - b_disp)[b_sorter], n_win
        )

    # Per-chip boundary state: cumulative routed/dispatched requests give
    # queue depth, cumulative started/finished batches give in-flight.
    # (chip, window) histograms via bincount over a flat composite index —
    # np.add.at on 2-D targets is an order of magnitude slower.
    cells = num_chips * n_win

    def per_chip(chips, widx):
        return np.bincount(
            chips * n_win + widx, minlength=cells
        ).reshape(num_chips, n_win)

    routed = per_chip(req_chip, aw - w0)
    dispatched = per_chip(req_chip, dw - w0)
    started = per_chip(b_chip, b_dw - w0)
    finished = per_chip(b_chip, b_fw - w0)
    queue_depth = routed.cumsum(axis=1) - dispatched.cumsum(axis=1)
    inflight = started.cumsum(axis=1) - finished.cumsum(axis=1)

    # One C-level transpose+tolist per matrix instead of one ndarray
    # slice + tolist per window.
    arrived_list = count_arrived.tolist()
    finished_list = count_finished.tolist()
    batches_list = count_batches.tolist()
    depth_cols = queue_depth.T.tolist()
    inflight_cols = inflight.T.tolist()
    rows = [
        _window_row(
            w0 + i, window_s, num_chips,
            arrived_list[i], finished_list[i], batches_list[i],
            lat_groups[i], energy_groups[i], busy_groups[i],
            depth_cols[i], inflight_cols[i],
        )
        for i in range(n_win)
    ]
    return TelemetrySeries(window_s, int(num_chips), tuple(rows))


def _series_from_columns(
    *,
    arrival: np.ndarray,
    dispatch: np.ndarray,
    finish: np.ndarray,
    chip: np.ndarray,
    size: np.ndarray,
    codes: np.ndarray,
    names: tuple[str, ...],
    num_chips: int,
    energy_of,
    window_s: float,
    horizon_s: float,
    first_arrival_s: float,
) -> TelemetrySeries:
    """Windowed-series derivation from full per-request columns.

    Used by the ``run()`` record path and the sharded-stream merge:
    batches are recovered as unique ``(chip, dispatch)`` pairs (a chip is
    serial, so a dispatch instant identifies one batch) and the shared
    windowing core does the rest.
    """
    window_s = _check_window(window_s)
    arrival = np.ascontiguousarray(arrival, dtype=float)
    n = arrival.size
    if n == 0:
        return TelemetrySeries(window_s, int(num_chips), ())
    dispatch = np.ascontiguousarray(dispatch, dtype=float)
    finish = np.ascontiguousarray(finish, dtype=float)
    chip = np.ascontiguousarray(chip, dtype=np.int64)
    size = np.ascontiguousarray(size, dtype=np.int64)
    codes = np.ascontiguousarray(codes, dtype=np.int64)

    # Batch recovery: rows sorted by (chip, dispatch); a new batch starts
    # wherever either changes.
    order = np.lexsort((dispatch, chip))
    chip_sorted = chip[order]
    disp_sorted = dispatch[order]
    first_of_batch = np.empty(n, dtype=bool)
    first_of_batch[0] = True
    first_of_batch[1:] = (chip_sorted[1:] != chip_sorted[:-1]) | (
        disp_sorted[1:] != disp_sorted[:-1]
    )
    batch_rows = order[first_of_batch]
    dw = (dispatch // window_s).astype(np.int64)
    fw = (finish // window_s).astype(np.int64)
    return _series_from_parts(
        latency=finish - arrival,
        aw=(arrival // window_s).astype(np.int64),
        dw=dw,
        fw=fw,
        req_chip=chip,
        b_chip=chip[batch_rows],
        b_disp=dispatch[batch_rows],
        b_fin=finish[batch_rows],
        b_dw=dw[batch_rows],
        b_fw=fw[batch_rows],
        b_energy=_batch_energy(
            chip[batch_rows], codes[batch_rows], size[batch_rows],
            names, energy_of,
        ),
        num_chips=num_chips,
        window_s=window_s,
        horizon_s=horizon_s,
        first_arrival_s=first_arrival_s,
    )


def _series_from_emits(
    raw_batches,
    bulk_runs,
    names: tuple[str, ...],
    num_chips: int,
    energy_of,
    window_s: float,
    horizon_s: float,
    first_arrival_s: float,
    dropped_arrivals: np.ndarray | None = None,
) -> TelemetrySeries:
    """Windowed series straight from ``run()``'s captured emit structures.

    ``raw_batches`` holds the per-batch emit tuples
    ``(chip, dispatch, finish, size, workload, members)``; ``bulk_runs``
    holds ``(chip_ids, arrivals, finishes, codes)`` idle-disjoint runs
    whose columns are already numpy arrays.  Skipping the per-record
    round trip (build records, then unzip them back into columns) is
    what keeps telemetry-on ``run()`` overhead in the sub-microsecond
    per-request range; byte-identity with the record/merge paths holds
    because the multisets fed to the shared core are the same.

    Every per-batch column goes straight from the emit tuples into a
    numpy array via ``fromiter`` — no ``zip(*...)`` transposition, no
    flattened member list.  Those big young containers are not just
    allocation cost: every gen-0 garbage collection that fires while
    they are alive rescans them, which roughly doubled the measured
    overhead before they were eliminated.
    """
    window_s = _check_window(window_s)
    code_of = {name: code for code, name in enumerate(names)}
    lat_p, aw_p, dw_p, fw_p, chip_p = [], [], [], [], []
    b_chip_p, b_disp_p, b_fin_p = [], [], []
    b_dw_p, b_fw_p, b_energy_p = [], [], []
    if raw_batches:
        n_batches = len(raw_batches)

        def column(index: int, dtype) -> np.ndarray:
            return np.fromiter(
                map(operator.itemgetter(index), raw_batches), dtype, n_batches
            )

        b_chip = column(0, np.int64)
        b_disp = column(1, float)
        b_fin = column(2, float)
        b_size = column(3, np.int64)
        b_codes = np.fromiter(
            map(code_of.__getitem__, map(operator.itemgetter(4), raw_batches)),
            np.int64,
            n_batches,
        )
        # A batch's size is its member count, so the size column doubles
        # as the repeat vector for batch -> request expansion.
        counts = b_size
        total = int(counts.sum())
        arrivals = np.fromiter(
            itertools.chain.from_iterable(
                map(operator.itemgetter(0), map(operator.itemgetter(5), raw_batches))
            ),
            float,
            total,
        )
        b_dw = (b_disp // window_s).astype(np.int64)
        b_fw = (b_fin // window_s).astype(np.int64)
        lat_p.append(np.repeat(b_fin, counts) - arrivals)
        aw_p.append((arrivals // window_s).astype(np.int64))
        dw_p.append(np.repeat(b_dw, counts))
        fw_p.append(np.repeat(b_fw, counts))
        chip_p.append(np.repeat(b_chip, counts))
        b_chip_p.append(b_chip)
        b_disp_p.append(b_disp)
        b_fin_p.append(b_fin)
        b_dw_p.append(b_dw)
        b_fw_p.append(b_fw)
        b_energy_p.append(
            _batch_energy(b_chip, b_codes, b_size, names, energy_of)
        )
    for chip_ids, arrivals, finishes, codes in bulk_runs:
        # An idle-disjoint run: every request its own size-1 batch with
        # dispatch == arrival.
        arrivals = np.ascontiguousarray(arrivals, dtype=float)
        finishes = np.ascontiguousarray(finishes, dtype=float)
        chips = (
            np.full(arrivals.size, chip_ids, dtype=np.int64)
            if isinstance(chip_ids, int)
            else np.ascontiguousarray(chip_ids, dtype=np.int64)
        )
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        aw = (arrivals // window_s).astype(np.int64)
        fw = (finishes // window_s).astype(np.int64)
        lat_p.append(finishes - arrivals)
        aw_p.append(aw)
        dw_p.append(aw)
        fw_p.append(fw)
        chip_p.append(chips)
        b_chip_p.append(chips)
        b_disp_p.append(arrivals)
        b_fin_p.append(finishes)
        b_dw_p.append(aw)
        b_fw_p.append(fw)
        b_energy_p.append(
            _batch_energy(
                chips, codes, np.ones(arrivals.size, dtype=np.int64),
                names, energy_of,
            )
        )
    extra_aw = None
    if dropped_arrivals is not None and dropped_arrivals.size:
        # Lost/shed requests still arrived: count them into their arrival
        # windows so the series matches the streaming collector's fed-
        # arrival accounting.
        extra_aw = (dropped_arrivals // window_s).astype(np.int64)
    if not lat_p:
        if extra_aw is None:
            return TelemetrySeries(window_s, int(num_chips), ())
        # Every request dropped before any batch completed: the series is
        # arrival counts over otherwise-empty windows.
        w0 = int(first_arrival_s // window_s)
        last = max(int(horizon_s // window_s), int(extra_aw.max()))
        n_win = last - w0 + 1
        counts = np.bincount(extra_aw - w0, minlength=n_win).tolist()
        zeros = [0] * num_chips
        return TelemetrySeries(window_s, int(num_chips), tuple(
            _window_row(w0 + i, window_s, num_chips, counts[i], 0, 0,
                        [], [], [], zeros, zeros)
            for i in range(n_win)
        ))
    def cat(parts: list) -> np.ndarray:
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    return _series_from_parts(
        latency=cat(lat_p),
        aw=cat(aw_p),
        dw=cat(dw_p),
        fw=cat(fw_p),
        req_chip=cat(chip_p),
        b_chip=cat(b_chip_p),
        b_disp=cat(b_disp_p),
        b_fin=cat(b_fin_p),
        b_dw=cat(b_dw_p),
        b_fw=cat(b_fw_p),
        b_energy=cat(b_energy_p),
        num_chips=num_chips,
        window_s=window_s,
        horizon_s=horizon_s,
        first_arrival_s=first_arrival_s,
        extra_aw=extra_aw,
    )


def derive_series(result, window_s, chip_models) -> TelemetrySeries:
    """Windowed series derived post-hoc from a full-trace ``ServingResult``.

    ``chip_models`` are the per-chip service oracles the run used
    (``ServingSimulator._chip_models()``); the event core itself is never
    re-run, so deriving telemetry after the fact costs a single
    vectorized pass over the records.
    """
    records = result.records
    window_s = _check_window(window_s)
    if not records:
        return TelemetrySeries(window_s, result.num_chips, ())
    _ids, name_col, chip_col, arr_col, disp_col, fin_col, size_col = zip(
        *records
    )
    names = tuple(sorted(set(name_col)))
    code_of = {name: code for code, name in enumerate(names)}
    codes = np.fromiter(
        map(code_of.__getitem__, name_col), np.int64, len(records)
    )
    return _series_from_columns(
        arrival=np.asarray(arr_col, dtype=float),
        dispatch=np.asarray(disp_col, dtype=float),
        finish=np.asarray(fin_col, dtype=float),
        chip=np.asarray(chip_col, dtype=np.int64),
        size=np.asarray(size_col, dtype=np.int64),
        codes=codes,
        names=names,
        num_chips=result.num_chips,
        energy_of=_energy_lookup(chip_models),
        window_s=window_s,
        horizon_s=result.horizon_s,
        first_arrival_s=result.first_arrival_s,
    )


class _WindowAcc:
    """Raw accumulators of one still-open window in the streaming collector."""

    __slots__ = (
        "arrivals", "completions", "batches", "lat", "energy", "busy",
        "routed", "dispatched", "started", "finished",
    )

    def __init__(self, num_chips: int) -> None:
        self.arrivals = 0
        self.completions = 0
        self.batches = 0
        self.lat: list[float] = []
        self.energy: list[float] = []
        self.busy: list[float] = []
        self.routed = np.zeros(num_chips, dtype=np.int64)
        self.dispatched = np.zeros(num_chips, dtype=np.int64)
        self.started = np.zeros(num_chips, dtype=np.int64)
        self.finished = np.zeros(num_chips, dtype=np.int64)


class TelemetryCollector:
    """Incremental windowed-series builder for ``run_stream``.

    Taps three streams: fed arrival chunks (:meth:`on_arrivals`),
    per-batch emits (:meth:`on_batch`) and idle-disjoint bulk runs
    (:meth:`on_run`).  A window flushes to its final row as soon as it is
    provably complete — the feed and dispatch watermarks have both passed
    its end boundary *and* every request that arrived inside it has
    dispatched (so its chip, and hence the per-chip queue depths, are
    known).  Emit order guarantees dispatch times are non-decreasing
    across emits, which makes both watermarks sound.

    The finished series is byte-identical to :func:`derive_series` over
    the same run's records: both paths accumulate the same per-window
    value multisets and share :func:`_window_row`'s sorted reductions.
    """

    #: emit count between opportunistic flush attempts
    _FLUSH_EVERY = 4096

    def __init__(self, window_s, num_chips, chip_models, workload_names):
        self.window_s = _check_window(window_s)
        self.num_chips = int(num_chips)
        self._names = tuple(workload_names)
        self._energy_of = _energy_lookup(list(chip_models))
        self._pending: dict[int, _WindowAcc] = {}
        self._rows: list[dict] = []
        self._first: int | None = None
        self._next: int | None = None
        self._fed_idx = -1       # window index of the feed watermark
        self._disp_idx = -1      # window index of the dispatch watermark
        self._fed_flushed = 0    # fed arrivals inside flushed windows
        self._routed_flushed = 0  # dispatched-known arrivals inside them
        self._routed_cum = np.zeros(self.num_chips, dtype=np.int64)
        self._dispatched_cum = np.zeros(self.num_chips, dtype=np.int64)
        self._started_cum = np.zeros(self.num_chips, dtype=np.int64)
        self._finished_cum = np.zeros(self.num_chips, dtype=np.int64)
        self._emits = 0

    def _acc(self, window: int) -> _WindowAcc:
        """The (created-on-demand) accumulator of one window."""
        acc = self._pending.get(window)
        if acc is None:
            acc = self._pending[window] = _WindowAcc(self.num_chips)
        return acc

    def on_arrivals(self, arrivals) -> None:
        """Record one fed columnar chunk's arrival times (sorted)."""
        arr = np.asarray(arrivals, dtype=float)
        if arr.size == 0:
            return
        widx = (arr // self.window_s).astype(np.int64)
        if self._first is None:
            self._first = int(widx[0])
            self._next = self._first
        for w, count in zip(*(a.tolist() for a in np.unique(widx, return_counts=True))):
            self._acc(w).arrivals += count
        self._fed_idx = max(self._fed_idx, int(widx[-1]))
        self._flush()

    def on_batch(self, chip_id, dispatch_s, finish_s, size, workload,
                 members) -> None:
        """Record one dispatched batch (the ``emit`` tap)."""
        window_s = self.window_s
        wd = int(dispatch_s // window_s)
        wf = int(finish_s // window_s)
        acc_d = self._acc(wd)
        acc_d.batches += 1
        acc_d.started[chip_id] += 1
        acc_d.dispatched[chip_id] += size
        acc_d.energy.append(self._energy_of(chip_id, workload, size))
        acc_f = self._acc(wf)
        acc_f.completions += size
        acc_f.finished[chip_id] += 1
        lat = acc_f.lat
        for arrival_s in members[0]:
            lat.append(finish_s - arrival_s)
            self._acc(int(arrival_s // window_s)).routed[chip_id] += 1
        if wd == wf:
            acc_d.busy.append(finish_s - dispatch_s)
        else:
            for w, overlap in _busy_overlaps(
                dispatch_s, finish_s, wd, wf, window_s
            ):
                self._acc(w).busy.append(overlap)
        if wd > self._disp_idx:
            self._disp_idx = wd
        self._emits += 1
        if not self._emits % self._FLUSH_EVERY:
            self._flush()

    def _add_chip_counts(self, attr: str, widx: np.ndarray, chips) -> None:
        """Bump a per-chip counter per ``(window, chip)`` occurrence."""
        if isinstance(chips, (int, np.integer)):
            for w, count in zip(
                *(a.tolist() for a in np.unique(widx, return_counts=True))
            ):
                getattr(self._acc(w), attr)[chips] += count
        else:
            key = widx * self.num_chips + chips
            for k, count in zip(
                *(a.tolist() for a in np.unique(key, return_counts=True))
            ):
                getattr(self._acc(k // self.num_chips), attr)[
                    k % self.num_chips
                ] += count

    def on_run(self, chip_ids, arrivals, finishes, codes) -> None:
        """Record one idle-disjoint bulk run (the ``emit_run`` tap).

        Every request of a run is a singleton batch served at its arrival
        instant (``dispatch == arrival``, batch size 1).
        """
        window_s = self.window_s
        arr = np.asarray(arrivals, dtype=float)
        if arr.size == 0:
            return
        fin = np.asarray(finishes, dtype=float)
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        aw = (arr // window_s).astype(np.int64)
        fw = (fin // window_s).astype(np.int64)
        scalar_chip = isinstance(chip_ids, (int, np.integer))
        chips = int(chip_ids) if scalar_chip else np.ascontiguousarray(
            chip_ids, dtype=np.int64
        )
        lat = fin - arr

        # Completions and the latency multiset, grouped by finish window.
        sorter = np.argsort(fw, kind="stable")
        fw_sorted = fw[sorter]
        lat_sorted = lat[sorter]
        uniq_f, starts = np.unique(fw_sorted, return_index=True)
        bounds = np.append(starts, fw_sorted.size)
        for i, w in enumerate(uniq_f.tolist()):
            acc = self._acc(w)
            acc.completions += int(bounds[i + 1] - bounds[i])
            acc.lat.extend(lat_sorted[bounds[i]:bounds[i + 1]].tolist())

        # Batch count per dispatch (== arrival) window.
        for w, count in zip(*(a.tolist() for a in np.unique(aw, return_counts=True))):
            self._acc(w).batches += count

        # Per-chip counters: routed/dispatched/started key on the arrival
        # window, finished on the finish window.
        self._add_chip_counts("routed", aw, chips)
        self._add_chip_counts("dispatched", aw, chips)
        self._add_chip_counts("started", aw, chips)
        self._add_chip_counts("finished", fw, chips)

        # Per-singleton energy over unique (chip, workload) pairs.
        n_names = len(self._names)
        key = chips * n_names + codes  # broadcasts over a scalar chip too
        uniq_keys, inverse = np.unique(key, return_inverse=True)
        uniq_energy = np.empty(uniq_keys.size, dtype=float)
        for i, k in enumerate(uniq_keys.tolist()):
            uniq_energy[i] = self._energy_of(
                int(k // n_names), self._names[int(k % n_names)], 1
            )
        energy = uniq_energy[inverse]
        sorter_a = np.argsort(aw, kind="stable")
        aw_sorted = aw[sorter_a]
        energy_sorted = energy[sorter_a]
        uniq_a, starts_a = np.unique(aw_sorted, return_index=True)
        bounds_a = np.append(starts_a, aw_sorted.size)
        for i, w in enumerate(uniq_a.tolist()):
            self._acc(w).energy.extend(
                energy_sorted[bounds_a[i]:bounds_a[i + 1]].tolist()
            )

        # Busy overlap: singleton service time, split when spanning.
        same = aw == fw
        lat_same = lat[same]
        aw_same = aw[same]
        sorter_b = np.argsort(aw_same, kind="stable")
        aw_b = aw_same[sorter_b]
        lat_b = lat_same[sorter_b]
        uniq_b, starts_b = np.unique(aw_b, return_index=True)
        bounds_b = np.append(starts_b, aw_b.size)
        for i, w in enumerate(uniq_b.tolist()):
            self._acc(w).busy.extend(lat_b[bounds_b[i]:bounds_b[i + 1]].tolist())
        spanning = np.nonzero(~same)[0]
        for i in spanning.tolist():
            for w, overlap in _busy_overlaps(
                float(arr[i]), float(fin[i]), int(aw[i]), int(fw[i]), window_s
            ):
                self._acc(w).busy.append(overlap)

        self._disp_idx = max(self._disp_idx, int(aw[-1]))
        self._flush()

    def _emit_row(self, window: int, acc: _WindowAcc) -> None:
        """Finalize one window into its row and advance cumulative state."""
        self._fed_flushed += acc.arrivals
        self._routed_flushed += int(acc.routed.sum())
        self._routed_cum += acc.routed
        self._dispatched_cum += acc.dispatched
        self._started_cum += acc.started
        self._finished_cum += acc.finished
        self._rows.append(_window_row(
            window, self.window_s, self.num_chips,
            acc.arrivals, acc.completions, acc.batches,
            acc.lat, acc.energy, acc.busy,
            (self._routed_cum - self._dispatched_cum).tolist(),
            (self._started_cum - self._finished_cum).tolist(),
        ))

    def _flush(self) -> None:
        """Flush every window whose content is provably complete."""
        if self._next is None:
            return
        limit = min(self._fed_idx, self._disp_idx)
        while self._next < limit:
            window = self._next
            acc = self._pending.get(window)
            if acc is None:
                acc = _WindowAcc(self.num_chips)
            if (
                self._fed_flushed + acc.arrivals
                != self._routed_flushed + int(acc.routed.sum())
            ):
                return  # a request that arrived <= end(window) is still queued
            self._emit_row(window, acc)
            self._pending.pop(window, None)
            self._next = window + 1

    def finalize(self, horizon_s: float) -> TelemetrySeries:
        """Flush all remaining windows and return the finished series."""
        if self._first is None or self._next is None:
            return TelemetrySeries(self.window_s, self.num_chips, ())
        last = int(horizon_s // self.window_s)
        if self._pending:
            last = max(last, max(self._pending))
        for window in range(self._next, last + 1):
            acc = self._pending.pop(window, None)
            if acc is None:
                acc = _WindowAcc(self.num_chips)
            self._emit_row(window, acc)
        self._next = last + 1
        return TelemetrySeries(self.window_s, self.num_chips, tuple(self._rows))


def request_spans(result) -> tuple[dict, ...]:
    """Per-request lifecycle spans of a full-trace run.

    One dict per request (keys: :data:`SPAN_FIELDS`) splitting its life
    into the queue-wait segment (arrival -> dispatch) and the service
    segment (dispatch -> finish), in request-id order.  Needs the
    per-request records only ``ServingSimulator.run`` keeps; streamed
    results hold aggregates and are rejected.
    """
    records = getattr(result, "records", None)
    if records is None:
        raise ServingError(
            "request spans need per-request records; use "
            "ServingSimulator.run() (run_stream keeps only aggregates)"
        )
    return tuple(
        {
            "request_id": record.request_id,
            "workload": record.workload,
            "chip": record.chip,
            "arrival_s": record.arrival_s,
            "dispatch_s": record.dispatch_s,
            "finish_s": record.finish_s,
            "queue_wait_s": record.dispatch_s - record.arrival_s,
            "service_s": record.finish_s - record.dispatch_s,
            "latency_s": record.finish_s - record.arrival_s,
            "batch_size": record.batch_size,
        }
        for record in records
    )
