"""Discrete-event core of the request-level serving simulator.

The simulator advances request arrivals, chip completions and batching
wake-ups over a fleet of backend chips (all CogSys by default, or any mix
of registry backends).  Three pluggable pieces define a run:

* the request stream (:mod:`repro.serving.traffic` or a recorded trace,
  :mod:`repro.serving.trace`),
* the batching policy (:mod:`repro.serving.batching`),
* the fleet: per-chip backends, routing policy and the memoized
  service-time model (:mod:`repro.serving.fleet`).

The hot path is built for million-request traces: arrivals are consumed
from pre-sorted columnar chunks by index (no per-request heap entries —
the event heap only ever holds one completion/wake-up per chip), chip
queues are slot-keyed ``{workload: group}`` maps whose groups pop a
dispatched batch as one list slice, routing for the built-in routers is
inlined integer comparison, and the ``(chip model, workload, batch size)``
service/energy table is memoized outside the loop.  On top of that, the
*chunked clock advance* scans each columnar chunk once (vectorized) for
idle-disjoint runs — maximal spans where every arrival strictly outlives
the previous request's service — and serves whole runs without touching
the event heap at all.  Third-party routers and batching policies that
only implement the generic ``route``/``select`` interfaces still work —
the core transparently falls back to a materialized per-chip queue for
them (``vectorize=False`` forces the scalar path everywhere, which the
property harness uses to prove the chunked advance changes no bytes).

Fleets whose router partitions the chips into independent sub-fleets can
additionally run with ``shards > 1`` (see :mod:`repro.serving.sharding`):
each component simulates in isolation — optionally on worker processes —
and the results merge deterministically.

Determinism: events order by ``(time, kind, sequence)`` with arrivals
before completions before wake-ups at an instant, routing and batching
policies are deterministic functions of observable state, and all
randomness lives in the seeded traffic generators — so the same seed and
scenario always reproduce the identical per-request latency trace.

Invariants the property harness (``tests/serving/test_invariants.py``)
pins across every policy/router: conservation (every arrival completes
exactly once), causality (``arrival <= dispatch <= finish`` per request),
and per-chip non-overlap (a chip never executes two batches at once).
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from bisect import bisect_right, insort
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.errors import ServingError
from repro.serving.batching import (
    Batch,
    BatchingPolicy,
    ContinuousBatching,
    FixedSizeBatching,
    NoBatching,
)
from repro.serving.chaos import (
    OP_FAIL,
    OP_RECOVER,
    OP_SLOW_END,
    OP_SLOW_START,
    ChaosTimeline,
)
from repro.serving.fleet import (
    FixedOwnersRouter,
    Fleet,
    FleetServiceModel,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    SymbolicAffinityRouter,
    WorkloadAffinityRouter,
)
from repro.serving.traffic import Request

if TYPE_CHECKING:
    from repro.serving.telemetry import TelemetrySeries

__all__ = [
    "RequestRecord",
    "ServingResult",
    "StreamedServingResult",
    "ServingSimulator",
    "columnar_chunks",
]

# Event kinds, in tie-breaking order: arrivals first so load-aware routers
# and batch formation see every request that lands at an instant, then chip
# completions, then batching wake-ups, then chaos incidents — a batch that
# finishes exactly at a failure instant completes normally, and requests
# arriving exactly then are enqueued first (and therefore shed).
_ARRIVAL, _FREE, _WAKE, _CHAOS = 0, 1, 2, 3

#: shard-fallback reason recorded when a chaos timeline forces the
#: single-shard path (lost/shed accounting and fleet-wide power caps are
#: global, so components cannot simulate independently)
CHAOS_SHARD_FALLBACK = (
    "chaos timeline couples shards (incident accounting is fleet-global)"
)

#: request-index chunk size used when columnarizing in-memory streams
DEFAULT_CHUNK_SIZE = 65536

#: shortest idle-disjoint run the chunked clock advance will take over; a
#: run's fixed vectorization overhead (~a dozen small array ops) beats the
#: scalar loop only past this length, so shorter runs stay on the exact
#: same scalar path they always used
BULK_MIN_RUN = 16

#: shortest saturated arrival run the coupled water-fill dispatch will
#: take over; below this the per-span setup (two bisects, a depth scan,
#: and per-chip strided gathers plus a stable segment sort) costs about
#: what routing the arrivals through the scalar JSQ loop does, so short
#: bursts — shallow-batch regimes dispatch between every handful of
#: arrivals — stay scalar and only deep standing queues vectorize
FILL_MIN_RUN = 48

#: smallest batch the streaming accumulators turn columnar; batches this
#: large amortize the fixed cost of the array round-trip, smaller ones
#: stay on the per-member append loop
EMIT_COLUMNAR_MIN = 16


class RequestRecord(NamedTuple):
    """Lifecycle of one request through the serving system.

    A named tuple rather than a dataclass: full-trace runs create one per
    request, so cheap construction is part of the event core's throughput
    budget.
    """

    request_id: int
    workload: str
    chip: int
    arrival_s: float
    dispatch_s: float
    finish_s: float
    batch_size: int

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent queued before the batch launched."""
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Chip-occupancy time of the batch the request rode in."""
        return self.finish_s - self.dispatch_s


class _FleetRunStats:
    """Derived metrics shared by full-trace and streamed serving results."""

    @property
    def span_s(self) -> float:
        """Active span of the run: first arrival to last completion."""
        return max(self.horizon_s - self.first_arrival_s, 0.0)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the active span."""
        return self.num_requests / self.span_s if self.span_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch."""
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across the fleet over the active span."""
        if self.span_s <= 0 or self.num_chips == 0:
            return 0.0
        return min(1.0, sum(self.chip_busy_s) / (self.span_s * self.num_chips))


@dataclass(frozen=True)
class ServingResult(_FleetRunStats):
    """Everything a serving run produced, ready for the metrics layer."""

    records: tuple[RequestRecord, ...]
    num_chips: int
    chip_busy_s: tuple[float, ...]
    chip_requests: tuple[int, ...]
    energy_joules: float
    num_batches: int
    horizon_s: float
    first_arrival_s: float = 0.0
    #: backend name of every chip (empty for legacy constructions)
    chip_backends: tuple[str, ...] = ()
    provenance: dict = field(default_factory=dict)
    #: windowed time series, present when the run asked for telemetry
    telemetry: "TelemetrySeries | None" = None
    #: requests whose in-flight batch a chip failure killed
    requests_lost: int = 0
    #: requests dropped from a failed chip's queue (or stranded on a chip
    #: that never recovered)
    requests_shed: int = 0
    #: realized incident log of the run's chaos timeline, in event order
    incidents: tuple[dict, ...] = ()

    @property
    def num_requests(self) -> int:
        """Requests served."""
        return len(self.records)

    @property
    def requests_arrived(self) -> int:
        """Requests offered to the fleet: completed + lost + shed."""
        return len(self.records) + self.requests_lost + self.requests_shed

    def latencies_s(self) -> list[float]:
        """Per-request end-to-end latencies, in request-id order."""
        return [record.latency_s for record in self.records]

    def latency_values(self) -> np.ndarray:
        """End-to-end latencies as a float array, in request-id order."""
        return np.array([record.latency_s for record in self.records], dtype=float)

    def queue_delay_values(self) -> np.ndarray:
        """Queueing delays as a float array, in request-id order."""
        return np.array(
            [record.queue_delay_s for record in self.records], dtype=float
        )

    def workload_latency_values(self) -> dict[str, np.ndarray]:
        """Latency arrays per workload, requests in request-id order."""
        grouped: dict[str, list[float]] = {}
        for record in self.records:
            grouped.setdefault(record.workload, []).append(record.latency_s)
        return {
            workload: np.array(values, dtype=float)
            for workload, values in grouped.items()
        }


@dataclass(frozen=True)
class StreamedServingResult(_FleetRunStats):
    """Aggregate outcome of a streamed run (no per-request record objects).

    Produced by :meth:`ServingSimulator.run_stream`, which serves arrivals
    from columnar chunks and keeps only typed latency arrays — so a
    multi-million-request trace replays in bounded memory.  Latency arrays
    are in *completion (dispatch) order*, which percentile/goodput metrics
    are invariant to; anything needing per-request identity should use
    :meth:`ServingSimulator.run` instead.
    """

    num_requests: int
    num_chips: int
    chip_busy_s: tuple[float, ...]
    chip_requests: tuple[int, ...]
    energy_joules: float
    num_batches: int
    horizon_s: float
    first_arrival_s: float
    chip_backends: tuple[str, ...]
    latency_s: np.ndarray
    queue_delay_s: np.ndarray
    workload_latency_s: Mapping[str, np.ndarray]
    chip_latency_s: tuple[np.ndarray, ...]
    provenance: dict = field(default_factory=dict)
    #: windowed time series, present when the run asked for telemetry
    telemetry: "TelemetrySeries | None" = None
    #: requests whose in-flight batch a chip failure killed
    requests_lost: int = 0
    #: requests dropped from a failed chip's queue (or stranded on a chip
    #: that never recovered)
    requests_shed: int = 0
    #: realized incident log of the run's chaos timeline, in event order
    incidents: tuple[dict, ...] = ()

    @property
    def requests_arrived(self) -> int:
        """Requests offered to the fleet: completed + lost + shed."""
        return self.num_requests + self.requests_lost + self.requests_shed

    def latencies_s(self) -> list[float]:
        """Per-request end-to-end latencies, in completion order."""
        return self.latency_s.tolist()

    def latency_values(self) -> np.ndarray:
        """End-to-end latencies as a float array, in completion order."""
        return self.latency_s

    def queue_delay_values(self) -> np.ndarray:
        """Queueing delays as a float array, in completion order."""
        return self.queue_delay_s

    def workload_latency_values(self) -> Mapping[str, np.ndarray]:
        """Latency arrays per workload, requests in completion order."""
        return self.workload_latency_s


class _Group:
    """One workload's queued ``(arrival_s, request_id)`` entries on a chip.

    Storage is columnar — parallel ``arrs``/``rids`` lists plus a
    consumed-prefix cursor — so bulk producers (the water-fill span path)
    extend whole numpy columns without building one tuple per request, and
    a dispatched batch pops off the front as two slices (``popn``) that
    flow to ``emit`` consumers as ``(arrivals, request_ids)`` columns.
    The consumed prefix is compacted away once it dominates the lists so
    saturated runs stay memory-bounded.  Exposes the read-only sequence
    surface batching-policy ``plan`` implementations rely on (``len``,
    indexing from the logical head, iteration), yielding ``(arrival_s,
    request_id)`` tuples exactly as before.
    """

    __slots__ = ("arrs", "rids", "head")

    #: consumed-prefix length beyond which ``popn`` considers compacting
    _COMPACT_MIN = 4096

    def __init__(self) -> None:
        self.arrs: list[float] = []
        self.rids: list[int] = []
        self.head = 0

    def __len__(self) -> int:
        return len(self.arrs) - self.head

    def __getitem__(self, index):
        if type(index) is int:
            # ``plan`` fast paths read the head entry once per group per
            # dispatch, so the integer case leads.
            if index < 0:
                index += len(self.arrs) - self.head
                if index < 0:
                    raise IndexError("group index out of range")
            at = self.head + index
            return (self.arrs[at], self.rids[at])
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self.arrs) - self.head)
            head = self.head
            return list(
                zip(
                    self.arrs[head + start : head + stop : step],
                    self.rids[head + start : head + stop : step],
                )
            )
        if index < 0:
            index += len(self.arrs) - self.head
            if index < 0:
                raise IndexError("group index out of range")
        at = self.head + index
        return (self.arrs[at], self.rids[at])

    def __iter__(self):
        return iter(zip(self.arrs[self.head :], self.rids[self.head :]))

    def append(self, arrival_s: float, request_id: int) -> None:
        self.arrs.append(arrival_s)
        self.rids.append(request_id)

    def popn(self, count: int) -> tuple[list[float], list[int]]:
        """Pop the first ``count`` entries as an ``(arrivals, ids)`` pair."""
        head = self.head
        end = head + count
        arrs = self.arrs
        rids = self.rids
        if count < 0 or end > len(arrs):
            raise ServingError(
                f"batch of {count} requested from a queue of {len(arrs) - head}"
            )
        members = (arrs[head:end], rids[head:end])
        if end == len(arrs):
            arrs.clear()
            rids.clear()
            self.head = 0
        else:
            self.head = end
            if end > self._COMPACT_MIN and end * 2 >= len(arrs):
                del arrs[:end]
                del rids[:end]
                self.head = 0
        return members


class _SlotChip:
    """Chip state with a slot-keyed queue (fast batching-policy path).

    ``groups`` maps workload name to the queued ``(arrival_s, request_id)``
    entries of that workload, in arrival order; insertion order of the keys
    is first-occurrence order within the current queue (emptied keys are
    deleted), which is exactly the group order the generic ``select`` path
    observes.
    """

    __slots__ = (
        "chip_id", "busy", "inflight", "groups", "depth", "pending", "busy_s",
        "served", "pending_wake_s", "queue", "pending_emit",
    )

    def __init__(self, chip_id: int) -> None:
        self.chip_id = chip_id
        self.busy = False
        self.inflight = 0
        self.groups: dict[str, _Group] = {}
        self.depth = 0
        # queued + in-flight, maintained incrementally so load-aware
        # routing is one attribute read instead of a property call
        self.pending = 0
        self.busy_s = 0.0
        self.served = 0
        # Earliest batching wake-up already in the event heap, if any —
        # lets dispatch skip pushing duplicates for an unchanged deadline.
        self.pending_wake_s: float | None = None
        self.queue = None  # generic-path queue, unused on the fast path
        # Chaos runs defer emission/accounting to completion time; the
        # in-flight batch parks here until its FREE event proves it lived.
        self.pending_emit: tuple | None = None

    @property
    def queue_depth(self) -> int:
        """Requests queued on this chip (excluding the executing batch)."""
        return self.depth


class _ListChip:
    """Chip state with a materialized queue (generic ``select`` path)."""

    __slots__ = (
        "chip_id", "busy", "inflight", "queue", "pending", "busy_s", "served",
        "pending_wake_s", "pending_emit",
    )

    def __init__(self, chip_id: int) -> None:
        self.chip_id = chip_id
        self.busy = False
        self.inflight = 0
        self.queue: list[Request] = []
        self.pending = 0
        self.busy_s = 0.0
        self.served = 0
        self.pending_wake_s: float | None = None
        self.pending_emit: tuple | None = None

    @property
    def queue_depth(self) -> int:
        """Requests queued on this chip (excluding the executing batch)."""
        return len(self.queue)


class _DepthIndex:
    """Depth-bucket index over per-chip ``pending`` for O(1) JSQ routing.

    ``buckets[depth]`` holds the chip ids whose ``pending`` equals
    ``depth``, in ascending id order, so :meth:`take` returns exactly the
    ``(pending, chip_id)`` minimum a linear scan over the fleet would
    find — without the O(num_chips) scan per arrival.  ``take`` re-files
    the taken chip one bucket deeper because every route is immediately
    followed by ``pending += 1`` on the chosen chip; :meth:`move` re-files
    a chip whose depth dropped when a batch completed.  ``min_depth`` is a
    lower bound advanced lazily by ``take`` (completions only ever lower
    it), so buckets left empty cost one dict probe each, once.
    """

    __slots__ = ("chips", "buckets", "min_depth")

    def __init__(self, chips: list) -> None:
        self.chips = chips
        self.rebuild()

    def rebuild(self) -> None:
        """Re-derive every bucket from the chips' current ``pending``."""
        buckets: dict[int, list[int]] = {}
        for chip in self.chips:
            buckets.setdefault(chip.pending, []).append(chip.chip_id)
        self.buckets = buckets
        self.min_depth = min(buckets)

    def take(self):
        """Pop the ``(pending, chip_id)``-minimal chip and re-file it +1."""
        buckets = self.buckets
        depth = self.min_depth
        bucket = buckets.get(depth)
        while not bucket:
            depth += 1
            bucket = buckets.get(depth)
        self.min_depth = depth
        chip_id = bucket.pop(0)
        upper = buckets.get(depth + 1)
        if upper is None:
            buckets[depth + 1] = [chip_id]
        else:
            insort(upper, chip_id)
        return self.chips[chip_id]

    def move(self, chip_id: int, old_depth: int, new_depth: int) -> None:
        """Re-file ``chip_id`` after its ``pending`` changed arbitrarily."""
        self.buckets[old_depth].remove(chip_id)
        bucket = self.buckets.get(new_depth)
        if bucket is None:
            self.buckets[new_depth] = [chip_id]
        else:
            insort(bucket, chip_id)
        if new_depth < self.min_depth:
            self.min_depth = new_depth


#: policies whose dispatch-shortcut attributes (``single_group_cap``,
#: ``eager_singleton``) are known to agree with their ``plan``/``select``
_BUILTIN_POLICIES = (NoBatching, FixedSizeBatching, ContinuousBatching)


def _plan_method(policy: BatchingPolicy):
    """``(plan, shortcuts_trusted)`` for the policy, or ``(None, False)``.

    The fast path applies only when the policy actually overrides
    :meth:`BatchingPolicy.plan` and does not override ``select`` *below*
    the class providing that plan — a subclass replacing ``select`` while
    inheriting ``plan`` (e.g. a test double) must keep its ``select``
    semantics authoritative.  ``shortcuts_trusted`` is True only when the
    resolved plan belongs to a built-in policy class: the single-group and
    eager-singleton shortcut attributes are promises about that exact
    plan, and a subclass overriding ``plan`` while inheriting the parent's
    attributes must not have its logic silently bypassed.
    """
    mro = type(policy).__mro__
    plan_index = next(
        (index for index, cls in enumerate(mro) if "plan" in vars(cls)), None
    )
    if plan_index is None or mro[plan_index] is BatchingPolicy:
        return None, False
    select_index = next(
        (index for index, cls in enumerate(mro) if "select" in vars(cls)), None
    )
    if select_index is not None and select_index < plan_index:
        return None, False
    return policy.plan, mro[plan_index] in _BUILTIN_POLICIES


def columnar_chunks(
    requests: Iterable[Request], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterable[tuple[list[float], list[str], list[int]]]:
    """Columnarize a request iterable into ``(arrivals, workloads, ids)`` chunks.

    Adapter from object streams to the columnar form
    :meth:`ServingSimulator.run_stream` consumes; the input must already be
    sorted by ``(arrival_s, request_id)``.
    """
    if chunk_size < 1:
        raise ServingError(f"chunk_size must be positive, got {chunk_size}")
    arrivals: list[float] = []
    workloads: list[str] = []
    ids: list[int] = []
    for request in requests:
        arrivals.append(request.arrival_s)
        workloads.append(request.workload)
        ids.append(request.request_id)
        if len(arrivals) >= chunk_size:
            yield arrivals, workloads, ids
            arrivals, workloads, ids = [], [], []
    if arrivals:
        yield arrivals, workloads, ids


def _tap_arrival_chunks(chunks, collector):
    """Yield columnar chunks unchanged while feeding arrivals to telemetry."""
    for chunk in chunks:
        collector.on_arrivals(chunk[0])
        yield chunk


def _tap_emits(emit, emit_run, collector):
    """Wrap the stream emit callbacks so the collector sees every batch."""

    def tapped_emit(chip_id, dispatch_s, finish_s, size, workload, members):
        emit(chip_id, dispatch_s, finish_s, size, workload, members)
        collector.on_batch(chip_id, dispatch_s, finish_s, size, workload, members)

    def tapped_emit_run(chip_ids, arrivals, finishes, names, codes, run_ids):
        emit_run(chip_ids, arrivals, finishes, names, codes, run_ids)
        collector.on_run(chip_ids, arrivals, finishes, codes)

    return tapped_emit, tapped_emit_run


class ServingSimulator:
    """Run request streams against a fleet of backend chips."""

    def __init__(
        self,
        service_model=None,
        fleet: Fleet | None = None,
        batching_policy: BatchingPolicy | None = None,
        vectorize: bool = True,
        chaos: ChaosTimeline | None = None,
    ) -> None:
        self.fleet = fleet or Fleet()
        self.service_model = service_model or FleetServiceModel(fleet=self.fleet)
        self.batching_policy = batching_policy or NoBatching()
        #: enable the chunked clock advance (vectorized idle-disjoint runs);
        #: False forces the scalar event loop everywhere, which the
        #: equivalence harness uses to prove the two paths agree byte-for-byte
        self.vectorize = bool(vectorize)
        if chaos is not None and not isinstance(chaos, ChaosTimeline):
            raise ServingError(
                f"chaos must be a ChaosTimeline, got {type(chaos).__name__}"
            )
        #: incident timeline injected into every run; an empty timeline
        #: normalizes to None so "no incidents" is exactly the chaos-free
        #: code path (zero cost when off, byte-for-byte)
        self.chaos = chaos if chaos else None
        if self.chaos is not None:
            self.chaos.compile(self.fleet.num_chips)  # validate chip ids now

    def _chip_models(self) -> list:
        """Per-chip service oracles, validated against the fleet shape."""
        model = self.service_model
        if isinstance(model, FleetServiceModel):
            if model.chip_backends != self.fleet.chip_backends:
                raise ServingError(
                    "service model backends "
                    f"{list(model.chip_backends)} do not match the fleet's "
                    f"{list(self.fleet.chip_backends)}"
                )
            return [model.for_chip(chip) for chip in range(self.fleet.num_chips)]
        if self.fleet.is_heterogeneous:
            raise ServingError(
                "a heterogeneous fleet needs a FleetServiceModel (or pass "
                "service_model=None to build one from the fleet)"
            )
        model_backend = getattr(model, "backend_name", None)
        fleet_backend = self.fleet.chip_backends[0]
        if model_backend is not None and model_backend != fleet_backend:
            raise ServingError(
                f"service model answers for backend '{model_backend}' but the "
                f"fleet's chips are '{fleet_backend}'"
            )
        return [model] * self.fleet.num_chips

    def _make_router(self, workloads: tuple[str, ...], chip_models: list):
        """The fleet router plus the lazily-resolved symbolic oracle."""

        def symbolic_fraction_of(workload: str) -> float:
            """Batch-1 symbolic share on the fleet's reference (baseline) backend.

            Resolved lazily: only symbolic-affinity routing calls this, so
            other routers never touch the backend registry.
            """
            reference_model = chip_models[self.fleet.reference_chip]
            report = getattr(reference_model, "report", None)
            if report is None:
                raise ServingError(
                    "symbolic_affinity routing needs a service model that "
                    "exposes report() (ExecutionCache or FleetServiceModel), "
                    f"got {type(reference_model).__name__}"
                )
            return report(workload, 1).symbolic_fraction

        return self.fleet.make_router(
            workloads, symbolic_fraction_of=symbolic_fraction_of
        )

    def _provenance(self, num_requests: int, event_paths: dict | None = None) -> dict:
        """The run-configuration dict every result carries.

        ``event_paths`` is the routing-path attribution ``_simulate`` left
        behind for the run the provenance describes (callers pass it
        explicitly rather than reading simulator state so a sharded run
        never reports a sub-simulation's counters as its own).  Coupled
        (JSQ) fleets additionally record which engine served them —
        ``water_fill`` for the vectorized saturated-span dispatch,
        ``scalar`` when ``vectorize=False`` forces the reference loop.
        """
        provenance = {
            "num_requests": num_requests,
            "num_chips": self.fleet.num_chips,
            "router": self.fleet.router,
            "backends": list(dict.fromkeys(self.fleet.chip_backends)),
            "batching_policy": self.batching_policy.name,
            "scheduler": self.service_model.scheduler,
            "cached_reports": self.service_model.cached_reports,
        }
        if self.fleet.router == "jsq":
            # A chaos timeline disables the water-fill span (failures can
            # interrupt a span mid-flight), so coupled runs report the
            # scalar engine they actually used.
            provenance["coupled_engine"] = (
                "water_fill" if self.vectorize and self.chaos is None
                else "scalar"
            )
        if self.chaos is not None:
            provenance["chaos"] = {
                "incidents": len(self.chaos.incidents),
                "windows": list(self.chaos.windows()),
            }
        if event_paths is not None:
            provenance["event_paths"] = dict(event_paths)
        return provenance

    def _attach_telemetry(self, result: ServingResult, telemetry_window_s):
        """Derive and attach the windowed series to a sharded run's result.

        Post-hoc derivation from the (already merged, already sorted)
        records: the event core never sees the telemetry request, and the
        sharded path inherits byte-identity for free because its records
        are byte-identical to the single-shard run's (which derives the
        same series directly from its captured emit structures).
        """
        if telemetry_window_s is None:
            return result
        from repro.serving.telemetry import derive_series

        series = derive_series(result, telemetry_window_s, self._chip_models())
        return replace(result, telemetry=series)

    def run(
        self,
        requests: Sequence[Request],
        shards: int = 1,
        shard_workers: int | None = None,
        telemetry_window_s: float | None = None,
    ) -> ServingResult:
        """Simulate ``requests`` to completion and return the full trace.

        ``shards > 1`` partitions router-independent sub-fleets into
        per-shard simulations (see :mod:`repro.serving.sharding`) whose
        merged records are identical to the single-shard run.

        ``telemetry_window_s`` additionally derives the windowed
        time-series (:mod:`repro.serving.telemetry`) from the finished
        records and attaches it as ``result.telemetry``; ``None`` (the
        default) skips every telemetry code path.
        """
        if not requests:
            raise ServingError("cannot simulate an empty request stream")
        if shards != 1:
            if self.chaos is not None:
                # Incident accounting is fleet-global, so a timeline forces
                # the single-shard path — recorded, never silent.
                result = self.run(
                    requests, telemetry_window_s=telemetry_window_s
                )
                result.provenance.update({
                    "shards": shards,
                    "shards_effective": 1,
                    "shard_fallback": CHAOS_SHARD_FALLBACK,
                })
                return result
            from repro.serving.sharding import run_sharded

            return self._attach_telemetry(
                run_sharded(self, requests, shards=shards, workers=shard_workers),
                telemetry_window_s,
            )
        stream = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        ids = [request.request_id for request in stream]
        if len(set(ids)) != len(ids):
            raise ServingError("request stream contains duplicate request ids")
        workloads = tuple(sorted({request.workload for request in stream}))

        raw_batches: list[tuple] = []
        bulk_runs: list[tuple] = []

        def emit(*batch):
            raw_batches.append(batch)

        def emit_run(chip_ids, arrivals, finishes, names, codes, run_ids):
            bulk_runs.append((chip_ids, arrivals, finishes, names, codes, run_ids))

        # One pre-sorted columnar chunk: run() already holds the whole list.
        chunks = [(
            [request.arrival_s for request in stream],
            [request.workload for request in stream],
            [request.request_id for request in stream],
        )]
        chips, energy, num_batches, horizon, first_arrival, served = (
            self._simulate(chunks, workloads, emit, emit_run=emit_run)
        )
        event_paths = self._event_paths
        chaos_stats = self._chaos_stats
        lost = chaos_stats["requests_lost"] if chaos_stats else 0
        shed = chaos_stats["requests_shed"] if chaos_stats else 0
        if served + lost + shed != len(stream):
            raise ServingError(
                f"simulation lost requests: {served} served + {lost} lost + "
                f"{shed} shed of {len(stream)}"
            )
        series = None
        if telemetry_window_s is not None:
            # Derive the series straight from the captured emit structures
            # (bulk-run columns are already numpy arrays) — byte-identical
            # to record-based derivation but without the per-record round
            # trip.  Deriving *before* the records fill the young GC
            # generation keeps the collections its temporaries trigger
            # from rescanning thousands of fresh record tuples; together
            # these keep telemetry-on overhead in single-digit percent.
            from repro.serving.telemetry import (
                _energy_lookup,
                _series_from_emits,
            )

            series = _series_from_emits(
                raw_batches,
                [
                    (chip_ids, arrivals, finishes, codes)
                    for chip_ids, arrivals, finishes, _names, codes, _ids
                    in bulk_runs
                ],
                workloads,
                self.fleet.num_chips,
                _energy_lookup(self._chip_models()),
                telemetry_window_s,
                horizon,
                first_arrival,
                dropped_arrivals=(
                    chaos_stats["dropped_arrivals"] if chaos_stats else None
                ),
            )
        records = [
            RequestRecord(
                request_id, workload, chip_id, arrival_s, dispatch_s, finish_s, size
            )
            for chip_id, dispatch_s, finish_s, size, workload, members in raw_batches
            for arrival_s, request_id in zip(*members)
        ]
        one = itertools.repeat(1)
        for chip_ids, arrivals, finishes, names, _codes, run_ids in bulk_runs:
            # An idle-disjoint run: every request served alone at its
            # arrival instant (dispatch == arrival, batch size 1).
            arrival_list = arrivals.tolist()
            finish_list = finishes.tolist()
            chip_iter = (
                itertools.repeat(chip_ids)
                if isinstance(chip_ids, int)
                else chip_ids.tolist()
            )
            records.extend(
                map(
                    RequestRecord,
                    run_ids,
                    names,
                    chip_iter,
                    arrival_list,
                    arrival_list,
                    finish_list,
                    one,
                )
            )
        # Plain tuple sort: request_id is the lead field and is unique.
        records.sort()
        return ServingResult(
            records=tuple(records),
            num_chips=self.fleet.num_chips,
            chip_busy_s=tuple(chip.busy_s for chip in chips),
            chip_requests=tuple(chip.served for chip in chips),
            energy_joules=energy,
            num_batches=num_batches,
            horizon_s=horizon,
            first_arrival_s=first_arrival,
            chip_backends=self.fleet.chip_backends,
            provenance=self._provenance(len(stream), event_paths),
            telemetry=series,
            requests_lost=lost,
            requests_shed=shed,
            incidents=chaos_stats["incidents"] if chaos_stats else (),
        )

    def run_stream(
        self,
        chunks: Iterable[tuple[Sequence[float], Sequence[str], Sequence[int]]],
        workloads: Sequence[str],
        provenance: Mapping[str, object] | None = None,
        shards: int = 1,
        shard_workers: int | None = None,
        telemetry_window_s: float | None = None,
    ) -> StreamedServingResult:
        """Serve a columnar arrival stream in bounded memory.

        ``chunks`` yields ``(arrival_s, workload, request_id)`` column
        triples globally sorted by ``(arrival_s, request_id)`` (see
        :func:`columnar_chunks` and ``RequestTrace.iter_chunks``);
        ``workloads`` is the stream's workload universe, needed up front to
        build affinity routers.  Per-request state never outlives the
        request, so multi-million-request traces replay without ever
        materializing as one list; the result carries typed latency arrays
        instead of record objects.

        ``telemetry_window_s`` taps the emit callbacks with an incremental
        :class:`~repro.serving.telemetry.TelemetryCollector` that flushes
        windows as the stream advances (bounded memory) and attaches the
        finished series as ``result.telemetry``; ``None`` leaves the
        callbacks unwrapped.
        """
        workload_names = tuple(sorted(set(workloads)))
        if not workload_names:
            raise ServingError("run_stream needs the stream's workload set")
        if shards != 1:
            if self.chaos is not None:
                result = self.run_stream(
                    chunks, workload_names, provenance=provenance,
                    telemetry_window_s=telemetry_window_s,
                )
                result.provenance.update({
                    "shards": shards,
                    "shards_effective": 1,
                    "shard_fallback": CHAOS_SHARD_FALLBACK,
                })
                return result
            from repro.serving.sharding import run_stream_sharded

            return run_stream_sharded(
                self,
                chunks,
                workload_names,
                provenance=provenance,
                shards=shards,
                workers=shard_workers,
                telemetry_window_s=telemetry_window_s,
            )

        latencies = array("d")
        queue_delays = array("d")
        workload_latencies = {name: array("d") for name in workload_names}
        num_chips = self.fleet.num_chips
        chip_latencies = [array("d") for _ in range(num_chips)]

        latencies_append = latencies.append
        delays_append = queue_delays.append

        def emit(chip_id, dispatch_s, finish_s, size, workload, members):
            bucket = workload_latencies.get(workload)
            if bucket is None:
                raise ServingError(
                    f"stream contains workload '{workload}' missing from the "
                    f"declared workload set {list(workload_names)}"
                )
            if size >= EMIT_COLUMNAR_MIN:
                # One batch, four accumulators: a single float64 round trip
                # replaces 4*size appends.  IEEE-754 subtraction is the
                # same operation in numpy and python, so the bytes appended
                # are exactly the scalar loop's.
                arr = np.array(members[0])
                raw = (finish_s - arr).tobytes()
                latencies.frombytes(raw)
                queue_delays.frombytes((dispatch_s - arr).tobytes())
                bucket.frombytes(raw)
                chip_latencies[chip_id].frombytes(raw)
                return
            per_workload = bucket.append
            per_chip = chip_latencies[chip_id].append
            for arrival_s in members[0]:
                latency = finish_s - arrival_s
                latencies_append(latency)
                delays_append(dispatch_s - arrival_s)
                per_workload(latency)
                per_chip(latency)

        workload_buckets = [workload_latencies[name] for name in workload_names]

        def emit_run(chip_ids, run_arrivals, finishes, names, codes, run_ids):
            # An idle-disjoint run of singleton batches: latency is pure
            # service time (dispatch == arrival), appended in dispatch
            # order — exactly the order the scalar path would emit.
            lat = finishes - run_arrivals
            raw = lat.tobytes()
            latencies.frombytes(raw)
            queue_delays.frombytes(bytes(len(raw)))
            for code in np.unique(codes):
                workload_buckets[code].frombytes(lat[codes == code].tobytes())
            if isinstance(chip_ids, int):
                chip_latencies[chip_ids].frombytes(raw)
            else:
                for chip_id in np.unique(chip_ids):
                    chip_latencies[chip_id].frombytes(
                        lat[chip_ids == chip_id].tobytes()
                    )

        emit_cb, emit_run_cb, collector, chip_models = emit, emit_run, None, None
        if telemetry_window_s is not None:
            from repro.serving.telemetry import TelemetryCollector

            chip_models = self._chip_models()
            collector = TelemetryCollector(
                telemetry_window_s, num_chips, chip_models, workload_names
            )
            chunks = _tap_arrival_chunks(chunks, collector)
            emit_cb, emit_run_cb = _tap_emits(emit, emit_run, collector)

        chips, energy, num_batches, horizon, first_arrival, served = (
            self._simulate(
                chunks, workload_names, emit_cb, emit_run=emit_run_cb,
                chip_models=chip_models,
            )
        )
        chaos_stats = self._chaos_stats
        lost = chaos_stats["requests_lost"] if chaos_stats else 0
        shed = chaos_stats["requests_shed"] if chaos_stats else 0
        run_provenance = self._provenance(served + lost + shed, self._event_paths)
        if provenance:
            run_provenance.update(provenance)
        return StreamedServingResult(
            num_requests=served,
            num_chips=num_chips,
            chip_busy_s=tuple(chip.busy_s for chip in chips),
            chip_requests=tuple(chip.served for chip in chips),
            energy_joules=energy,
            num_batches=num_batches,
            horizon_s=horizon,
            first_arrival_s=first_arrival,
            chip_backends=self.fleet.chip_backends,
            latency_s=np.frombuffer(latencies, dtype=float),
            queue_delay_s=np.frombuffer(queue_delays, dtype=float),
            workload_latency_s={
                name: np.frombuffer(values, dtype=float)
                for name, values in workload_latencies.items()
            },
            chip_latency_s=tuple(
                np.frombuffer(values, dtype=float) for values in chip_latencies
            ),
            provenance=run_provenance,
            telemetry=(
                collector.finalize(horizon) if collector is not None else None
            ),
            requests_lost=lost,
            requests_shed=shed,
            incidents=chaos_stats["incidents"] if chaos_stats else (),
        )

    # -- event core ---------------------------------------------------------

    def _simulate(
        self,
        chunks,
        workloads: tuple[str, ...],
        emit,
        emit_run=None,
        router=None,
        chip_models=None,
    ):
        """Advance the event core over sorted columnar arrival chunks.

        ``emit(chip_id, dispatch_s, finish_s, size, workload, members)`` is
        called once per dispatched batch with ``members`` the batch's
        ``(arrivals, request_ids)`` column pair in queue order.  Returns
        ``(chips, energy, batches, horizon, first_arrival, served)``.

        ``emit_run(chip_ids, arrivals, finishes, names, codes, ids)``, when
        given, receives whole idle-disjoint runs from the chunked clock
        advance instead of one ``emit`` per singleton batch: ``chip_ids``
        is an int (every request on that chip) or a per-request int array,
        ``arrivals``/``finishes`` are float arrays (dispatch == arrival for
        every request of a run), ``names`` the workload column slice,
        ``codes`` int array indices into sorted ``workloads``, and ``ids``
        the request-id column slice.  Without it, runs are replayed through
        ``emit`` one singleton at a time.

        ``router``/``chip_models`` inject a pre-built router and per-chip
        service oracles — the sharding layer uses this to simulate a
        sub-fleet without constructing a sub-``Fleet`` (the chip count is
        ``len(chip_models)``).
        """
        if chip_models is None:
            chip_models = self._chip_models()
        if router is None:
            router = self._make_router(workloads, chip_models)
        policy = self.batching_policy
        plan, shortcuts_trusted = _plan_method(policy)

        num_chips = len(chip_models)
        chip_cls = _SlotChip if plan is not None else _ListChip
        chips = [chip_cls(chip_id) for chip_id in range(num_chips)]

        # Memoized (model, workload, batch) -> (service_s, energy_J) table,
        # hoisted so the inner loop never re-enters the backend layer.  Chips
        # sharing an ExecutionCache share table entries.
        model_index = {}
        chip_model_keys = []
        for model in chip_models:
            chip_model_keys.append(model_index.setdefault(id(model), len(model_index)))
        service_table: dict[tuple, tuple[float, float]] = {}

        heap: list[tuple] = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        sequence = itertools.count()
        next_seq = sequence.__next__

        energy = 0.0
        num_batches = 0
        served = 0

        # -- chaos state ---------------------------------------------------
        # A timeline pre-loads the heap with _CHAOS events (payload:
        # ``(opcode, chip, multiplier)``); everything below is untouched
        # when no timeline is set — chaos costs one predictable branch per
        # dispatch and per heap pop, nothing on the vectorized spans
        # (which chaos disables outright so an incident can interrupt any
        # batch mid-flight on the one scalar path both engines share).
        self._chaos_stats = None
        chaos_on = self.chaos is not None
        if chaos_on:
            # Down state is a counter, not a bool: a failure window that
            # starts exactly where the previous one ends must keep the
            # chip down regardless of same-instant event order.
            chaos_down = [0] * num_chips
            chaos_factors: list[list[float]] = [[] for _ in range(num_chips)]
            chaos_mult = [1.0] * num_chips
            chaos_lost = 0
            chaos_shed = 0
            chaos_log: list[dict] = []
            # Arrival instants of every lost/shed request, so telemetry
            # can still count them as arrivals (they never emit).
            chaos_dropped: list[float] = []
            for ev_time, op, ev_chip, ev_mult in self.chaos.compile(num_chips):
                heappush(
                    heap, (ev_time, _CHAOS, next_seq(), (op, ev_chip, ev_mult))
                )

        # Routing fast paths for the exact built-in router classes; any
        # subclass (overridden route()) goes through the generic call.
        router_type = type(router)
        route_generic = router.route
        jsq_index = None
        if router_type is RoundRobinRouter:
            route_mode = "rr"
            rr_next = router._next
        elif router_type is JoinShortestQueueRouter:
            # One JSQ helper shared by every arrival site.  Two chips (the
            # most common fleet shape) collapse the argmin to a single
            # comparison; wider fleets route through the depth-bucket
            # index instead of a per-arrival O(num_chips) scan.  Both
            # resolve ties to the lower chip id, and every caller
            # increments the chosen chip's ``pending`` right after (the
            # index's ``take`` pre-files that increment).
            route_mode = "jsq"
            if num_chips == 2:
                chip_a, chip_b = chips

                def jsq_take():
                    return chip_a if chip_a.pending <= chip_b.pending else chip_b

            else:
                jsq_index = _DepthIndex(chips)
                jsq_take = jsq_index.take
        elif router_type in (
            WorkloadAffinityRouter, SymbolicAffinityRouter, FixedOwnersRouter
        ):
            route_mode = "owners"
            owner_chips = {
                workload: [chips[chip_id] for chip_id in owners]
                for workload, owners in router.owners.items()
            }
        else:
            route_mode = "generic"

        single_cap = policy.single_group_cap if shortcuts_trusted else None

        # Busy chips, maintained at every idle<->busy transition so the
        # water-fill dispatch can test "whole fleet busy" in O(1).
        busy_count = 0

        if plan is not None:

            def dispatch(chip, now):
                nonlocal energy, num_batches, served, busy_count
                if chip.busy or not chip.depth:
                    return
                if chaos_on and chaos_down[chip.chip_id]:
                    return  # queued work waits out the chip's down window
                groups = chip.groups
                if len(groups) == 1 and single_cap is not None:
                    # One workload queued: the batch is its head requests,
                    # capped — no need to consult the policy's full plan.
                    # With one group the chip's total queue depth IS the
                    # group's length, so the group object is never touched.
                    workload = next(iter(groups))
                    depth = chip.depth
                    count = single_cap if depth > single_cap else depth
                    wake_s = None
                else:
                    workload, count, wake_s = plan(groups, now)
                if workload is None:
                    if (
                        wake_s is not None
                        and wake_s > now
                        and (
                            chip.pending_wake_s is None
                            or wake_s < chip.pending_wake_s
                        )
                    ):
                        heappush(heap, (wake_s, _WAKE, next_seq(), chip.chip_id))
                        chip.pending_wake_s = wake_s
                    return
                entries = groups[workload]
                members = entries.popn(count)
                if not entries.arrs:
                    del groups[workload]
                chip.depth -= count
                key = (chip_model_keys[chip.chip_id], workload, count)
                cached = service_table.get(key)
                if cached is None:
                    model = chip_models[chip.chip_id]
                    cached = (
                        model.service_seconds(workload, count),
                        model.energy_joules(workload, count),
                    )
                    service_table[key] = cached
                service_s, energy_j = cached
                if chaos_on:
                    factor = chaos_mult[chip.chip_id]
                    if factor != 1.0:
                        service_s *= factor
                        energy_j *= factor
                    finish = now + service_s
                    chip.busy = True
                    busy_count += 1
                    chip.inflight = count
                    seq = next_seq()
                    # Completion is no longer certain: park the batch and
                    # account for it only when its FREE event survives.
                    chip.pending_emit = (
                        seq, now, finish, count, workload, members,
                        service_s, energy_j,
                    )
                    heappush(heap, (finish, _FREE, seq, chip.chip_id))
                    return
                finish = now + service_s
                energy += energy_j
                num_batches += 1
                served += count
                chip.busy = True
                busy_count += 1
                chip.inflight = count
                chip.busy_s += service_s
                chip.served += count
                emit(chip.chip_id, now, finish, count, workload, members)
                heappush(heap, (finish, _FREE, next_seq(), chip.chip_id))

        else:

            def dispatch(chip, now):
                nonlocal energy, num_batches, served, busy_count
                if chip.busy or not chip.queue:
                    return
                if chaos_on and chaos_down[chip.chip_id]:
                    return  # queued work waits out the chip's down window
                decision = policy.select(tuple(chip.queue), now)
                if decision.batch is None:
                    if (
                        decision.wake_s is not None
                        and decision.wake_s > now
                        and (
                            chip.pending_wake_s is None
                            or decision.wake_s < chip.pending_wake_s
                        )
                    ):
                        heappush(
                            heap, (decision.wake_s, _WAKE, next_seq(), chip.chip_id)
                        )
                        chip.pending_wake_s = decision.wake_s
                    return
                # Batch construction enforces the same-workload invariant
                # even for third-party policies.
                batch = Batch(
                    workload=decision.batch[0].workload,
                    requests=tuple(decision.batch),
                    formed_s=now,
                )
                chosen = {request.request_id for request in batch.requests}
                if len(chosen) != batch.size:
                    raise ServingError(
                        f"policy '{policy.name}' selected a request twice in "
                        "one batch"
                    )
                chip.queue = [
                    request
                    for request in chip.queue
                    if request.request_id not in chosen
                ]
                workload = batch.workload
                count = batch.size
                key = (chip_model_keys[chip.chip_id], workload, count)
                cached = service_table.get(key)
                if cached is None:
                    model = chip_models[chip.chip_id]
                    cached = (
                        model.service_seconds(workload, count),
                        model.energy_joules(workload, count),
                    )
                    service_table[key] = cached
                service_s, energy_j = cached
                members = (
                    [request.arrival_s for request in batch.requests],
                    [request.request_id for request in batch.requests],
                )
                if chaos_on:
                    factor = chaos_mult[chip.chip_id]
                    if factor != 1.0:
                        service_s *= factor
                        energy_j *= factor
                    finish = now + service_s
                    chip.busy = True
                    busy_count += 1
                    chip.inflight = count
                    seq = next_seq()
                    chip.pending_emit = (
                        seq, now, finish, count, workload, members,
                        service_s, energy_j,
                    )
                    heappush(heap, (finish, _FREE, seq, chip.chip_id))
                    return
                finish = now + service_s
                energy += energy_j
                num_batches += 1
                served += count
                chip.busy = True
                busy_count += 1
                chip.inflight = count
                chip.busy_s += service_s
                chip.served += count
                emit(chip.chip_id, now, finish, count, workload, members)
                heappush(heap, (finish, _FREE, next_seq(), chip.chip_id))

        # -- chaos event handling ------------------------------------------
        if chaos_on:

            def chaos_step(now, kind, seq, payload):
                """Handle one heap pop of a chaos run.

                Owns all three event kinds: incidents (``_CHAOS``),
                completions (``_FREE`` — deferred accounting, stale pops
                from killed batches ignored) and wake-ups.
                """
                nonlocal energy, num_batches, served, busy_count, horizon
                nonlocal chaos_lost, chaos_shed
                if kind == _CHAOS:
                    op, ev_chip, ev_mult = payload
                    chip = chips[ev_chip]
                    if op == OP_FAIL:
                        chaos_down[ev_chip] += 1
                        lost_here = 0
                        if chip.busy:
                            # Kill the in-flight batch: its parked emit is
                            # dropped, so the FREE event still in the heap
                            # pops as a stale no-op.
                            lost_here = chip.inflight
                            chaos_dropped.extend(chip.pending_emit[5][0])
                            chip.pending_emit = None
                            chip.busy = False
                            busy_count -= 1
                            if jsq_index is not None:
                                jsq_index.move(
                                    ev_chip, chip.pending,
                                    chip.pending - lost_here,
                                )
                            chip.pending -= lost_here
                            chip.inflight = 0
                        if plan is not None:
                            shed_here = chip.depth
                            for group in chip.groups.values():
                                chaos_dropped.extend(group.arrs[group.head:])
                            chip.groups.clear()
                            chip.depth = 0
                        else:
                            shed_here = len(chip.queue)
                            chaos_dropped.extend(
                                request.arrival_s for request in chip.queue
                            )
                            chip.queue.clear()
                        if shed_here:
                            if jsq_index is not None:
                                jsq_index.move(
                                    ev_chip, chip.pending,
                                    chip.pending - shed_here,
                                )
                            chip.pending -= shed_here
                        chaos_lost += lost_here
                        chaos_shed += shed_here
                        chaos_log.append({
                            "at_s": now, "kind": "fail", "chip": ev_chip,
                            "requests_lost": lost_here,
                            "requests_shed": shed_here,
                        })
                    elif op == OP_RECOVER:
                        chaos_down[ev_chip] -= 1
                        chaos_log.append(
                            {"at_s": now, "kind": "recover", "chip": ev_chip}
                        )
                        if not chaos_down[ev_chip]:
                            dispatch(chip, now)
                    elif op == OP_SLOW_START:
                        chaos_factors[ev_chip].append(ev_mult)
                        chaos_mult[ev_chip] = math.prod(chaos_factors[ev_chip])
                        chaos_log.append({
                            "at_s": now, "kind": "slow", "chip": ev_chip,
                            "multiplier": ev_mult,
                        })
                    else:  # OP_SLOW_END
                        chaos_factors[ev_chip].remove(ev_mult)
                        factors = chaos_factors[ev_chip]
                        # Exact 1.0 restore once every window closes.
                        chaos_mult[ev_chip] = (
                            math.prod(factors) if factors else 1.0
                        )
                        chaos_log.append({
                            "at_s": now, "kind": "slow_end", "chip": ev_chip,
                            "multiplier": ev_mult,
                        })
                    return
                chip = chips[payload]
                if kind == _FREE:
                    entry = chip.pending_emit
                    if entry is None or entry[0] != seq:
                        return  # stale completion of a killed batch
                    (_, dispatch_s, finish_s, count, workload, members,
                     service_s, energy_j) = entry
                    chip.pending_emit = None
                    if now > horizon:
                        horizon = now
                    energy += energy_j
                    num_batches += 1
                    served += count
                    chip.busy_s += service_s
                    chip.served += count
                    emit(chip.chip_id, dispatch_s, finish_s, count, workload,
                         members)
                    chip.busy = False
                    busy_count -= 1
                    if jsq_index is not None and chip.inflight:
                        jsq_index.move(
                            payload, chip.pending, chip.pending - chip.inflight
                        )
                    chip.pending -= chip.inflight
                    chip.inflight = 0
                    dispatch(chip, now)
                else:  # _WAKE — re-check a timed-out partial batch.
                    if (
                        chip.pending_wake_s is not None
                        and chip.pending_wake_s <= now
                    ):
                        chip.pending_wake_s = None
                    dispatch(chip, now)

        # -- arrival feed priming ------------------------------------------
        chunk_iter = iter(chunks)

        def next_chunk():
            """Columns of the next non-empty chunk, or ``None`` at the end."""
            nonlocal bulk_cols, fill_cols, codes_cache, arrf_cache, fill_skip
            bulk_cols = None
            fill_cols = None
            codes_cache = None
            arrf_cache = None
            fill_skip = 0
            for arrivals, names, ids in chunk_iter:
                if not (len(arrivals) == len(names) == len(ids)):
                    raise ServingError(
                        "columnar chunk has mismatched column lengths"
                    )
                if len(arrivals):
                    return arrivals, names, ids
            return None

        columns = next_chunk()
        if columns is None:
            raise ServingError("cannot simulate an empty request stream")
        arrivals, names, ids = columns
        index = 0
        limit = len(arrivals)
        exhausted = False

        first_arrival = arrivals[0]
        horizon = first_arrival
        prev_arrival = -float("inf")
        prev_id = -1
        fast_chips = plan is not None
        # Chaos bars the eager inline dispatch (and with it the bulk run):
        # every batch must park a pending emit so a failure can kill it.
        eager = shortcuts_trusted and policy.eager_singleton and not chaos_on
        # Per-chip singleton (service, energy) rows — the eager path's
        # tuple-key-free view of the memoized service table.
        singleton_tables: list[dict] = [{} for _ in range(num_chips)]

        # -- chunked clock advance -----------------------------------------
        # When the event heap is empty, every chip is idle with an empty
        # queue (an eager policy dispatches the moment work meets an idle
        # chip, and schedules no wake-ups), so the simulation's future is a
        # pure function of upcoming arrivals.  A maximal *idle-disjoint
        # run* — consecutive arrivals where each request's singleton
        # service finishes strictly before the next arrival — then plays
        # out as one vectorized span: every request dispatches alone at its
        # own arrival on the chip the router picks for an all-idle fleet
        # (jsq: chip 0; affinity pools: lowest owner; round-robin: the
        # cycling counter).  Only the run's last request leaves through the
        # heap, because its boundary against the next event is unchecked.
        # Requires trusted eager-singleton shortcuts and a builtin router;
        # round-robin additionally needs one shared service oracle since
        # its assignment strides across every chip.
        bulk_mode = None
        if self.vectorize and eager and route_mode != "generic":
            if route_mode != "rr" or len(model_index) == 1:
                bulk_mode = route_mode
        wl_code = {name: code for code, name in enumerate(workloads)}
        bulk_rows: dict[str, tuple] = {}
        bulk_cols = None  # lazily-built per-chunk arrays

        # -- water-fill dispatch -------------------------------------------
        # The saturated complement of the idle-disjoint run: while *every*
        # chip is busy, an arrival is a pure enqueue — the eager path is
        # barred, ``dispatch`` refuses busy chips, and nothing pushes heap
        # events — so every arrival at or before ``heap[0][0]`` (arrivals
        # outrank completions and wake-ups at the same instant) resolves
        # before the next event pops.  JSQ routing of such a run is a
        # deterministic water fill over the frozen per-chip ``pending``
        # depths: repeated argmin with ties to the lower chip id fills
        # depth levels bottom-up, each level pass handing one request to
        # every chip at or below it in ascending chip-id order, and once
        # all chips level out the remainder is a pure round-robin.  The
        # whole span therefore routes as a short catch-up prefix plus
        # strided slices, byte-identical to the per-arrival scan.
        fill_mode = (
            self.vectorize and fast_chips and route_mode == "jsq"
            and not chaos_on
        )
        fill_cols = None  # lazily-built per-chunk fill arrays
        # Position the chunk must reach before the next fill attempt: a
        # span that came up shorter than FILL_MIN_RUN stays short for every
        # later start inside it (the bounding heap head cannot change while
        # the whole fleet is busy), so re-checking per arrival would buy
        # nothing and cost two binary searches each.
        fill_skip = 0
        bulk_runs_n = 0
        bulk_requests_n = 0
        fill_spans_n = 0
        fill_requests_n = 0

        codes_cache = None
        arrf_cache = None

        def chunk_codes(names):
            """Workload codes (``-1`` unknown) for the chunk, computed once.

            Shared by ``bulk_prepare`` and ``fill_prepare`` so a chunk's
            names column is scanned at most once per chunk regardless of
            how many span kinds fire.  ``map`` over the bound dict getter
            feeds ``fromiter`` straight from C; the interned-string hash
            beats building a unicode array and binary-searching it.
            """
            nonlocal codes_cache
            if codes_cache is None:
                try:
                    codes_cache = np.fromiter(
                        map(wl_code.__getitem__, names),
                        dtype=np.int64,
                        count=len(names),
                    )
                except (KeyError, TypeError):
                    # Unknown (or unhashable) workloads: the slow scan maps
                    # them to -1 so spans route them to the scalar path.
                    codes_cache = np.fromiter(
                        (
                            wl_code.get(name, -1) if isinstance(name, str)
                            else -1
                            for name in names
                        ),
                        dtype=np.int64,
                        count=len(names),
                    )
            return codes_cache

        def chunk_arrf(arrivals):
            """The chunk's arrival column as float64, converted once."""
            nonlocal arrf_cache
            if arrf_cache is None:
                arrf_cache = np.asarray(arrivals, dtype=float)
            return arrf_cache

        def bulk_row(name):
            """``(service_s, energy_j, chip_id, code)`` for a lone ``name``.

            Resolved on the chip an all-idle fleet routes the workload to.
            Any failure — unknown workload, unroutable workload, service
            oracle error — encodes as service ``-1.0``, which bars the
            request from every run so the scalar path raises its exact
            error at the exact request.
            """
            invalid = (-1.0, 0.0, -1, -1)
            code = wl_code.get(name, -1)
            if code < 0:
                return invalid
            if bulk_mode == "owners":
                candidates = owner_chips.get(name)
                if candidates is None:
                    return invalid
                chip_id = candidates[0].chip_id
            else:
                chip_id = 0
            try:
                model = chip_models[chip_id]
                return (
                    model.service_seconds(name, 1),
                    model.energy_joules(name, 1),
                    chip_id,
                    code,
                )
            except Exception:
                return invalid

        def bulk_prepare(arrivals, names):
            """Per-chunk arrays driving the run scan, built once per chunk.

            Rows are resolved once per *workload* and fanned out to the
            chunk through its code column — the per-request work is numpy
            table lookups, not a python loop over names.  A request whose
            workload falls outside ``workloads`` (code ``-1``) reads the
            table's trailing invalid row; a known workload whose service
            oracle fails gets an invalid row of its own.  Either way the
            request is barred from every run and the scalar path raises
            its exact error at the exact request.
            """
            arr = chunk_arrf(arrivals)
            n = len(arr)
            codes = chunk_codes(names)
            num_workloads = len(workloads)
            svc_tab = np.full(num_workloads + 1, -1.0)
            en_tab = np.zeros(num_workloads + 1)
            chip_tab = np.full(num_workloads + 1, -1, dtype=np.int64)
            for code in np.unique(codes).tolist():
                if code < 0:
                    continue
                name = workloads[code]
                row = bulk_rows.get(name)
                if row is None:
                    bulk_rows[name] = row = bulk_row(name)
                svc_tab[code] = row[0]
                en_tab[code] = row[1]
                chip_tab[code] = row[2]
            slots = np.where(codes < 0, num_workloads, codes)
            svc = svc_tab[slots]
            svc_list = svc.tolist()
            en_list = en_tab[slots].tolist()
            chip_arr = chip_tab[slots]
            ok = svc >= 0.0
            fin = arr + svc
            # chain[i]: request i+1 may extend a run through i — request
            # i's singleton service is positive and finishes strictly
            # before arrival i+1 (at equality the scalar core processes
            # the arrival first and sees a busy chip), and both rows are
            # servable.  solo[i]: arrival i+1 is a later instant than i,
            # required of a run's last member so it cannot have been
            # batched with a simultaneous successor.  Both are False at
            # the chunk's last index: its successor is unseen.
            chain = np.zeros(n, dtype=bool)
            solo = np.zeros(n, dtype=bool)
            if n > 1:
                chain[:-1] = (
                    (arr[1:] > fin[:-1]) & (svc[:-1] > 0.0) & ok[:-1] & ok[1:]
                )
                solo[:-1] = arr[1:] > arr[:-1]
            breaks = np.flatnonzero(~chain)
            run_chip_ids = chip_arr if bulk_mode == "owners" else None
            return arr, fin, svc_list, en_list, run_chip_ids, codes, solo, breaks

        def fill_prepare(arrivals, names, ids):
            """Per-chunk arrays driving the water-fill span scan.

            Returns ``(arr, codes, ids_arr, guards)``; ``guards`` lists
            (ascending, terminated by the chunk length) every position a
            span must not cross: a request whose workload is outside
            ``workloads`` (the scalar path owns whatever error it raises
            later) or whose ``(arrival_s, request_id)`` does not strictly
            follow its predecessor (the scalar path raises the exact
            sorting error at the exact request).  ``None`` when the columns
            resist vectorized comparison (e.g. mixed request-id types) —
            the chunk then routes entirely through the scalar path.
            """
            try:
                arr = chunk_arrf(arrivals)
                n = len(arr)
                codes = chunk_codes(names)
                ids_arr = np.asarray(ids)
                bad = codes < 0
                if n > 1:
                    bad[1:] |= (arr[1:] < arr[:-1]) | (
                        (arr[1:] == arr[:-1]) & (ids_arr[1:] <= ids_arr[:-1])
                    )
                guards = np.append(np.flatnonzero(bad), n)
            except Exception:
                return None
            return arr, codes, ids_arr, guards

        while True:
            if not exhausted:
                if (
                    bulk_mode is not None
                    and not heap
                    and index + 2 < limit
                    and arrivals[index] > prev_arrival
                ):
                    if bulk_cols is None:
                        # Probe the run's first link before materializing
                        # the whole chunk's run arrays: a run starting here
                        # needs this request's singleton service to finish
                        # strictly before the next arrival.  Under
                        # saturation the first link always fails, and the
                        # probe (one memoized row plus a compare, float64
                        # arithmetic identical to the chained scan's)
                        # spares the chunk-wide table build; a failed probe
                        # leaves ``bulk_cols`` unbuilt so the next idle
                        # moment probes again.
                        row = bulk_rows.get(names[index])
                        if row is None:
                            bulk_rows[names[index]] = row = bulk_row(
                                names[index]
                            )
                        if (
                            row[0] > 0.0
                            and arrivals[index + 1] > arrivals[index] + row[0]
                        ):
                            bulk_cols = bulk_prepare(arrivals, names)
                if (
                    bulk_cols is not None
                    and not heap
                    and index + 2 < limit
                    and arrivals[index] > prev_arrival
                ):
                    (arr_np, fin_np, svc_list, en_list, run_chip_ids,
                     codes_np, solo, breaks) = bulk_cols
                    start = index
                    stop = int(breaks[np.searchsorted(breaks, start)])
                    end = stop if solo[stop] else stop - 1
                    if end - start + 1 >= BULK_MIN_RUN:
                        length = end + 1 - start
                        run_fin = fin_np[start:end + 1]
                        if bulk_mode == "jsq":
                            chip = chips[0]
                            chip.busy_s = sum(
                                svc_list[start:end + 1], chip.busy_s
                            )
                            chip.served += length
                            chip_spec = 0
                            last_chip = chip
                        elif bulk_mode == "rr":
                            rr0 = rr_next
                            spread = num_chips if num_chips < length else length
                            for offset in range(spread):
                                chip = chips[(rr0 + offset) % num_chips]
                                seg = svc_list[start + offset:end + 1:num_chips]
                                chip.busy_s = sum(seg, chip.busy_s)
                                chip.served += len(seg)
                            rr_next = rr0 + length
                            chip_spec = (rr0 + np.arange(length)) % num_chips
                            last_chip = chips[(rr0 + length - 1) % num_chips]
                        else:  # owners
                            chip_spec = run_chip_ids[start:end + 1]
                            for chip_id in np.unique(chip_spec):
                                chip = chips[chip_id]
                                seg = [
                                    svc_list[start + i]
                                    for i in np.flatnonzero(chip_spec == chip_id)
                                ]
                                chip.busy_s = sum(seg, chip.busy_s)
                                chip.served += len(seg)
                            last_chip = chips[run_chip_ids[end]]
                        # Left-fold sums over python floats reproduce the
                        # scalar loop's accumulation order bit-for-bit.
                        energy = sum(en_list[start:end + 1], energy)
                        num_batches += length
                        served += length
                        bulk_runs_n += 1
                        bulk_requests_n += length
                        # The run's trailing boundary is unchecked: the
                        # last request may still be executing when the next
                        # event fires, so it leaves through the heap like
                        # any scalar dispatch.
                        last_chip.busy = True
                        busy_count += 1
                        last_chip.inflight = 1
                        last_chip.pending += 1
                        if jsq_index is not None:
                            jsq_index.move(
                                last_chip.chip_id,
                                last_chip.pending - 1,
                                last_chip.pending,
                            )
                        heappush(
                            heap,
                            (float(run_fin[-1]), _FREE, next_seq(),
                             last_chip.chip_id),
                        )
                        if emit_run is not None:
                            emit_run(
                                chip_spec,
                                arr_np[start:end + 1],
                                run_fin,
                                names[start:end + 1],
                                codes_np[start:end + 1],
                                ids[start:end + 1],
                            )
                        else:
                            fin_list = run_fin.tolist()
                            chip_list = (
                                None
                                if isinstance(chip_spec, int)
                                else chip_spec.tolist()
                            )
                            for offset in range(length):
                                i = start + offset
                                arrival_i = arrivals[i]
                                emit(
                                    0 if chip_list is None else chip_list[offset],
                                    arrival_i,
                                    fin_list[offset],
                                    1,
                                    names[i],
                                    ((arrival_i,), (ids[i],)),
                                )
                        prev_arrival = arrivals[end]
                        prev_id = ids[end]
                        index = end + 1
                        continue
                if (
                    fill_mode
                    and busy_count == num_chips
                    and index >= fill_skip
                    and fill_cols is not False
                    and arrivals[index] > prev_arrival
                    # O(1) reach probe before any numpy work: a span of
                    # FILL_MIN_RUN needs the arrival that many ahead to land
                    # at or before the bounding heap head (every busy chip
                    # holds a FREE event, so the heap is non-empty).  Under
                    # nominal load this fails almost every time the fleet
                    # blips to all-busy, and the two binary searches it
                    # replaces were costing more than the scalar arrivals
                    # they guarded.
                    and index + FILL_MIN_RUN <= limit
                    and arrivals[index + FILL_MIN_RUN - 1] <= heap[0][0]
                ):
                    if fill_cols is None:
                        fill_cols = fill_prepare(arrivals, names, ids)
                        if fill_cols is None:
                            fill_cols = False
                    if fill_cols is not False:
                        f_arr, f_codes, f_ids, f_guards = fill_cols
                        # Every busy chip holds an un-popped FREE event, so
                        # the heap is non-empty and its head bounds the span.
                        stop = int(
                            np.searchsorted(f_arr, heap[0][0], side="right")
                        )
                        first_guard = int(
                            f_guards[np.searchsorted(f_guards, index + 1)]
                        )
                        if first_guard < stop:
                            stop = first_guard
                        k = stop - index
                        if k < FILL_MIN_RUN or f_codes[index] < 0:
                            fill_skip = (
                                index + 1
                                if f_codes[index] < 0
                                else max(stop, index + 1)
                            )
                        else:
                            # Catch-up prefix: walk level passes until every
                            # chip reaches the fleet's top depth (or the run
                            # drains), each pass handing one arrival to each
                            # active chip in ascending chip-id order.  Its
                            # length is bounded by num_chips * depth-spread,
                            # tiny next to a saturated run.
                            pairs = sorted(
                                (chip.pending, chip.chip_id) for chip in chips
                            )
                            prefix = []
                            active = []
                            level = pairs[0][0]
                            ci = 0
                            t = 0
                            while ci < num_chips:
                                chip_depth, cid = pairs[ci]
                                if chip_depth > level:
                                    passes = chip_depth - level
                                    width = len(active)
                                    if t + passes * width >= k:
                                        full, part = divmod(k - t, width)
                                        for _ in range(full):
                                            prefix.extend(active)
                                        prefix.extend(active[:part])
                                        t = k
                                        break
                                    for _ in range(passes):
                                        prefix.extend(active)
                                    t += passes * width
                                    level = chip_depth
                                insort(active, cid)
                                ci += 1
                            pos_lists = [[] for _ in range(num_chips)]
                            for j, cid in enumerate(prefix):
                                pos_lists[cid].append(j)
                            for chip in chips:
                                cid = chip.chip_id
                                # Past the prefix the fill is round-robin in
                                # chip-id order, so a chip's share is a
                                # strided slice of the span.
                                tail = np.arange(
                                    index + t + cid, index + k, num_chips
                                )
                                head = pos_lists[cid]
                                count = len(head) + len(tail)
                                if not count:
                                    continue
                                if head:
                                    pos = np.concatenate(
                                        (
                                            np.array(head, dtype=np.int64)
                                            + index,
                                            tail,
                                        )
                                    )
                                else:
                                    pos = tail
                                sub_codes = f_codes[pos]
                                order = np.argsort(sub_codes, kind="stable")
                                sorted_codes = sub_codes[order]
                                seg_bounds = (
                                    np.flatnonzero(
                                        sorted_codes[1:] != sorted_codes[:-1]
                                    )
                                    + 1
                                )
                                starts = [0, *seg_bounds.tolist(), count]
                                segments = [
                                    order[starts[s]:starts[s + 1]]
                                    for s in range(len(starts) - 1)
                                ]
                                # The scalar enqueue creates a chip's
                                # workload groups in first-occurrence order,
                                # and dict order is observable through
                                # ``plan``; replay segments in that order.
                                segments.sort(key=lambda seg: seg[0])
                                groups = chip.groups
                                for seg in segments:
                                    p = pos[seg]
                                    name = names[int(p[0])]
                                    group = groups.get(name)
                                    if group is None:
                                        groups[name] = group = _Group()
                                    group.arrs.extend(f_arr[p].tolist())
                                    group.rids.extend(f_ids[p].tolist())
                                chip.depth += count
                                chip.pending += count
                            if jsq_index is not None:
                                jsq_index.rebuild()
                            fill_spans_n += 1
                            fill_requests_n += k
                            prev_arrival = arrivals[stop - 1]
                            prev_id = ids[stop - 1]
                            index = stop
                            if index == limit:
                                columns = next_chunk()
                                if columns is None:
                                    exhausted = True
                                else:
                                    arrivals, names, ids = columns
                                    index = 0
                                    limit = len(arrivals)
                            continue
                next_arrival = arrivals[index]
                if heap and heap[0][0] < next_arrival:
                    pass  # a completion/wake-up precedes the next arrival
                elif index + 1 < limit and arrivals[index + 1] != next_arrival:
                    # Single-arrival instant — the overwhelmingly common
                    # case in continuous time, handled without the drain
                    # scaffolding (and, for policies that dispatch a lone
                    # request on an idle chip immediately, without touching
                    # the queue at all).
                    now = next_arrival
                    workload = names[index]
                    request_id = ids[index]
                    if now < prev_arrival or (
                        now == prev_arrival and request_id <= prev_id
                    ):
                        raise ServingError(
                            "request stream is not sorted by "
                            "(arrival_s, request_id) or repeats a request "
                            f"id near request {request_id}"
                        )
                    prev_arrival = now
                    prev_id = request_id
                    index += 1

                    if route_mode == "jsq":
                        chosen = jsq_take()
                    elif route_mode == "owners":
                        candidates = owner_chips.get(workload)
                        if candidates is None:
                            route_generic(
                                Request(request_id, workload, now), chips
                            )
                            raise ServingError(  # pragma: no cover
                                f"router failed on workload '{workload}'"
                            )
                        chosen = candidates[0]
                        best = chosen.pending
                        for candidate in candidates:
                            if candidate.pending < best:
                                best = candidate.pending
                                chosen = candidate
                    elif route_mode == "rr":
                        chosen = chips[rr_next % num_chips]
                        rr_next += 1
                    else:
                        chosen = chips[
                            route_generic(Request(request_id, workload, now), chips)
                        ]

                    if eager and not chosen.busy and not chosen.depth:
                        # Immediate singleton batch: empty queue, idle chip.
                        cached = singleton_tables[chosen.chip_id].get(workload)
                        if cached is None:
                            model = chip_models[chosen.chip_id]
                            cached = (
                                model.service_seconds(workload, 1),
                                model.energy_joules(workload, 1),
                            )
                            singleton_tables[chosen.chip_id][workload] = cached
                            service_table[
                                (chip_model_keys[chosen.chip_id], workload, 1)
                            ] = cached
                        service_s, energy_j = cached
                        finish = now + service_s
                        energy += energy_j
                        num_batches += 1
                        served += 1
                        chosen.busy = True
                        busy_count += 1
                        chosen.inflight = 1
                        chosen.pending += 1
                        chosen.busy_s += service_s
                        chosen.served += 1
                        emit(
                            chosen.chip_id, now, finish, 1, workload,
                            ((now,), (request_id,)),
                        )
                        heappush(heap, (finish, _FREE, next_seq(), chosen.chip_id))
                    else:
                        if fast_chips:
                            group = chosen.groups.get(workload)
                            if group is None:
                                chosen.groups[workload] = group = _Group()
                            group.append(now, request_id)
                            chosen.depth += 1
                        else:
                            chosen.queue.append(Request(request_id, workload, now))
                        chosen.pending += 1
                        if not chosen.busy:
                            dispatch(chosen, now)
                    continue
                else:
                    # Drain every arrival landing at this instant before
                    # dispatching, so a simultaneous burst can form one
                    # batch instead of the first request stealing the idle
                    # chip alone.
                    now = next_arrival
                    touched = set()
                    add_touched = touched.add
                    while True:
                        arrival_s = arrivals[index]
                        workload = names[index]
                        request_id = ids[index]
                        if arrival_s < prev_arrival or (
                            arrival_s == prev_arrival and request_id <= prev_id
                        ):
                            raise ServingError(
                                "request stream is not sorted by "
                                "(arrival_s, request_id) or repeats a request "
                                f"id near request {request_id}"
                            )
                        prev_arrival = arrival_s
                        prev_id = request_id

                        if route_mode == "jsq":
                            chosen = jsq_take()
                        elif route_mode == "owners":
                            candidates = owner_chips.get(workload)
                            if candidates is None:
                                # Unrouteable workload: the router raises its
                                # own (exact) error message.
                                route_generic(
                                    Request(request_id, workload, arrival_s),
                                    chips,
                                )
                                raise ServingError(  # pragma: no cover
                                    f"router failed on workload '{workload}'"
                                )
                            chosen = candidates[0]
                            best = chosen.pending
                            for candidate in candidates:
                                if candidate.pending < best:
                                    best = candidate.pending
                                    chosen = candidate
                        elif route_mode == "rr":
                            chosen = chips[rr_next % num_chips]
                            rr_next += 1
                        else:
                            chosen = chips[
                                route_generic(
                                    Request(request_id, workload, arrival_s),
                                    chips,
                                )
                            ]

                        if fast_chips:
                            group = chosen.groups.get(workload)
                            if group is None:
                                chosen.groups[workload] = group = _Group()
                            group.append(arrival_s, request_id)
                            chosen.depth += 1
                        else:
                            chosen.queue.append(
                                Request(request_id, workload, arrival_s)
                            )
                        chosen.pending += 1
                        add_touched(chosen)

                        index += 1
                        if index == limit:
                            columns = next_chunk()
                            if columns is None:
                                exhausted = True
                                break
                            arrivals, names, ids = columns
                            index = 0
                            limit = len(arrivals)
                        if arrivals[index] != now:
                            break
                    if len(touched) == 1:
                        burst_chip = touched.pop()
                        if not burst_chip.busy:
                            dispatch(burst_chip, now)
                    else:
                        for burst_chip in sorted(touched, key=lambda c: c.chip_id):
                            if not burst_chip.busy:
                                dispatch(burst_chip, now)
                    continue
            elif not heap:
                break

            now, kind, _seq, chip_id = heappop(heap)
            if chaos_on:
                chaos_step(now, kind, _seq, chip_id)
                continue
            chip = chips[chip_id]
            if kind == _FREE:
                # Horizon advances on completions only: a stale batching
                # wake-up scheduled past the last finish must not stretch
                # the active span (which would deflate throughput and
                # utilization for timeout policies).
                if now > horizon:
                    horizon = now
                chip.busy = False
                busy_count -= 1
                if jsq_index is not None and chip.inflight:
                    jsq_index.move(
                        chip_id, chip.pending, chip.pending - chip.inflight
                    )
                chip.pending -= chip.inflight
                chip.inflight = 0
                dispatch(chip, now)
            else:  # _WAKE — re-check a timed-out partial batch.
                if chip.pending_wake_s is not None and chip.pending_wake_s <= now:
                    chip.pending_wake_s = None
                dispatch(chip, now)

        if chaos_on:
            # Requests still queued when the event heap drained can only
            # sit on a chip whose failure window never closed: count them
            # shed (never dispatched, never completed) so conservation
            # holds even for unrecovered outages.
            for chip in chips:
                stranded = chip.depth if fast_chips else len(chip.queue)
                if stranded:
                    if fast_chips:
                        for group in chip.groups.values():
                            chaos_dropped.extend(group.arrs[group.head:])
                        chip.groups.clear()
                        chip.depth = 0
                    else:
                        chaos_dropped.extend(
                            request.arrival_s for request in chip.queue
                        )
                        chip.queue.clear()
                    chip.pending -= stranded
                    chaos_shed += stranded
                    chaos_log.append({
                        "at_s": horizon, "kind": "stranded",
                        "chip": chip.chip_id, "requests_shed": stranded,
                    })
            self._chaos_stats = {
                "requests_lost": chaos_lost,
                "requests_shed": chaos_shed,
                "incidents": tuple(chaos_log),
                "dropped_arrivals": np.asarray(chaos_dropped, dtype=float),
            }

        # Routing-path attribution for the most recent simulation, read by
        # ``run``/``run_stream`` right after ``_simulate`` returns (it is
        # per-call state, not configuration): how many requests rode each
        # vectorized span kind versus the one-at-a-time scalar loop.
        self._event_paths = {
            "bulk_runs": bulk_runs_n,
            "bulk_run_requests": bulk_requests_n,
            "water_fill_spans": fill_spans_n,
            "water_fill_requests": fill_requests_n,
            "scalar_requests": served - bulk_requests_n - fill_requests_n,
        }
        return chips, energy, num_batches, horizon, first_arrival, served
