"""Discrete-event core of the request-level serving simulator.

The simulator advances a heap of timestamped events — request arrivals,
chip completions and batching wake-ups — over a fleet of backend chips
(all CogSys by default, or any mix of registry backends).  Three pluggable
pieces define a run:

* the request stream (:mod:`repro.serving.traffic`),
* the batching policy (:mod:`repro.serving.batching`),
* the fleet: per-chip backends, routing policy and the memoized
  service-time model (:mod:`repro.serving.fleet`).

Determinism: the event heap is ordered by ``(time, kind, sequence)`` with a
monotone sequence counter, routing and batching policies are deterministic
functions of observable state, and all randomness lives in the seeded
traffic generators — so the same seed and scenario always reproduce the
identical per-request latency trace.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.serving.batching import Batch, BatchingPolicy, NoBatching
from repro.serving.fleet import Fleet, FleetServiceModel
from repro.serving.traffic import Request

__all__ = ["RequestRecord", "ServingResult", "ServingSimulator"]

# Event kinds, in tie-breaking order: arrivals first so load-aware routers
# and batch formation see every request that lands at an instant, then chip
# completions, then batching wake-ups.
_ARRIVAL, _FREE, _WAKE = 0, 1, 2


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one request through the serving system."""

    request_id: int
    workload: str
    chip: int
    arrival_s: float
    dispatch_s: float
    finish_s: float
    batch_size: int

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent queued before the batch launched."""
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Chip-occupancy time of the batch the request rode in."""
        return self.finish_s - self.dispatch_s


@dataclass(frozen=True)
class ServingResult:
    """Everything a serving run produced, ready for the metrics layer."""

    records: tuple[RequestRecord, ...]
    num_chips: int
    chip_busy_s: tuple[float, ...]
    chip_requests: tuple[int, ...]
    energy_joules: float
    num_batches: int
    horizon_s: float
    first_arrival_s: float = 0.0
    #: backend name of every chip (empty for legacy constructions)
    chip_backends: tuple[str, ...] = ()
    provenance: dict = field(default_factory=dict)

    @property
    def num_requests(self) -> int:
        """Requests served."""
        return len(self.records)

    @property
    def span_s(self) -> float:
        """Active span of the run: first arrival to last completion."""
        return max(self.horizon_s - self.first_arrival_s, 0.0)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the active span."""
        return self.num_requests / self.span_s if self.span_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch."""
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across the fleet over the active span."""
        if self.span_s <= 0 or self.num_chips == 0:
            return 0.0
        return min(1.0, sum(self.chip_busy_s) / (self.span_s * self.num_chips))

    def latencies_s(self) -> list[float]:
        """Per-request end-to-end latencies, in request-id order."""
        return [record.latency_s for record in self.records]


class _Chip:
    """Mutable per-chip simulation state (router-visible via ChipView)."""

    def __init__(self, chip_id: int) -> None:
        self.chip_id = chip_id
        self.busy = False
        self.inflight = 0
        self.queue: list[Request] = []
        self.busy_s = 0.0
        self.served = 0
        # Earliest batching wake-up already in the event heap, if any —
        # lets dispatch() skip pushing duplicates for an unchanged deadline.
        self.pending_wake_s: float | None = None

    @property
    def queue_depth(self) -> int:
        """Requests queued on this chip (excluding the executing batch)."""
        return len(self.queue)


class ServingSimulator:
    """Run request streams against a fleet of backend chips."""

    def __init__(
        self,
        service_model=None,
        fleet: Fleet | None = None,
        batching_policy: BatchingPolicy | None = None,
    ) -> None:
        self.fleet = fleet or Fleet()
        self.service_model = service_model or FleetServiceModel(fleet=self.fleet)
        self.batching_policy = batching_policy or NoBatching()

    def _chip_models(self) -> list:
        """Per-chip service oracles, validated against the fleet shape."""
        model = self.service_model
        if isinstance(model, FleetServiceModel):
            if model.chip_backends != self.fleet.chip_backends:
                raise ServingError(
                    "service model backends "
                    f"{list(model.chip_backends)} do not match the fleet's "
                    f"{list(self.fleet.chip_backends)}"
                )
            return [model.for_chip(chip) for chip in range(self.fleet.num_chips)]
        if self.fleet.is_heterogeneous:
            raise ServingError(
                "a heterogeneous fleet needs a FleetServiceModel (or pass "
                "service_model=None to build one from the fleet)"
            )
        model_backend = getattr(model, "backend_name", None)
        fleet_backend = self.fleet.chip_backends[0]
        if model_backend is not None and model_backend != fleet_backend:
            raise ServingError(
                f"service model answers for backend '{model_backend}' but the "
                f"fleet's chips are '{fleet_backend}'"
            )
        return [model] * self.fleet.num_chips

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Simulate ``requests`` to completion and return the full trace."""
        if not requests:
            raise ServingError("cannot simulate an empty request stream")
        stream = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        ids = [request.request_id for request in stream]
        if len(set(ids)) != len(ids):
            raise ServingError("request stream contains duplicate request ids")

        chip_models = self._chip_models()
        workloads = tuple(sorted({request.workload for request in stream}))

        def symbolic_fraction_of(workload: str) -> float:
            """Batch-1 symbolic share on the fleet's reference (baseline) backend.

            Resolved lazily: only symbolic-affinity routing calls this, so
            other routers never touch the backend registry.
            """
            reference_model = chip_models[self.fleet.reference_chip]
            report = getattr(reference_model, "report", None)
            if report is None:
                raise ServingError(
                    "symbolic_affinity routing needs a service model that "
                    "exposes report() (ExecutionCache or FleetServiceModel), "
                    f"got {type(reference_model).__name__}"
                )
            return report(workload, 1).symbolic_fraction

        router = self.fleet.make_router(
            workloads, symbolic_fraction_of=symbolic_fraction_of
        )
        chips = [_Chip(chip_id) for chip_id in range(self.fleet.num_chips)]
        records: list[RequestRecord] = []
        energy = 0.0
        batches = 0

        sequence = itertools.count()
        # (time, kind, seq, chip_id, request) — request only for arrivals.
        events: list[tuple[float, int, int, int, Request | None]] = []
        for request in stream:
            heapq.heappush(
                events, (request.arrival_s, _ARRIVAL, next(sequence), -1, request)
            )

        def dispatch(chip: _Chip, now: float) -> None:
            nonlocal energy, batches
            if chip.busy or not chip.queue:
                return
            decision = self.batching_policy.select(tuple(chip.queue), now)
            if decision.batch is None:
                if (
                    decision.wake_s is not None
                    and decision.wake_s > now
                    and (
                        chip.pending_wake_s is None
                        or decision.wake_s < chip.pending_wake_s
                    )
                ):
                    heapq.heappush(
                        events,
                        (decision.wake_s, _WAKE, next(sequence), chip.chip_id, None),
                    )
                    chip.pending_wake_s = decision.wake_s
                return
            # Batch construction enforces the same-workload invariant even
            # for third-party policies.
            batch = Batch(
                workload=decision.batch[0].workload,
                requests=tuple(decision.batch),
                formed_s=now,
            )
            chosen = set(id(request) for request in batch.requests)
            chip.queue = [r for r in chip.queue if id(r) not in chosen]
            workload = batch.workload
            model = chip_models[chip.chip_id]
            service = model.service_seconds(workload, batch.size)
            finish = now + service
            energy += model.energy_joules(workload, batch.size)
            batches += 1
            chip.busy = True
            chip.inflight = batch.size
            chip.busy_s += service
            chip.served += batch.size
            for request in batch.requests:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        workload=request.workload,
                        chip=chip.chip_id,
                        arrival_s=request.arrival_s,
                        dispatch_s=now,
                        finish_s=finish,
                        batch_size=batch.size,
                    )
                )
            heapq.heappush(events, (finish, _FREE, next(sequence), chip.chip_id, None))

        # Horizon advances on completions only: a stale batching wake-up
        # scheduled past the last finish must not stretch the active span
        # (which would deflate throughput/utilization for timeout policies).
        horizon = stream[0].arrival_s
        while events:
            now, kind, _, chip_id, request = heapq.heappop(events)
            if kind == _FREE:
                horizon = max(horizon, now)
            if kind == _ARRIVAL:
                # Drain every arrival landing at this instant before
                # dispatching, so a simultaneous burst can form one batch
                # instead of the first request stealing the idle chip alone.
                touched = set()
                target = chips[router.route(request, chips)]
                target.queue.append(request)
                touched.add(target.chip_id)
                while events and events[0][0] == now and events[0][1] == _ARRIVAL:
                    _, _, _, _, peer = heapq.heappop(events)
                    target = chips[router.route(peer, chips)]
                    target.queue.append(peer)
                    touched.add(target.chip_id)
                for touched_id in sorted(touched):
                    dispatch(chips[touched_id], now)
            elif kind == _FREE:
                chip = chips[chip_id]
                chip.busy = False
                chip.inflight = 0
                dispatch(chip, now)
            else:  # _WAKE — re-check a timed-out partial batch.
                chip = chips[chip_id]
                if chip.pending_wake_s is not None and chip.pending_wake_s <= now:
                    chip.pending_wake_s = None
                dispatch(chip, now)

        if len(records) != len(stream):
            raise ServingError(
                f"simulation lost requests: {len(records)} served of {len(stream)}"
            )
        records.sort(key=lambda record: record.request_id)
        chip_backends = self.fleet.chip_backends
        return ServingResult(
            records=tuple(records),
            num_chips=self.fleet.num_chips,
            chip_busy_s=tuple(chip.busy_s for chip in chips),
            chip_requests=tuple(chip.served for chip in chips),
            energy_joules=energy,
            num_batches=batches,
            horizon_s=horizon,
            first_arrival_s=stream[0].arrival_s,
            chip_backends=chip_backends,
            provenance={
                "num_requests": len(stream),
                "num_chips": self.fleet.num_chips,
                "router": self.fleet.router,
                "backends": list(dict.fromkeys(chip_backends)),
                "batching_policy": self.batching_policy.name,
                "scheduler": self.service_model.scheduler,
                "cached_reports": self.service_model.cached_reports,
            },
        )
