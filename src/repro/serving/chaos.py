"""Trace-replayable incident timelines for the serving event core.

A :class:`ChaosTimeline` is an immutable, validated list of
:class:`Incident` entries — chip failures, stragglers (degraded
service-time multipliers) and fleet-wide power-cap windows — that the
event core injects as ordinary heap events.  Timelines are plain data:
they serialize to/from JSON (``repro serve --chaos FILE``), scale with a
scenario's ``duration_scale``, and can be generated from a seed
(:meth:`ChaosTimeline.seeded`), so every incident a run experienced can
be replayed bit-for-bit.

Semantics, fixed here and enforced by the invariant suite:

* **chip_failure** — at ``at_s`` the chip goes down for ``duration_s``.
  The in-flight batch (if any) is killed and its requests counted
  **lost**; requests queued on the chip are dropped and counted
  **shed**; requests routed to the chip while it is down queue up and
  wait for recovery (routers are untouched — join-shortest-queue
  naturally drains away as the queue grows).  Conservation always
  holds: ``arrived == completed + shed + lost``.
* **straggler** — a per-chip service-time (and energy) multiplier
  active over a window.  Overlapping windows compose multiplicatively;
  when every window closes the multiplier is exactly ``1.0`` again.
* **power_cap** — a straggler applied to every chip at once (one
  incident, fleet-wide), modeling a DVFS power-cap window.

Events at the same instant order *after* arrivals and completions: a
batch finishing exactly at the failure instant completes normally, and
requests arriving exactly then are enqueued first (and therefore shed).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ServingError

__all__ = [
    "Incident",
    "ChaosTimeline",
    "chip_failure",
    "straggler",
    "power_cap",
]

#: incident kinds, frozen; also the JSON ``kind`` vocabulary
INCIDENT_KINDS = ("chip_failure", "straggler", "power_cap")

# Compiled event opcodes consumed by the event core.
OP_FAIL = 0
OP_RECOVER = 1
OP_SLOW_START = 2
OP_SLOW_END = 3


@dataclass(frozen=True)
class Incident:
    """One validated incident window on the timeline.

    ``chip`` is the target chip id for ``chip_failure``/``straggler``
    and ``None`` for the fleet-wide ``power_cap``; ``multiplier`` is the
    service-time factor for the two straggler kinds and ``None`` for
    failures.
    """

    kind: str
    at_s: float
    duration_s: float
    chip: int | None = None
    multiplier: float | None = None

    def __post_init__(self):
        if self.kind not in INCIDENT_KINDS:
            raise ServingError(
                f"unknown incident kind {self.kind!r}; "
                f"expected one of {INCIDENT_KINDS}"
            )
        if not (self.at_s >= 0.0 and math.isfinite(self.at_s)):
            raise ServingError(
                f"incident start must be finite and >= 0, got {self.at_s}"
            )
        # ``inf`` is allowed: an incident that never ends (a chip that
        # never recovers strands its queue, counted shed at drain time).
        if not self.duration_s > 0.0:
            raise ServingError(
                f"incident duration must be positive, got {self.duration_s}"
            )
        if self.kind == "power_cap":
            if self.chip is not None:
                raise ServingError("power_cap incidents are fleet-wide; "
                                   "chip must be None")
        else:
            if self.chip is None or self.chip < 0:
                raise ServingError(
                    f"{self.kind} incidents need a non-negative chip id, "
                    f"got {self.chip}"
                )
        if self.kind == "chip_failure":
            if self.multiplier is not None:
                raise ServingError("chip_failure incidents have no "
                                   "multiplier")
        elif not (self.multiplier is not None and self.multiplier > 0.0):
            raise ServingError(
                f"{self.kind} incidents need a positive service-time "
                f"multiplier, got {self.multiplier}"
            )

    @property
    def end_s(self) -> float:
        """The instant the incident's window closes."""
        return self.at_s + self.duration_s

    def to_dict(self) -> dict:
        """JSON-ready dict (``None`` fields omitted)."""
        out = {"kind": self.kind, "at_s": self.at_s,
               "duration_s": self.duration_s}
        if self.chip is not None:
            out["chip"] = self.chip
        if self.multiplier is not None:
            out["multiplier"] = self.multiplier
        return out


def chip_failure(chip: int, at_s: float, duration_s: float) -> Incident:
    """A chip going down at ``at_s`` and recovering ``duration_s`` later."""
    return Incident("chip_failure", float(at_s), float(duration_s),
                    chip=int(chip))


def straggler(chip: int, at_s: float, duration_s: float,
              multiplier: float) -> Incident:
    """A degraded-chip window: service times scale by ``multiplier``."""
    return Incident("straggler", float(at_s), float(duration_s),
                    chip=int(chip), multiplier=float(multiplier))


def power_cap(at_s: float, duration_s: float, multiplier: float) -> Incident:
    """A fleet-wide service-time multiplier window (DVFS power cap)."""
    return Incident("power_cap", float(at_s), float(duration_s),
                    multiplier=float(multiplier))


@dataclass(frozen=True)
class ChaosTimeline:
    """An immutable, replayable sequence of incidents.

    The empty timeline is valid and means "no chaos": the event core
    treats it exactly like no timeline at all, which the golden
    differential tests pin byte-for-byte.
    """

    incidents: tuple[Incident, ...] = field(default_factory=tuple)

    def __post_init__(self):
        incidents = tuple(self.incidents)
        object.__setattr__(self, "incidents", incidents)
        for incident in incidents:
            if not isinstance(incident, Incident):
                raise ServingError(
                    f"timeline entries must be Incident, got {incident!r}"
                )
        # Overlapping failure windows on one chip are ambiguous (is the
        # chip down once or twice?); reject them outright.
        failures: dict[int, list[tuple[float, float]]] = {}
        for incident in incidents:
            if incident.kind == "chip_failure":
                failures.setdefault(incident.chip, []).append(
                    (incident.at_s, incident.end_s)
                )
        for chip, windows in failures.items():
            windows.sort()
            for (_, prev_end), (start, _) in zip(windows, windows[1:]):
                if start < prev_end:
                    raise ServingError(
                        f"overlapping chip_failure windows on chip {chip}"
                    )

    def __bool__(self) -> bool:
        return bool(self.incidents)

    @property
    def max_chip(self) -> int:
        """Highest chip id any chip-scoped incident targets (-1 if none)."""
        chips = [i.chip for i in self.incidents if i.chip is not None]
        return max(chips) if chips else -1

    def windows(self) -> tuple[dict, ...]:
        """Per-incident window dicts, ordered by start time.

        The resilience metrics and provenance both consume this shape;
        it is the JSON form plus a stable ordering.
        """
        ordered = sorted(
            self.incidents, key=lambda i: (i.at_s, i.end_s, i.kind)
        )
        return tuple(incident.to_dict() for incident in ordered)

    def scaled(self, factor: float) -> ChaosTimeline:
        """The timeline with every start and duration scaled by ``factor``.

        Scenario presets carry timelines in unscaled time; ``run_scenario``
        applies the run's ``duration_scale`` so incidents stay aligned
        with the (scaled) traffic phases they were written against.
        """
        factor = float(factor)
        if factor == 1.0:
            return self
        if not factor > 0.0:
            raise ServingError(
                f"timeline scale factor must be positive, got {factor}"
            )
        return ChaosTimeline(tuple(
            Incident(i.kind, i.at_s * factor, i.duration_s * factor,
                     chip=i.chip, multiplier=i.multiplier)
            for i in self.incidents
        ))

    def compile(self, num_chips: int) -> list[tuple[float, int, int, float]]:
        """Flatten to ``(time, opcode, chip, multiplier)`` event tuples.

        ``power_cap`` fans out to one straggler pair per chip.  The list
        is sorted by ``(time, opcode, chip)`` so compilation order is
        deterministic; the event core assigns heap sequence numbers in
        this order.  Incidents with infinite duration emit no closing
        event: the chip stays down (or slow) until the run drains.
        """
        if self.max_chip >= num_chips:
            raise ServingError(
                f"timeline targets chip {self.max_chip} but the fleet has "
                f"{num_chips} chips"
            )
        events: list[tuple[float, int, int, float]] = []
        for incident in self.incidents:
            ends = math.isfinite(incident.end_s)
            if incident.kind == "chip_failure":
                events.append((incident.at_s, OP_FAIL, incident.chip, 0.0))
                if ends:
                    events.append(
                        (incident.end_s, OP_RECOVER, incident.chip, 0.0)
                    )
            else:
                chips = (
                    range(num_chips) if incident.chip is None
                    else (incident.chip,)
                )
                for chip in chips:
                    events.append((incident.at_s, OP_SLOW_START, chip,
                                   incident.multiplier))
                    if ends:
                        events.append((incident.end_s, OP_SLOW_END, chip,
                                       incident.multiplier))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return events

    def to_json(self) -> str:
        """Serialize as the ``--chaos FILE`` JSON document."""
        return json.dumps(
            {"incidents": [i.to_dict() for i in self.incidents]}, indent=2
        ) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> ChaosTimeline:
        """Parse the JSON document shape back into a timeline."""
        if not isinstance(data, dict) or "incidents" not in data:
            raise ServingError(
                'chaos timeline JSON must be {"incidents": [...]}'
            )
        incidents = []
        for entry in data["incidents"]:
            extra = set(entry) - {"kind", "at_s", "duration_s", "chip",
                                  "multiplier"}
            if extra:
                raise ServingError(
                    f"unknown incident fields {sorted(extra)}"
                )
            try:
                incidents.append(Incident(
                    kind=entry["kind"],
                    at_s=float(entry["at_s"]),
                    duration_s=float(entry["duration_s"]),
                    chip=(int(entry["chip"]) if "chip" in entry else None),
                    multiplier=(float(entry["multiplier"])
                                if "multiplier" in entry else None),
                ))
            except KeyError as missing:
                raise ServingError(
                    f"incident entry missing field {missing}"
                ) from None
        return cls(tuple(incidents))

    @classmethod
    def load(cls, path) -> ChaosTimeline:
        """Load a timeline from a ``--chaos`` JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ServingError(
                f"cannot read chaos timeline {path}: {error}"
            ) from None
        return cls.from_dict(data)

    def dump(self, path) -> Path:
        """Write the timeline to ``path`` as JSON and return the path."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def seeded(cls, seed: int, num_chips: int, horizon_s: float, *,
               failure_rate: float = 0.0, straggler_rate: float = 0.0,
               mean_duration_s: float = 0.1,
               multiplier: float = 4.0) -> ChaosTimeline:
        """A deterministic seeded storm of incidents over ``horizon_s``.

        Incident starts are Poisson per chip (``*_rate`` in events per
        simulated second) with exponential durations, drawn from one
        ``numpy`` generator in a fixed chip-major order, so the same
        seed always yields the same timeline.  Failure windows that
        would overlap on a chip are pushed after the previous recovery
        to keep the timeline valid.
        """
        if num_chips <= 0:
            raise ServingError(f"num_chips must be positive, got {num_chips}")
        if not horizon_s > 0.0:
            raise ServingError(
                f"storm horizon must be positive, got {horizon_s}"
            )
        rng = np.random.default_rng(seed)
        incidents: list[Incident] = []
        for chip in range(num_chips):
            for rate, kind in ((failure_rate, "chip_failure"),
                               (straggler_rate, "straggler")):
                if rate <= 0.0:
                    continue
                now = 0.0
                floor = 0.0
                while True:
                    now += float(rng.exponential(1.0 / rate))
                    if now >= horizon_s:
                        break
                    duration = float(rng.exponential(mean_duration_s))
                    duration = max(duration, 1e-6)
                    if kind == "chip_failure":
                        start = max(now, floor)
                        incidents.append(chip_failure(chip, start, duration))
                        floor = start + duration
                    else:
                        incidents.append(
                            straggler(chip, now, duration, multiplier)
                        )
        return cls(tuple(incidents))
