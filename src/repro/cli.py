"""``repro`` — command-line front-end to the experiment registry/engine.

Installed as a console script (see ``setup.py``) and runnable as
``python -m repro``.  Subcommands:

``repro list [--tag TAG] [--format md|json]``
    Enumerate the registered experiments (id, anchor, tags, title).
``repro run ID [ID ...] [--param k=v] [--workers N] [--no-cache]
[--format md|csv|json] [--output FILE] [--smoke]``
    Execute one or more experiments through the caching engine and print
    (or write) the result tables.
``repro report [--output EXPERIMENTS.md] [--workers N] [--no-cache]
[--smoke]``
    Regenerate the paper-vs-measured document from the registry.
``repro serve SCENARIO[,SCENARIO...] [--seed N] [--chips N] [--router R]
[--policy P] [--backend B[,B...]] [--load-scale X] [--duration-scale X]
[--jobs N]`` /
``repro serve SCENARIO --record FILE`` / ``repro serve --trace FILE`` /
``repro serve --list`` / ``repro serve --smoke``
    Run a serving scenario preset (or every serving experiment at smoke
    scale) through the request-level simulator; ``--backend`` builds a
    (possibly heterogeneous) fleet from registry backend names.
    ``--record`` writes the scenario's traffic to a JSONL request trace
    instead of serving it; ``--trace`` streams a recorded trace through
    the bounded-memory event core (fleet flags apply, ``--slo-ms`` sets
    the report's SLO).  ``--telemetry FILE [--telemetry-format jsonl|prom]
    [--window-ms W]`` exports the run's windowed time series and
    ``--dashboard`` renders it as terminal sparklines (both also apply to
    ``--trace`` replays).  ``--chaos FILE`` injects an incident timeline
    (chip failures, stragglers, power caps), ``--sessions [--users N]``
    serves closed-loop session traffic, and ``SCENARIO --smoke`` runs one
    scenario at smoke (0.2x duration) scale with resilience accounting.
    ``--controller target_util|queue_pid [--control-interval-ms W]`` runs
    the scenario under the closed-loop fleet controller (autoscaling,
    SLO-aware admission, adaptive batching).
``repro backends [NAME] [--format md|json]``
    List every registered backend, or describe one by name.
``repro cache [info|stats|clear] [--stats]``
    Inspect (optionally with a per-experiment breakdown) or empty the
    on-disk result cache.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro._version import __version__
from repro.errors import ReproError
from repro.evaluation import engine, report
from repro.evaluation.registry import all_specs, get_spec, specs_by_tag
from repro.evaluation.reporting import format_markdown_table

__all__ = ["main", "build_parser"]


def _coerce_param(raw: str, type_label: str):
    """Coerce a ``--param`` value string according to its schema label."""
    if type_label == "int":
        return int(raw)
    if type_label == "float":
        return float(raw)
    if type_label == "str":
        return raw
    if type_label == "ints":
        return tuple(int(part) for part in raw.split(",") if part)
    if type_label == "floats":
        return tuple(float(part) for part in raw.split(",") if part)
    if type_label == "strs":
        return tuple(part for part in raw.split(",") if part)
    if type_label == "int_pairs":
        # e.g. "210:1024,1:2048" -> ((210, 1024), (1, 2048))
        pairs = []
        for chunk in raw.split(","):
            if not chunk:
                continue
            left, _, right = chunk.partition(":")
            pairs.append((int(left), int(right)))
        return tuple(pairs)
    raise ValueError(f"unknown param type '{type_label}'")


def _parse_params(spec, assignments: list[str]) -> dict:
    """Turn ``k=v`` strings into typed overrides for ``spec``."""
    overrides = {}
    for assignment in assignments:
        key, separator, value = assignment.partition("=")
        if not separator:
            raise ReproError(f"--param expects key=value, got '{assignment}'")
        if key not in spec.param_schema:
            raise ReproError(
                f"experiment '{spec.id}' has no parameter '{key}'; "
                f"schema: {dict(spec.param_schema)}"
            )
        type_label = spec.param_schema[key]
        try:
            overrides[key] = _coerce_param(value, type_label)
        except ValueError:
            raise ReproError(
                f"cannot parse --param {key}={value!r} as {type_label}"
            ) from None
    return overrides


def _cmd_list(args) -> int:
    specs = specs_by_tag(args.tag) if args.tag else all_specs()
    if args.format == "json":
        payload = [
            {
                "id": spec.id,
                "anchor": spec.anchor,
                "title": spec.title,
                "tags": list(spec.tags),
                "params": dict(spec.param_schema),
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [spec.id, spec.anchor, ",".join(spec.tags), spec.title] for spec in specs
        ]
        print(format_markdown_table(["id", "anchor", "tags", "title"], rows))
        print(f"\n{len(specs)} experiments registered.")
    return 0


def _cmd_run(args) -> int:
    specs = [get_spec(experiment_id) for experiment_id in args.ids]
    # A --param applies to every requested spec that declares the key, so
    # shared parameters (e.g. `datasets` on fig15/fig16/tab10) fan out while
    # mixed-schema multi-id runs still work; a key no spec declares errors.
    for assignment in args.param:
        key = assignment.partition("=")[0]
        if not any(key in spec.param_schema for spec in specs):
            raise ReproError(
                f"no requested experiment has a parameter '{key}'; "
                + "; ".join(f"{spec.id}: {sorted(spec.param_schema)}" for spec in specs)
            )
    overrides_by_id = {}
    for spec in specs:
        overrides = dict(spec.smoke_params) if args.smoke else {}
        applicable = [
            assignment for assignment in args.param
            if assignment.partition("=")[0] in spec.param_schema
        ]
        overrides.update(_parse_params(spec, applicable))
        overrides_by_id[spec.id] = overrides
    tables = engine.run_many(
        args.ids,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        overrides_by_id=overrides_by_id,
    )
    for table in tables:
        source = table.provenance.get("cache", "off")
        print(
            f"[{table.experiment_id}] {table.title} — {len(table)} rows "
            f"(cache {source})",
            file=sys.stderr,
        )
    if args.format == "json":
        # One document per request: a single object for one id, a JSON array
        # for several, so the output always parses as one JSON value.
        documents = [json.loads(table.to_json()) for table in tables]
        payload = documents[0] if len(documents) == 1 else documents
        output = json.dumps(payload, indent=2) + "\n"
    elif args.format == "csv":
        output = "\n\n".join(table.to_csv() for table in tables)
    else:
        output = (
            "\n\n".join(f"## {table.title}\n\n{table.to_markdown()}" for table in tables)
            + "\n"
        )
    if args.output:
        Path(args.output).write_text(output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(output, end="")
    return 0


def _cmd_report(args) -> int:
    path = report.write_report(
        args.output,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        workers=args.workers,
        smoke=args.smoke,
    )
    print(f"wrote {path}")
    return 0


def _cmd_cache(args) -> int:
    if args.action == "clear":
        removed = engine.clear_cache(args.cache_dir)
        print(f"removed {removed} cached result(s)")
    elif args.stats or args.action == "stats":
        print(json.dumps(engine.cache_stats(args.cache_dir), indent=2))
    else:
        info = engine.cache_info(args.cache_dir)
        print(json.dumps(info, indent=2))
    return 0


def _emit(args, output: str) -> None:
    """Print ``output`` or write it to ``--output FILE``."""
    if args.output:
        Path(args.output).write_text(output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(output, end="")


def _cmd_backends(args) -> int:
    from repro.backends import describe_backend, describe_backends

    if args.name:
        description = describe_backend(args.name)
        if args.format == "json":
            _emit(args, json.dumps(description, indent=2) + "\n")
        else:
            rows = [
                [key, ",".join(value) if isinstance(value, list) else value]
                for key, value in description.items()
            ]
            _emit(args, format_markdown_table(["field", "value"], rows) + "\n")
        return 0
    rows = describe_backends()
    if args.format == "json":
        _emit(args, json.dumps(rows, indent=2) + "\n")
    else:
        headers = ["name", "family", "symbolic", "power (W)", "schedulers",
                   "description"]
        table = format_markdown_table(
            headers,
            [
                [
                    row["name"],
                    row["family"],
                    "yes" if row["symbolic_friendly"] else "no",
                    row["power_watts"],
                    ",".join(row["schedulers"]),
                    row["description"],
                ]
                for row in rows
            ],
        )
        _emit(args, table + f"\n\n{len(rows)} backends registered.\n")
    return 0


def _serve_window_s(args) -> float | None:
    """Telemetry window in seconds, or None when telemetry is off."""
    if not (args.telemetry or args.dashboard):
        return None
    return args.window_ms * 1e-3


def _export_telemetry(args, result, source) -> None:
    """Write ``--telemetry FILE`` in the requested format, if asked."""
    if not args.telemetry:
        return
    from repro.serving import exporters

    series = result.telemetry
    if args.telemetry_format == "prom":
        Path(args.telemetry).write_text(exporters.to_prometheus(series))
    else:
        exporters.write_jsonl(args.telemetry, series, source=source)
    print(
        f"telemetry ({args.telemetry_format}, {series.num_windows} windows) "
        f"-> {args.telemetry}",
        file=sys.stderr,
    )


def _render_serve_dashboard(result, title: str) -> str:
    """The ``--dashboard`` terminal view over a run's telemetry series."""
    from repro.serving import exporters

    return exporters.render_dashboard(result.telemetry, title=title)


def _serve_trace_replay(args, backends) -> int:
    """``repro serve --trace FILE`` — streamed replay of a recorded trace."""
    from repro.serving import metrics
    from repro.serving.trace import RequestTrace, replay_trace

    trace = RequestTrace(args.trace)
    result = replay_trace(
        args.trace,
        num_chips=args.chips,
        router=args.router or "jsq",
        policy=args.policy or "continuous",
        backends=backends,
        chunk_size=args.chunk_size,
        shards=args.shards,
        shard_workers=args.shard_workers,
        telemetry_window_s=_serve_window_s(args),
    )
    _export_telemetry(
        args, result,
        source={"trace": trace.path.name, "requests": trace.num_requests},
    )
    if args.dashboard:
        _emit(args, _render_serve_dashboard(
            result, f"Trace replay telemetry — {trace.path.name}"
        ))
        return 0
    slo_s = args.slo_ms * 1e-3
    summary = metrics.summarize_result(result, slo_s)
    breakdown = metrics.per_workload_summary(result, slo_s)
    by_backend = metrics.per_backend_summary(result, slo_s)
    if args.format == "json":
        payload = {
            "trace": str(args.trace),
            "trace_info": {
                "num_requests": trace.num_requests,
                "duration_s": trace.info.duration_s,
                "workloads": list(trace.workloads),
                "source": dict(trace.info.source),
            },
            "provenance": result.provenance,
            "summary": summary,
            "per_workload": breakdown,
            "per_backend": by_backend,
        }
        output = json.dumps(payload, indent=2) + "\n"
    else:
        lines = [
            f"## Trace replay — {args.trace} "
            f"({trace.num_requests} requests, {len(trace.workloads)} workloads)",
            "",
        ]
        lines.append(
            format_markdown_table(
                ["metric", "value"], [[key, value] for key, value in summary.items()]
            )
        )
        if breakdown:
            lines.append("")
            headers = list(breakdown[0])
            lines.append(
                format_markdown_table(
                    headers, [[row[h] for h in headers] for row in breakdown]
                )
            )
        if len(by_backend) > 1:
            lines.append("")
            headers = list(by_backend[0])
            lines.append(
                format_markdown_table(
                    headers, [[row[h] for h in headers] for row in by_backend]
                )
            )
        output = "\n".join(lines) + "\n"
    _emit(args, output)
    return 0


def _serve_record(args) -> int:
    """``repro serve SCENARIO --record FILE`` — record traffic to a trace."""
    from repro.serving.trace import record_scenario

    info = record_scenario(
        args.record,
        args.scenario,
        seed=args.seed,
        load_scale=args.load_scale,
        duration_scale=args.duration_scale,
    )
    if args.format == "json":
        payload = {
            "trace": info.path,
            "num_requests": info.num_requests,
            "duration_s": info.duration_s,
            "workloads": list(info.workloads),
            "source": dict(info.source),
        }
        _emit(args, json.dumps(payload, indent=2) + "\n")
    else:
        rows = [
            ["trace", info.path],
            ["num_requests", info.num_requests],
            ["duration_s", round(info.duration_s, 4)],
            ["workloads", ",".join(info.workloads)],
        ]
        _emit(args, format_markdown_table(["field", "value"], rows) + "\n")
        print(
            f"recorded {info.num_requests} requests "
            f"({info.duration_s:.3f} s, workloads: {', '.join(info.workloads)}) "
            f"to {info.path}",
            file=sys.stderr,
        )
    return 0


def _serve_profile(args, backends) -> int:
    """``repro serve SCENARIO --profile`` — per-phase wall-clock breakdown."""
    from repro.serving.profile import profile_scenario

    if len(set(backends)) > 1:
        raise ReproError(
            "--profile needs a homogeneous fleet; name at most one --backend"
        )
    payload = profile_scenario(
        args.scenario,
        seed=args.seed,
        load_scale=args.load_scale,
        duration_scale=args.duration_scale,
        num_chips=args.chips,
        router=args.router,
        policy=args.policy,
        backend=backends[0] if backends else None,
        shards=args.shards,
        shard_workers=args.shard_workers,
    )
    if args.format == "json":
        _emit(args, json.dumps(payload, indent=2) + "\n")
        return 0
    sharding = ""
    if "shards" in payload:
        sharding = (
            f", shards {payload['shards']}"
            f" (effective {payload['shards_effective']})"
        )
    lines = [
        f"## Profile — scenario '{payload['scenario']}' "
        f"({payload['num_requests']} requests, {payload['num_chips']} chips, "
        f"router {payload['router']}, policy {payload['policy']}{sharding})",
        "",
        format_markdown_table(
            ["phase", "seconds", "calls", "share (%)"],
            [
                [row["phase"], row["seconds"], row["calls"], row["share_pct"]]
                for row in payload["phases"]
            ],
        ),
        "",
        format_markdown_table(
            ["metric", "value"],
            [
                ["instrumented run (s)", payload["instrumented_run_s"]],
                ["uninstrumented run (s)", payload["uninstrumented_run_s"]],
                ["fast-path speedup (x)", payload["fast_path_speedup_x"]],
                ["warm-up run (s)", payload["warmup_run_s"]],
            ],
        ),
    ]
    if "event_paths" in payload:
        paths = payload["event_paths"]
        engine = (
            f" (coupled engine: {payload['coupled_engine']})"
            if "coupled_engine" in payload
            else ""
        )
        lines += [
            "",
            f"Dispatch paths of the uninstrumented run{engine}:",
            "",
            format_markdown_table(
                ["dispatch path", "requests", "spans"],
                [
                    ["water-fill (vectorized jsq)",
                     paths["water_fill_requests"],
                     paths["water_fill_spans"]],
                    ["bulk idle-disjoint runs",
                     paths["bulk_run_requests"],
                     paths["bulk_runs"]],
                    ["scalar event loop", paths["scalar_requests"], "-"],
                ],
            ),
        ]
    if "shard_fallback" in payload:
        lines += [
            "",
            "Sharding fell back to the single-shard core: "
            f"{payload['shard_fallback']}.",
        ]
    _emit(args, "\n".join(lines) + "\n")
    return 0


def _serve_suite(args, backends, names) -> int:
    """``repro serve A[,B...] --jobs N`` — fan cases across a process pool."""
    from repro.serving.scenarios import get_scenario
    from repro.serving.suite import SuiteCase, run_suite

    for name in names:
        get_scenario(name)  # fail fast on typos before forking workers
    cases = [
        SuiteCase(
            scenario=name,
            seed=args.seed,
            load_scale=args.load_scale,
            duration_scale=args.duration_scale,
            num_chips=args.chips,
            router=args.router,
            policy=args.policy,
            backends=backends,
        )
        for name in names
    ]
    results = run_suite(cases, jobs=args.jobs)
    if args.format == "json":
        payload = [
            {
                "scenario": res.scenario,
                "provenance": res.provenance,
                "summary": res.summary,
                "per_workload": res.per_workload,
                "per_backend": res.per_backend,
            }
            for res in results
        ]
        _emit(args, json.dumps(payload, indent=2) + "\n")
        return 0
    sections = []
    for res in results:
        lines = [f"## Scenario '{res.scenario}' — {res.description}", ""]
        lines.append(
            format_markdown_table(
                ["metric", "value"],
                [[key, value] for key, value in res.summary.items()],
            )
        )
        if res.per_workload:
            lines.append("")
            headers = list(res.per_workload[0])
            lines.append(
                format_markdown_table(
                    headers,
                    [[row[h] for h in headers] for row in res.per_workload],
                )
            )
        if len(res.per_backend) > 1:
            lines.append("")
            headers = list(res.per_backend[0])
            lines.append(
                format_markdown_table(
                    headers,
                    [[row[h] for h in headers] for row in res.per_backend],
                )
            )
        sections.append("\n".join(lines))
    _emit(args, "\n\n".join(sections) + "\n")
    print(
        f"ran {len(results)} scenario case(s) with --jobs {args.jobs}",
        file=sys.stderr,
    )
    return 0


def _reject_stray_serve_options(args, backends) -> None:
    """Fail fast on flag combinations that would be silently ignored."""
    if args.trace and args.record:
        raise ReproError("--trace and --record are mutually exclusive")
    if args.jobs < 1:
        raise ReproError(f"--jobs must be at least 1, got {args.jobs}")
    suite_mode = args.jobs != 1 or "," in (args.scenario or "")
    if suite_mode:
        stray = [
            flag
            for flag, on in (
                ("--trace", args.trace),
                ("--record", args.record),
                ("--list", args.list),
                ("--smoke", args.smoke),
                ("--profile", args.profile),
                ("--shards", args.shards != 1),
                ("--shard-workers", args.shard_workers is not None),
                ("--telemetry", args.telemetry),
                ("--dashboard", args.dashboard),
                ("--chaos", args.chaos),
                ("--sessions", args.sessions),
                ("--users", args.users is not None),
                ("--controller", args.controller is not None),
            )
            if on
        ]
        if stray:
            raise ReproError(
                "--jobs (or a comma-separated scenario list) runs a suite of "
                "independent scenario cases; it does not combine with: "
                + ", ".join(stray)
            )
    if args.trace:
        stray = []
        if args.scenario:
            stray.append(f"positional SCENARIO ({args.scenario!r})")
        stray.extend(
            flag
            for flag, raw, default in (
                ("--seed", args.seed, 0),
                ("--load-scale", args.load_scale, 1.0),
                ("--duration-scale", args.duration_scale, 1.0),
                ("--chaos", args.chaos, None),
                ("--sessions", args.sessions, False),
                ("--users", args.users, None),
                ("--controller", args.controller, None),
            )
            if raw != default
        )
        if stray:
            raise ReproError(
                "a trace replay is deterministic — it does not accept: "
                + ", ".join(stray)
            )
    if args.record:
        if not args.scenario:
            raise ReproError("--record needs a scenario to record (see --list)")
        stray = [
            flag
            for flag, raw in (
                ("--chips", args.chips),
                ("--router", args.router),
                ("--policy", args.policy),
                ("--slo-ms", None if args.slo_ms == 5.0 else args.slo_ms),
                ("--shards", None if args.shards == 1 else args.shards),
                ("--shard-workers", args.shard_workers),
                ("--chaos", args.chaos),
                ("--sessions", True if args.sessions else None),
                ("--users", args.users),
                ("--controller", args.controller),
            )
            if raw is not None
        ]
        if backends:
            stray.append("--backend")
        if stray:
            raise ReproError(
                "--record only captures traffic, not a fleet; drop: "
                + ", ".join(stray)
            )
    if (args.list or args.smoke) and (args.trace or args.record):
        raise ReproError(
            "--trace/--record do not combine with --list/--smoke"
        )
    if (args.list or args.smoke) and (
        args.shards != 1 or args.shard_workers is not None or args.profile
    ):
        raise ReproError(
            "--shards/--shard-workers/--profile only apply to scenario runs "
            "and trace replays; drop them from --list/--smoke invocations"
        )
    if (args.list or (args.smoke and not args.scenario)) and (
        args.chaos or args.sessions or args.users is not None
    ):
        raise ReproError(
            "--chaos/--sessions/--users apply to a single scenario run "
            "(including `repro serve SCENARIO --smoke`)"
        )
    if args.profile and args.trace:
        raise ReproError(
            "--profile breaks down one scenario run; it does not apply "
            "to --trace replays"
        )
    if args.profile and (args.chaos or args.sessions or args.users is not None):
        raise ReproError(
            "--profile times the open-loop pipeline phases; it does not "
            "combine with --chaos/--sessions/--users"
        )
    if (args.sessions or args.users is not None) and args.shards != 1:
        raise ReproError(
            "closed-loop session runs do not shard: think-time feedback "
            "couples every chip through the users"
        )
    if args.controller is not None:
        if args.shards != 1:
            raise ReproError(
                "--controller does not combine with --shards: scale actions "
                "couple every chip through the controller"
            )
        if args.sessions or args.users is not None:
            raise ReproError(
                "--controller runs are open-loop; closed-loop --sessions/"
                "--users shape their own offered load and cannot be autoscaled"
            )
        if args.profile:
            raise ReproError(
                "--profile times the open-loop pipeline phases; it does not "
                "combine with --controller"
            )
        if args.list:
            raise ReproError(
                "--controller applies to a single scenario run; it does not "
                "combine with --list"
            )
        if args.smoke and not args.scenario:
            raise ReproError(
                "--controller applies to a single scenario run (including "
                "`repro serve SCENARIO --smoke`), not the --smoke suite"
            )
    if args.control_interval_ms <= 0:
        raise ReproError(
            f"--control-interval-ms must be positive, "
            f"got {args.control_interval_ms:g}"
        )
    if args.control_interval_ms != 50.0 and args.controller is None:
        raise ReproError("--control-interval-ms needs --controller")
    if args.users is not None and args.users < 1:
        raise ReproError(f"--users must be positive, got {args.users}")
    if args.shard_workers is not None and args.shards == 1:
        raise ReproError("--shard-workers needs --shards greater than 1")
    telemetry_on = bool(args.telemetry or args.dashboard)
    if telemetry_on and (args.list or args.smoke or args.record or args.profile):
        raise ReproError(
            "--telemetry/--dashboard sample a served run; they do not "
            "combine with --list/--smoke/--record/--profile"
        )
    if not telemetry_on:
        if args.telemetry_format != "jsonl":
            raise ReproError("--telemetry-format needs --telemetry")
        if args.window_ms != 100.0:
            raise ReproError(
                "--window-ms needs --telemetry or --dashboard"
            )
    if args.window_ms <= 0:
        raise ReproError(
            f"--window-ms must be positive, got {args.window_ms:g}"
        )
    if args.dashboard and args.format == "json":
        raise ReproError(
            "--dashboard renders a terminal view; it does not combine "
            "with --format json (export with --telemetry instead)"
        )
    if not args.trace:
        if args.slo_ms != 5.0:
            raise ReproError(
                "--slo-ms only applies to --trace replays; scenario presets "
                "pin their own SLO"
            )
        if args.chunk_size != 65536:
            raise ReproError("--chunk-size only applies to --trace replays")


def _cmd_serve(args) -> int:
    from repro.serving import metrics, scenarios

    backends = tuple(
        name.strip()
        for chunk in args.backend
        for name in chunk.split(",")
        if name.strip()
    )
    if args.backend and not backends:
        raise ReproError(
            "--backend was given but named no backends; see `repro backends` "
            "for the registry listing"
        )
    if backends and (args.list or args.smoke):
        raise ReproError(
            "--backend only applies to scenario runs; drop it from "
            "--list/--smoke invocations"
        )
    _reject_stray_serve_options(args, backends)
    if args.trace:
        return _serve_trace_replay(args, backends)
    if args.record:
        return _serve_record(args)
    if args.list:
        presets = list(scenarios.SCENARIOS.values())
        if args.format == "json":
            payload = [
                {
                    "scenario": s.name,
                    "num_chips": s.num_chips,
                    "router": s.router,
                    "policy": s.policy,
                    "slo_ms": s.slo_s * 1e3,
                    "description": s.description,
                }
                for s in presets
            ]
            _emit(args, json.dumps(payload, indent=2) + "\n")
        else:
            rows = [
                [s.name, s.num_chips, s.router, s.policy,
                 f"{s.slo_s * 1e3:g}", s.description]
                for s in presets
            ]
            table = format_markdown_table(
                ["scenario", "chips", "router", "policy", "slo (ms)", "description"],
                rows,
            )
            _emit(args, table + "\n")
        return 0
    if args.smoke and not args.scenario:
        serving_specs = specs_by_tag("serving")
        tables = engine.run_many(
            [spec.id for spec in serving_specs],
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            overrides_by_id={
                spec.id: dict(spec.smoke_params) for spec in serving_specs
            },
        )
        if args.format == "json":
            documents = [json.loads(table.to_json()) for table in tables]
            _emit(args, json.dumps(documents, indent=2) + "\n")
        else:
            _emit(
                args,
                "".join(
                    f"## {table.title}\n\n{table.to_markdown()}\n\n"
                    for table in tables
                ),
            )
        return 0
    if not args.scenario:
        raise ReproError(
            "repro serve needs a scenario name (see --list), --smoke or --list"
        )
    if args.profile:
        return _serve_profile(args, backends)
    names = [name.strip() for name in args.scenario.split(",") if name.strip()]
    if args.jobs != 1 or len(names) > 1:
        return _serve_suite(args, backends, names)
    chaos_timeline = None
    if args.chaos:
        from repro.serving.chaos import ChaosTimeline

        chaos_timeline = ChaosTimeline.load(args.chaos)
        if not chaos_timeline:
            raise ReproError(f"chaos timeline {args.chaos} has no incidents")
    session_override = None
    if args.sessions or args.users is not None:
        import dataclasses

        from repro.serving.scenarios import SERVED_WORKLOADS
        from repro.serving.sessions import SessionConfig

        base = scenarios.get_scenario(args.scenario).sessions
        if base is None:
            base = SessionConfig(
                users=32, turns=4, sessions_per_user=2,
                think_time_s=0.005, session_gap_s=0.02, start_spread_s=0.2,
                mix=tuple((name, 1.0) for name in SERVED_WORKLOADS),
            )
        if args.users is not None:
            base = dataclasses.replace(base, users=args.users)
        session_override = base
    controller_config = None
    if args.controller is not None:
        from repro.serving.control import ControllerConfig

        controller_config = ControllerConfig(
            policy=args.controller,
            interval_s=args.control_interval_ms * 1e-3,
        )
    # `SCENARIO --smoke` = that one scenario, shrunk to smoke scale.
    duration_scale = args.duration_scale * (0.2 if args.smoke else 1.0)
    scenario, result = scenarios.run_scenario(
        args.scenario,
        seed=args.seed,
        load_scale=args.load_scale,
        duration_scale=duration_scale,
        num_chips=args.chips,
        router=args.router,
        policy=args.policy,
        backends=backends or None,
        shards=args.shards,
        shard_workers=args.shard_workers,
        telemetry_window_s=_serve_window_s(args),
        chaos=chaos_timeline,
        sessions=session_override,
        controller=controller_config,
    )
    _export_telemetry(
        args, result,
        source={"scenario": scenario.name, "seed": args.seed,
                "load_scale": args.load_scale,
                "duration_scale": args.duration_scale},
    )
    if args.dashboard:
        _emit(args, _render_serve_dashboard(
            result, f"Scenario '{scenario.name}' telemetry"
        ))
        return 0
    summary = metrics.summarize_result(result, scenario.slo_s)
    breakdown = metrics.per_workload_summary(result, scenario.slo_s)
    by_backend = metrics.per_backend_summary(result, scenario.slo_s)
    resilience = (
        metrics.resilience_metrics(result)
        if result.incidents or result.requests_lost or result.requests_shed
        else None
    )
    if args.format == "json":
        payload = {
            "scenario": scenario.name,
            "provenance": result.provenance,
            "summary": summary,
            "per_workload": breakdown,
            "per_backend": by_backend,
        }
        if resilience is not None:
            payload["resilience"] = resilience
        output = json.dumps(payload, indent=2) + "\n"
    else:
        lines = [f"## Scenario '{scenario.name}' — {scenario.description}", ""]
        lines.append(
            format_markdown_table(
                ["metric", "value"], [[key, value] for key, value in summary.items()]
            )
        )
        lines.append("")
        headers = list(breakdown[0])
        lines.append(
            format_markdown_table(
                headers, [[row[h] for h in headers] for row in breakdown]
            )
        )
        if len(by_backend) > 1:
            lines.append("")
            headers = list(by_backend[0])
            lines.append(
                format_markdown_table(
                    headers, [[row[h] for h in headers] for row in by_backend]
                )
            )
        controller_info = result.provenance.get("controller")
        if controller_info is not None:
            lines.extend(["", "### Controller", ""])
            lines.append(
                format_markdown_table(
                    ["metric", "value"],
                    [
                        ["policy", controller_info["policy"]],
                        ["interval (ms)",
                         f"{controller_info['interval_s'] * 1e3:g}"],
                        ["initial chips", controller_info["initial_chips"]],
                        ["peak chips", controller_info["peak_chips"]],
                        ["final active", controller_info["final_active"]],
                        ["scale-ups", controller_info["scale_ups"]],
                        ["scale-downs", controller_info["scale_downs"]],
                        ["shed (admission)",
                         controller_info["shed_admission"]],
                        ["final router", controller_info["final_router"]],
                        ["final max batch",
                         controller_info["final_max_batch_size"]],
                    ],
                )
            )
        if resilience is not None:
            lines.extend(["", "### Resilience", ""])
            lines.append(
                format_markdown_table(
                    ["metric", "value"],
                    [
                        [key, _render_resilience_value(value)]
                        for key, value in resilience.items()
                    ],
                )
            )
        output = "\n".join(lines) + "\n"
    _emit(args, output)
    return 0


def _render_resilience_value(value):
    """Render one Resilience-table cell; never-recovered shows as em dash."""
    if value is None:
        return "—"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def _coerce_option(flag: str, raw: object, type_label: str):
    """Coerce one CLI option value, mapping parse failures to typed errors."""
    try:
        return _coerce_param(str(raw), type_label)
    except ValueError:
        raise ReproError(f"cannot parse {flag} {raw!r} as {type_label}") from None


def _dse_overrides(args, spec) -> dict:
    """Typed engine overrides from the ``repro dse`` option set."""
    overrides = dict(spec.smoke_params) if args.smoke else {}
    if getattr(args, "space", None):
        overrides["space"] = args.space
    for key, flag, raw in (
        ("workloads", "--workloads", getattr(args, "workloads", None)),
        ("batch_sizes", "--batch-sizes", getattr(args, "batch_sizes", None)),
        ("objectives", "--objectives", getattr(args, "objectives", None)),
    ):
        if raw is not None and key in spec.param_schema:
            overrides[key] = _coerce_option(flag, raw, spec.param_schema[key])
    return overrides


def _dse_table(args, table, extra_sections=()) -> None:
    """Emit one dse result table (plus optional extra markdown sections)."""
    if args.format == "json":
        _emit(args, table.to_json() + "\n")
        return
    lines = [f"## {table.title}", "", table.to_markdown()]
    for section_title, section_body in extra_sections:
        lines.extend(["", f"### {section_title}", "", section_body])
    _emit(args, "\n".join(lines) + "\n")


#: repro dse options only meaningful for sweep actions (run/frontier) and
#: only for the capacity planner, used to reject silently-ignored flags.
_DSE_SWEEP_ONLY = ("workloads", "batch_sizes", "objectives")
_DSE_PLAN_ONLY = (
    "offered_rps", "target_p99", "chips", "routers", "policies", "requests"
)


def _reject_stray_dse_options(args) -> None:
    """Fail fast when an option cannot apply to the requested dse action.

    Silently dropping a flag (e.g. ``repro dse plan pe_array`` or
    ``repro dse run --requests 100``) would hand the user default results
    for a configuration that was never applied.
    """
    stray = []
    if args.action in ("list", "plan") and args.space:
        stray.append(f"positional SPACE ({args.space!r})")
    if args.action in ("list", "plan"):
        stray.extend(
            f"--{name.replace('_', '-')}"
            for name in _DSE_SWEEP_ONLY
            if getattr(args, name) is not None
        )
    if args.action in ("list", "run", "frontier"):
        stray.extend(
            f"--{name.replace('_', '-')}"
            for name in _DSE_PLAN_ONLY
            if getattr(args, name) is not None
        )
    if args.action == "list" and args.smoke:
        stray.append("--smoke")
    if stray:
        raise ReproError(
            f"`repro dse {args.action}` does not accept: {', '.join(stray)}"
        )


def _cmd_dse(args) -> int:
    from repro.dse import describe_design_spaces

    _reject_stray_dse_options(args)
    if args.action == "list":
        rows = describe_design_spaces()
        if args.format == "json":
            _emit(args, json.dumps(rows, indent=2) + "\n")
        else:
            headers = ["space", "axes", "points", "smoke_points", "description"]
            table = format_markdown_table(
                headers, [[row[h] for h in headers] for row in rows]
            )
            _emit(args, table + f"\n\n{len(rows)} design spaces registered.\n")
        return 0
    if args.action == "plan":
        spec = get_spec("dse_capacity")
        overrides = dict(spec.smoke_params) if args.smoke else {}
        for key, flag, raw in (
            ("offered_rps", "--offered-rps", args.offered_rps),
            ("target_p99_ms", "--target-p99", args.target_p99),
            ("chip_counts", "--chips", args.chips),
            ("routers", "--routers", args.routers),
            ("policies", "--policies", args.policies),
            ("requests", "--requests", args.requests),
        ):
            if raw is not None:
                overrides[key] = _coerce_option(flag, raw, spec.param_schema[key])
        table = engine.run(
            "dse_capacity",
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            **overrides,
        )
        recommended = [row for row in table.rows if row.get("recommended")]
        note = (
            "recommended: "
            + ", ".join(
                f"{row['chips']} chip(s), {row['router']} routing, "
                f"{row['policy']} batching ({row['fleet_power_w']} W fleet)"
                for row in recommended
            )
            if recommended
            else "no configuration meets the target; widen the search grid"
        )
        _dse_table(args, table, extra_sections=[("Recommendation", note)])
        return 0
    # run / frontier share the sweep option set; `run` prints the full
    # annotated sweep plus its frontier subset, `frontier` only the latter.
    spec_id = "dse_sweep" if args.action == "run" else "dse_frontier"
    spec = get_spec(spec_id)
    table = engine.run(
        spec_id,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        **_dse_overrides(args, spec),
    )
    if args.action == "frontier":
        _dse_table(args, table)
        return 0
    frontier_rows = [row for row in table.rows if row.get("pareto")]
    frontier_md = format_markdown_table(
        table.headers, [[row.get(h, "") for h in table.headers] for row in frontier_rows]
    )
    _dse_table(
        args,
        table,
        extra_sections=[
            (
                f"Pareto frontier ({len(frontier_rows)} of {len(table)} designs)",
                frontier_md,
            )
        ],
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the CogSys reproduction's registered experiments.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="enumerate registered experiments")
    list_parser.add_argument("--tag", help="only experiments carrying this tag")
    list_parser.add_argument("--format", choices=("md", "json"), default="md")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="execute experiments by id")
    run_parser.add_argument("ids", nargs="+", metavar="ID", help="experiment id(s)")
    run_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="K=V",
        help="driver parameter override (repeatable); lists are comma-separated",
    )
    run_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help="run ids in N worker processes")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")
    run_parser.add_argument("--format", choices=("md", "csv", "json"), default="md")
    run_parser.add_argument("--output", metavar="FILE", help="write tables to FILE")
    run_parser.add_argument("--smoke", action="store_true",
                            help="use each spec's smoke-scale parameters")
    run_parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    run_parser.set_defaults(func=_cmd_run)

    report_parser = subparsers.add_parser(
        "report", help="regenerate EXPERIMENTS.md from the registry"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md", metavar="FILE")
    report_parser.add_argument("--workers", type=int, default=None, metavar="N")
    report_parser.add_argument("--no-cache", action="store_true")
    report_parser.add_argument("--smoke", action="store_true",
                               help="smoke-scale parameters (CI/tests)")
    report_parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    report_parser.set_defaults(func=_cmd_report)

    cache_parser = subparsers.add_parser("cache", help="inspect or clear the result cache")
    cache_parser.add_argument("action", nargs="?", default="info",
                              choices=("info", "stats", "clear"))
    cache_parser.add_argument("--stats", action="store_true",
                              help="per-experiment entry/byte breakdown")
    cache_parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    cache_parser.set_defaults(func=_cmd_cache)

    serve_parser = subparsers.add_parser(
        "serve", help="run the request-level serving simulator"
    )
    serve_parser.add_argument("scenario", nargs="?", metavar="SCENARIO",
                              help="scenario preset name (see --list); a "
                                   "comma-separated list runs a suite "
                                   "(parallel with --jobs)")
    serve_parser.add_argument("--list", action="store_true",
                              help="enumerate the scenario presets")
    serve_parser.add_argument("--smoke", action="store_true",
                              help="run every serving experiment at smoke "
                                   "scale (with SCENARIO: that one scenario "
                                   "at 0.2x duration)")
    serve_parser.add_argument("--chaos", metavar="FILE",
                              help="inject the chaos timeline (JSON incident "
                                   "file) into the scenario run")
    serve_parser.add_argument("--sessions", action="store_true",
                              help="serve closed-loop session traffic (users "
                                   "with think-time loops) instead of the "
                                   "scenario's open-loop phases")
    serve_parser.add_argument("--users", type=int, default=None, metavar="N",
                              help="closed-loop user population (implies "
                                   "--sessions; default 32)")
    serve_parser.add_argument("--controller", default=None,
                              choices=("target_util", "queue_pid"),
                              help="run the scenario under a closed-loop "
                                   "fleet controller (autoscaling + SLO-aware "
                                   "admission; see repro.serving.control)")
    serve_parser.add_argument("--control-interval-ms", type=float,
                              default=50.0, metavar="MS",
                              help="controller tick period in simulated "
                                   "milliseconds (default 50)")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="traffic seed (default 0)")
    serve_parser.add_argument("--load-scale", type=float, default=1.0,
                              metavar="X", help="scale every arrival rate by X")
    serve_parser.add_argument("--duration-scale", type=float, default=1.0,
                              metavar="X", help="scale the scenario duration by X")
    serve_parser.add_argument("--chips", type=int, default=None, metavar="N",
                              help="override the scenario's fleet size")
    serve_parser.add_argument("--router", default=None,
                              choices=("round_robin", "jsq", "affinity",
                                       "symbolic_affinity"),
                              help="override the scenario's routing policy")
    serve_parser.add_argument("--backend", action="append", default=[],
                              metavar="NAME[,NAME...]",
                              help="per-chip backend names (repeatable or "
                                   "comma-separated; cycled across the fleet)")
    serve_parser.add_argument("--policy", default=None,
                              choices=("none", "fixed", "continuous"),
                              help="override the scenario's batching policy")
    serve_parser.add_argument("--trace", metavar="FILE",
                              help="replay a recorded request trace through "
                                   "the streaming event core")
    serve_parser.add_argument("--record", metavar="FILE",
                              help="record the scenario's traffic to a JSONL "
                                   "trace instead of serving it")
    serve_parser.add_argument("--slo-ms", type=float, default=5.0, metavar="MS",
                              help="SLO for trace-replay reports (default 5)")
    serve_parser.add_argument("--chunk-size", type=int, default=65536,
                              help=argparse.SUPPRESS)
    serve_parser.add_argument("--shards", type=int, default=1, metavar="N",
                              help="split router-independent sub-fleets into N "
                                   "shard simulations (records identical to "
                                   "a single-shard run)")
    serve_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="run the (comma-separated) scenario cases "
                                   "across N pooled worker processes "
                                   "(see repro.serving.suite)")
    serve_parser.add_argument("--shard-workers", type=int, default=None,
                              metavar="N", help=argparse.SUPPRESS)
    serve_parser.add_argument("--profile", action="store_true",
                              help="per-phase wall-clock breakdown of one "
                                   "scenario run (no serving report)")
    serve_parser.add_argument("--telemetry", metavar="FILE",
                              help="export the windowed telemetry time series "
                                   "to FILE (see --telemetry-format)")
    serve_parser.add_argument("--telemetry-format", default="jsonl",
                              choices=("jsonl", "prom"),
                              help="telemetry export format: self-describing "
                                   "JSONL (default) or Prometheus text")
    serve_parser.add_argument("--window-ms", type=float, default=100.0,
                              metavar="MS",
                              help="telemetry window width in simulated "
                                   "milliseconds (default 100)")
    serve_parser.add_argument("--dashboard", action="store_true",
                              help="render a terminal sparkline dashboard "
                                   "over the windowed series instead of the "
                                   "summary report")
    serve_parser.add_argument("--format", choices=("md", "json"), default="md")
    serve_parser.add_argument("--output", metavar="FILE",
                              help="write the summary to FILE")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the result cache (--smoke only)")
    serve_parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    serve_parser.set_defaults(func=_cmd_serve)

    dse_parser = subparsers.add_parser(
        "dse", help="explore accelerator design spaces (sweeps + Pareto frontiers)"
    )
    dse_parser.add_argument(
        "action",
        nargs="?",
        default="run",
        choices=("list", "run", "frontier", "plan"),
        help="list design spaces, run a sweep, print its frontier, or plan capacity",
    )
    dse_parser.add_argument("space", nargs="?", metavar="SPACE",
                            help="design-space name (see `repro dse list`)")
    dse_parser.add_argument("--smoke", action="store_true",
                            help="smoke-scale grid and parameters (CI/tests)")
    dse_parser.add_argument("--workloads", metavar="W[,W...]",
                            help="workloads to execute on every design point")
    dse_parser.add_argument("--batch-sizes", metavar="N[,N...]",
                            help="batch sizes to execute on every design point")
    dse_parser.add_argument("--objectives", metavar="KEY:SENSE[,...]",
                            help="pareto objectives, e.g. latency_ms:min,area_mm2:min")
    dse_parser.add_argument("--offered-rps", type=float, default=None,
                            metavar="X", help="plan: offered load (requests/s)")
    dse_parser.add_argument("--target-p99", type=float, default=None, metavar="MS",
                            help="plan: tail-latency target in milliseconds")
    dse_parser.add_argument("--chips", default=None, metavar="N[,N...]",
                            help="plan: fleet sizes to search")
    dse_parser.add_argument("--routers", default=None, metavar="R[,R...]",
                            help="plan: routing policies to search")
    dse_parser.add_argument("--policies", default=None, metavar="P[,P...]",
                            help="plan: batching policies to search")
    dse_parser.add_argument("--requests", type=int, default=None, metavar="N",
                            help="plan: request-stream length")
    dse_parser.add_argument("--format", choices=("md", "json"), default="md")
    dse_parser.add_argument("--output", metavar="FILE",
                            help="write the table(s) to FILE")
    dse_parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")
    dse_parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    dse_parser.set_defaults(func=_cmd_dse)

    backends_parser = subparsers.add_parser(
        "backends", help="list or describe the registered hardware backends"
    )
    backends_parser.add_argument("name", nargs="?", metavar="NAME",
                                 help="describe one backend instead of listing")
    backends_parser.add_argument("--format", choices=("md", "json"), default="md")
    backends_parser.add_argument("--output", metavar="FILE",
                                 help="write the listing to FILE")
    backends_parser.set_defaults(func=_cmd_backends)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
