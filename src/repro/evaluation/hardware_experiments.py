"""Hardware micro-benchmark drivers (Tab. IV, Tab. V, Fig. 11, 12, 17).

These experiments exercise the accelerator models directly: the
bubble-streaming dataflow versus the GEMV lowering, spatial/temporal
mapping of circular convolutions, the reconfigurable-PE design choice and
the circular-convolution speedup sweep.  Every driver returns plain Python
data (lists of dicts) and is bound into :mod:`repro.evaluation.registry`;
see the top-level ``README.md`` for the experiment index.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends import CustomSpec, get_backend
from repro.hardware import CogSysConfig
from repro.hardware.baselines import DEVICE_SPECS
from repro.hardware.bubble_stream import BubbleStreamSimulator
from repro.hardware.energy import PE_DESIGN_CHOICES
from repro.hardware.mapping import spatial_mapping, temporal_mapping
from repro.hardware.roofline import Roofline
from repro.hardware.systolic import SystolicArrayModel
from repro.workloads import build_workload

__all__ = [
    "accelerator_comparison",
    "pe_design_choice",
    "bs_dataflow_comparison",
    "bs_roofline",
    "st_mapping_tradeoff",
    "circconv_speedup_sweep",
]


def accelerator_comparison(vector_dim: int = 1024) -> list[dict]:
    """Tab. IV: per-circular-convolution memory footprint and parallelism support."""
    gemv_bytes = (vector_dim * vector_dim + 2 * vector_dim) * 4
    bs_bytes = 3 * vector_dim * 4
    return [
        {
            "accelerator": "TPU/MTIA/Gemmini-like (GEMV)",
            "footprint_bytes": gemv_bytes,
            "footprint_order": "O(d^2)",
            "column_wise_parallelism": False,
            "cell_wise_parallelism": True,
            "neurosymbolic_support": False,
        },
        {
            "accelerator": "CogSys (BS dataflow)",
            "footprint_bytes": bs_bytes,
            "footprint_order": "O(d)",
            "column_wise_parallelism": True,
            "cell_wise_parallelism": True,
            "neurosymbolic_support": True,
        },
    ]


def pe_design_choice(num_tasks: int = 2) -> list[dict]:
    """Tab. V: reconfigurable nsPEs versus dedicated heterogeneous PE pools."""
    workload = build_workload("nvsa", num_tasks=num_tasks)
    full = get_backend(
        CustomSpec(name="cogsys_16cell", cogsys_config=CogSysConfig(num_cells=16))
    )
    half = get_backend(
        CustomSpec(name="cogsys_8cell", cogsys_config=CogSysConfig(num_cells=8))
    )
    full_latency = full.execute(workload, scheduler="adaptive").total_seconds
    # A same-area heterogeneous design dedicates half the cells to neural and
    # half to symbolic kernels; each kernel can only use its own pool, which
    # is approximated by running the whole workload on an 8-cell device.
    half_latency = half.execute(workload, scheduler="adaptive").total_seconds
    rows = []
    for name, reference in PE_DESIGN_CHOICES.items():
        measured_latency = full_latency if "16+16" in name or name.startswith("reconfigurable") else half_latency
        rows.append(
            {
                "configuration": name,
                "area_factor": reference["area"],
                "reported_latency_factor": reference["latency"],
                "measured_latency_factor": measured_latency / full_latency,
                "energy_factor": reference["energy"],
                "utilization": reference["utilization"],
            }
        )
    return rows


def bs_dataflow_comparison(vector_dim: int = 3, num_convs: int = 3) -> dict:
    """Fig. 11a/b: BS dataflow versus GEMV lowering on a tiny example."""
    simulator = BubbleStreamSimulator(vector_dim)
    rng = np.random.default_rng(0)
    run = simulator.run(rng.normal(size=vector_dim), rng.normal(size=vector_dim))
    # On CogSys the ``num_convs`` convolutions run on different columns in
    # parallel, so the batch finishes in one BS pass.
    cogsys_cycles = run.cycles
    cell = SystolicArrayModel(vector_dim, vector_dim)
    tpu_cycles = cell.circconv_cycles_gemv(vector_dim, num_convs).cycles
    return {
        "vector_dim": vector_dim,
        "num_convs": num_convs,
        "cogsys_cycles": cogsys_cycles,
        "tpu_like_cycles": tpu_cycles,
        "speedup": tpu_cycles / cogsys_cycles,
        "functional_check_cycles": run.cycles,
    }


def bs_roofline(vector_dim: int = 2048) -> list[dict]:
    """Fig. 11c: arithmetic intensity of BS dataflow vs GEMV vs GPU."""
    flops = 2 * vector_dim * vector_dim - vector_dim
    rows = []
    cogsys = Roofline("cogsys", peak_flops=2 * 16384 * 0.8e9, memory_bandwidth_bytes_per_s=15e12)
    gpu = Roofline("rtx2080ti", peak_flops=13.4e12, memory_bandwidth_bytes_per_s=616e9)
    rows.append(
        {
            "implementation": "CogSys BS dataflow",
            "arithmetic_intensity": flops / (3 * vector_dim * 4),
            "bound": cogsys.place("bs", flops, 3 * vector_dim * 4).bound,
        }
    )
    gemv_bytes = (vector_dim * vector_dim + 2 * vector_dim) * 4
    rows.append(
        {
            "implementation": "GPU/TPU GEMV lowering",
            "arithmetic_intensity": flops / gemv_bytes,
            "bound": gpu.place("gemv", flops, gemv_bytes).bound,
        }
    )
    return rows


def st_mapping_tradeoff(
    num_arrays: int = 32,
    array_length: int = 512,
    cases: Sequence[tuple[int, int]] = ((210, 1024), (2575, 1024), (1, 2048), (1000, 64)),
) -> list[dict]:
    """Fig. 12: spatial vs temporal mapping latency and bandwidth."""
    rows = []
    for num_convs, vector_dim in cases:
        spatial = spatial_mapping(num_arrays, array_length, num_convs, vector_dim)
        temporal = temporal_mapping(num_arrays, array_length, num_convs, vector_dim)
        chosen = "temporal" if temporal.cycles < spatial.cycles else "spatial"
        rows.append(
            {
                "num_convs": num_convs,
                "vector_dim": vector_dim,
                "spatial_cycles": spatial.cycles,
                "temporal_cycles": temporal.cycles,
                "spatial_reads_per_pass": spatial.memory_reads_per_pass,
                "temporal_reads_per_pass": temporal.memory_reads_per_pass,
                "chosen": chosen,
            }
        )
    return rows


def circconv_speedup_sweep(
    vector_dims: Sequence[int] = (128, 256, 512, 1024, 2048),
    conv_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
) -> list[dict]:
    """Fig. 17: circular-convolution speedup of CogSys over TPU-like and GPU."""
    cogsys = get_backend("cogsys").accelerator
    tpu = SystolicArrayModel(128, 128)
    gpu = DEVICE_SPECS["rtx2080ti"]
    rows = []
    for vector_dim in vector_dims:
        for count in conv_counts:
            # The paper's Fig. 17 sweep keeps the (N = 32, M = 512) scale-up
            # organisation fixed, so scale-out reconfiguration is disabled.
            cogsys_cycles = cogsys.circconv_mapping(
                vector_dim, count, allow_scale_out=False
            ).cycles
            cogsys_seconds = cogsys_cycles / cogsys.config.frequency_hz
            tpu_seconds = tpu.circconv_cycles_gemv(vector_dim, count).cycles / 0.8e9
            flops = count * (2 * vector_dim * vector_dim - vector_dim)
            gemv_bytes = count * (vector_dim * vector_dim + 2 * vector_dim) * 4
            gpu_seconds = max(
                flops / (gpu.peak_flops * 0.05),
                gemv_bytes / (gpu.memory_bandwidth_bytes_per_s * 0.85),
            )
            rows.append(
                {
                    "vector_dim": vector_dim,
                    "num_convs": count,
                    "speedup_vs_tpu": tpu_seconds / cogsys_seconds,
                    "speedup_vs_gpu": gpu_seconds / cogsys_seconds,
                }
            )
    return rows
