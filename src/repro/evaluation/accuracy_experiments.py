"""Algorithm-optimization and accuracy drivers (Fig. 8, Tab. III, VII-IX).

These experiments measure what the paper's algorithmic contributions do to
reasoning quality and to the memory/runtime budget: symbolic codebook
factorization, stochasticity injection and low-precision quantization.
Every driver returns plain Python data (lists of dicts) and is bound into
:mod:`repro.evaluation.registry`; see the top-level ``README.md`` for the
experiment index.
"""

from __future__ import annotations

import numpy as np

from repro.backends import get_backend
from repro.core import Precision
from repro.core.footprint import compare_footprints
from repro.hardware.energy import PRECISION_SILICON
from repro.evaluation.solver import CVRSolver, NeuroSymbolicSolver, SolverConfig, SVRTSolver
from repro.tasks import CVRGenerator, IRavenGenerator, PGMGenerator, RavenGenerator, SVRTGenerator
from repro.tasks.raven import RAVEN_CONFIGURATIONS
from repro.workloads import build_workload
from repro.workloads.nvsa import NVSA_FACTOR_SIZES

__all__ = [
    "factorization_efficiency",
    "optimization_impact",
    "factorization_accuracy_by_constellation",
    "factorization_accuracy_by_rule",
    "reasoning_accuracy",
    "precision_impact",
    "task_accuracy_overview",
]


def factorization_efficiency(device_name: str = "xavier_nx") -> dict:
    """Fig. 8: codebook memory and runtime with and without factorization."""
    report = compare_footprints(NVSA_FACTOR_SIZES, dim=1024)
    device = get_backend(device_name)
    with_fact = device.execute(build_workload("nvsa", use_factorization=True))
    without_fact = device.execute(build_workload("nvsa", use_factorization=False))
    return {
        "codebook_kib": report.product_codebook_kib,
        "factorized_kib": report.factorized_kib,
        "memory_reduction": report.reduction_factor,
        "runtime_with_factorization_s": with_fact.total_seconds,
        "runtime_without_factorization_s": without_fact.total_seconds,
        "runtime_speedup": without_fact.total_seconds / with_fact.total_seconds,
    }


def optimization_impact(num_tasks: int = 12) -> list[dict]:
    """Tab. III: directional impact of factorization, stochasticity, quantization."""
    generator = RavenGenerator("center", seed=11)
    batch = generator.generate(num_tasks)
    baseline = NeuroSymbolicSolver(
        SolverConfig(use_vsa_factorization=True, stochasticity=0.0, vector_dim=512)
    )
    stochastic = NeuroSymbolicSolver(
        SolverConfig(use_vsa_factorization=True, stochasticity=0.05, vector_dim=512)
    )
    quantized = NeuroSymbolicSolver(
        SolverConfig(
            use_vsa_factorization=True,
            stochasticity=0.05,
            quantization=Precision.INT8,
            vector_dim=512,
        )
    )
    footprint = compare_footprints(NVSA_FACTOR_SIZES, dim=1024)
    footprint_int8 = compare_footprints(NVSA_FACTOR_SIZES, dim=1024, precision=Precision.INT8)
    return [
        {
            "optimization": "factorization",
            "accuracy": baseline.accuracy(batch),
            "memory_kib": footprint.factorized_kib,
            "memory_direction": "reduce",
            "latency_direction": "reduce",
        },
        {
            "optimization": "factorization+stochasticity",
            "accuracy": stochastic.accuracy(batch),
            "memory_kib": footprint.factorized_kib,
            "memory_direction": "no impact",
            "latency_direction": "reduce",
        },
        {
            "optimization": "factorization+stochasticity+int8",
            "accuracy": quantized.accuracy(batch),
            "memory_kib": footprint_int8.factorized_kib,
            "memory_direction": "reduce",
            "latency_direction": "reduce",
        },
    ]


def factorization_accuracy_by_constellation(
    tasks_per_constellation: int = 4, vector_dim: int = 1024
) -> list[dict]:
    """Tab. VII (top): attribute-recovery accuracy per RAVEN constellation.

    As in NVSA, each visual component (e.g. the "left" and "right" shapes of
    the left-right constellation) is described by its own product vector and
    factorized independently; a panel counts as correct only when every
    component's attributes are recovered.
    """
    from repro.core import ConstantGaussianNoise, Factorizer, FactorizerConfig
    from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder

    rows = []
    rng = np.random.default_rng(3)
    for name, configuration in RAVEN_CONFIGURATIONS.items():
        domains = configuration.attribute_domains()
        space = BipolarSpace(vector_dim, seed=1)
        per_component: dict[str, tuple[SceneEncoder, Factorizer]] = {}
        for component in configuration.components:
            component_domains = {
                attribute: values
                for attribute, values in domains.items()
                if attribute.startswith(f"{component}.")
            }
            codebooks = CodebookSet.from_factors(component_domains, space)
            per_component[component] = (
                SceneEncoder(codebooks),
                Factorizer(
                    codebooks,
                    FactorizerConfig(
                        similarity_noise=ConstantGaussianNoise(0.05), seed=2
                    ),
                ),
            )
        generator = RavenGenerator(name, seed=int(rng.integers(0, 1_000_000)))
        total = 0
        correct = 0
        for task in generator.generate(tasks_per_constellation):
            for panel in task.context:
                total += 1
                panel_correct = True
                for component, (encoder, factorizer) in per_component.items():
                    component_truth = {
                        attribute: value
                        for attribute, value in panel.items()
                        if attribute.startswith(f"{component}.")
                    }
                    query = encoder.encode_with_noise(
                        [component_truth], noise_std=0.2, rng=rng
                    )
                    result = factorizer.factorize(query)
                    panel_correct &= result.matches(component_truth)
                correct += panel_correct
        rows.append({"constellation": name, "accuracy": correct / total})
    return rows


def factorization_accuracy_by_rule(
    tasks_per_rule: int = 4, vector_dim: int = 1024
) -> list[dict]:
    """Tab. VII (bottom): attribute-recovery accuracy grouped by governing rule."""
    from repro.core import ConstantGaussianNoise, Factorizer, FactorizerConfig
    from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder

    generator = PGMGenerator(seed=17)
    domains = generator.attribute_domains
    space = BipolarSpace(vector_dim, seed=1)
    codebooks = CodebookSet.from_factors(domains, space)
    encoder = SceneEncoder(codebooks)
    factorizer = Factorizer(
        codebooks,
        FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.05), seed=2),
    )
    rng = np.random.default_rng(5)
    per_rule: dict[str, list[bool]] = {}
    # Generate until every rule family has a reasonable sample.
    for task in generator.generate(tasks_per_rule * 12):
        for attribute, rule_name in task.rules.items():
            family = rule_name.split("_")[0] if rule_name.startswith("logical") else rule_name
            panel = dict(task.context[int(rng.integers(0, 8))])
            query = encoder.encode_with_noise([panel], noise_std=0.2, rng=rng)
            result = factorizer.factorize(query)
            per_rule.setdefault(family, []).append(
                result.labels[attribute] == panel[attribute]
            )
    return [
        {"rule": rule, "accuracy": float(np.mean(outcomes)), "samples": len(outcomes)}
        for rule, outcomes in sorted(per_rule.items())
    ]


def reasoning_accuracy(tasks_per_dataset: int = 12) -> list[dict]:
    """Tab. VIII: end-to-end reasoning accuracy on RAVEN, I-RAVEN and PGM."""
    datasets = {
        "raven": (RavenGenerator("center", seed=21), 0.03),
        "iraven": (IRavenGenerator("center", seed=22), 0.03),
        "pgm": (PGMGenerator(seed=23), 0.22),
    }
    nvsa_params_mb = 38.0
    factorized_params_mb = 32.0
    quantized_params_mb = 8.0
    rows = []
    for dataset, (generator, error) in datasets.items():
        batch = generator.generate(tasks_per_dataset)
        baseline = NeuroSymbolicSolver(
            SolverConfig(perception_error=error, use_vsa_factorization=False)
        )
        cogsys = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=error,
                use_vsa_factorization=True,
                stochasticity=0.05,
                vector_dim=512,
            )
        )
        quantized = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=error,
                use_vsa_factorization=True,
                stochasticity=0.05,
                quantization=Precision.INT8,
                vector_dim=512,
            )
        )
        rows.append(
            {
                "dataset": dataset,
                "nvsa_accuracy": baseline.accuracy(batch),
                "cogsys_factorization_accuracy": cogsys.accuracy(batch),
                "cogsys_quantized_accuracy": quantized.accuracy(batch),
                "nvsa_params_mb": nvsa_params_mb,
                "cogsys_params_mb": factorized_params_mb,
                "cogsys_quantized_params_mb": quantized_params_mb,
            }
        )
    return rows


def precision_impact(num_tasks: int = 10) -> list[dict]:
    """Tab. IX: area/power per precision plus reasoning accuracy impact."""
    generator = RavenGenerator("center", seed=5)
    batch = generator.generate(num_tasks)
    rows = []
    for precision in (Precision.FP32, Precision.FP8, Precision.INT8):
        silicon = PRECISION_SILICON[precision]
        solver = NeuroSymbolicSolver(
            SolverConfig(
                use_vsa_factorization=True,
                stochasticity=0.05,
                quantization=None if precision is Precision.FP32 else precision,
                vector_dim=512,
            )
        )
        rows.append(
            {
                "precision": precision.value,
                "array_area_mm2": silicon.array_area_mm2,
                "array_power_mw": silicon.array_power_mw,
                "simd_area_mm2": silicon.simd_area_mm2,
                "simd_power_mw": silicon.simd_power_mw,
                "area_overhead_vs_systolic": silicon.reconfigurability_overhead,
                "accuracy": solver.accuracy(batch),
            }
        )
    return rows


def task_accuracy_overview(tasks_per_dataset: int = 10) -> list[dict]:
    """Accuracy of the full pipeline on all five datasets (supports Fig. 15's
    claim that CogSys preserves reasoning capability while being faster)."""
    rows = []
    raven = NeuroSymbolicSolver(SolverConfig()).accuracy(
        RavenGenerator("center", seed=31).generate(tasks_per_dataset)
    )
    iraven = NeuroSymbolicSolver(SolverConfig()).accuracy(
        IRavenGenerator("center", seed=32).generate(tasks_per_dataset)
    )
    pgm = NeuroSymbolicSolver(SolverConfig(perception_error=0.22)).accuracy(
        PGMGenerator(seed=33).generate(tasks_per_dataset)
    )
    cvr = CVRSolver().accuracy(CVRGenerator(seed=34).generate(tasks_per_dataset))
    svrt = SVRTSolver().accuracy(SVRTGenerator(seed=35).generate(tasks_per_dataset))
    for dataset, accuracy in (
        ("raven", raven),
        ("iraven", iraven),
        ("pgm", pgm),
        ("cvr", cvr),
        ("svrt", svrt),
    ):
        rows.append({"dataset": dataset, "accuracy": accuracy})
    return rows
