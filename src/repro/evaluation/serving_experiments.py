"""Serving-scale experiment drivers: traffic, batching and fleet scale-out.

These drivers extend the paper's single-query evaluation to the request
level: every row comes from a deterministic discrete-event simulation
(:mod:`repro.serving`) whose per-batch service times are backend execution
reports, memoized per ``(workload, batch size)`` so full sweeps finish in
seconds.  Five experiment families are registered:

* ``serve_load`` — per-workload latency versus offered load,
* ``serve_batch`` — batching-policy comparison under heavy mixed traffic,
* ``serve_fleet`` — fleet scaling efficiency across routing policies,
* ``serve_scenarios`` — SLO matrix over the named scenario presets,
* ``serve_hetero`` — mixed CogSys + GPU/edge fleet with symbolic-affinity
  routing and per-backend utilization,
* ``serve_trace`` — record each scenario's traffic to a JSONL trace, then
  replay it through the streaming event core and prove the streamed
  metrics match the in-memory run,
* ``serve_chaos`` — resilience matrix over the chaos presets: incident
  counts, conservation (arrived == completed + lost + shed), tail
  inflation and recovery time per scenario,
* ``serve_control`` — SLO-attainment versus provisioned-capacity
  frontier: the cheapest static fleet meeting each scenario's p99 SLO
  against the closed-loop controller's peak provisioning under the same
  traffic, per autoscaler policy.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.backends import ExecutionCache
from repro.errors import ServingError
from repro.serving.batching import build_policy
from repro.serving.fleet import Fleet, FleetServiceModel
from repro.serving.metrics import (
    per_backend_summary,
    resilience_metrics,
    summarize_result,
)
from repro.serving.scenarios import get_scenario, run_scenario
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import RequestTrace, record_scenario, replay_trace
from repro.serving.traffic import PoissonArrivals, WorkloadMix
from repro.workloads.registry import WORKLOAD_BUILDERS

__all__ = [
    "latency_load_sweep",
    "batching_policy_comparison",
    "fleet_scaling",
    "scenario_slo_matrix",
    "heterogeneous_fleet",
    "trace_replay_matrix",
    "chaos_resilience_matrix",
    "control_frontier",
]

#: every registered workload, in stable (alphabetical) order
SERVING_WORKLOADS = tuple(sorted(WORKLOAD_BUILDERS))


def _poisson_requests(rate_rps: float, count: int, mix: WorkloadMix, seed: int):
    """~``count`` Poisson arrivals at ``rate_rps`` (duration = count / rate)."""
    if count < 1:
        raise ServingError(f"request count must be positive, got {count}")
    return PoissonArrivals(rate_rps, mix).generate(count / rate_rps, seed=seed)


def _mean_unbatched_service_s(model: ExecutionCache, mix: WorkloadMix):
    """Mix-weighted batch-1 service time — the load=1.0 calibration point."""
    return sum(
        probability * model.service_seconds(name, 1)
        for name, probability in zip(mix.names, mix.probabilities)
    )


def latency_load_sweep(
    workloads: tuple[str, ...] = SERVING_WORKLOADS,
    loads: tuple[float, ...] = (0.2, 0.5, 0.8, 1.1, 1.5),
    requests_per_point: int = 200,
    max_batch_size: int = 8,
    num_chips: int = 1,
    slo_ms: float = 5.0,
    seed: int = 0,
) -> list[dict]:
    """Latency versus offered load, per workload.

    ``load`` is offered traffic relative to the chip's *unbatched* capacity
    (``num_chips / batch-1 service time``), so loads above 1.0 are only
    sustainable through batching amortization — the sweep shows where each
    workload saturates and how hard the tail blows up past the knee.
    """
    model = ExecutionCache()
    rows = []
    for workload in workloads:
        service_1 = model.service_seconds(workload, 1)
        for load in loads:
            if load <= 0:
                raise ServingError(f"loads must be positive, got {load}")
            rate = load * num_chips / service_1
            requests = _poisson_requests(
                rate, requests_per_point, WorkloadMix({workload: 1.0}), seed
            )
            simulator = ServingSimulator(
                service_model=model,
                fleet=Fleet(num_chips=num_chips, router="jsq"),
                batching_policy=build_policy(
                    "continuous", max_batch_size=max_batch_size, slo_s=slo_ms * 1e-3
                ),
            )
            result = simulator.run(requests)
            rows.append(
                {
                    "workload": workload,
                    "load": load,
                    **summarize_result(result, slo_ms * 1e-3, offered_rps=rate),
                }
            )
    return rows


def batching_policy_comparison(
    policies: tuple[str, ...] = ("none", "fixed", "continuous"),
    load: float = 1.1,
    requests: int = 600,
    num_chips: int = 2,
    batch_size: int = 8,
    slo_ms: float = 5.0,
    seed: int = 0,
) -> list[dict]:
    """No-batch versus fixed-size versus continuous batching, same traffic.

    All policies face the identical (seeded) mixed request stream at a load
    past the unbatched capacity, so the no-batch baseline saturates while
    batched policies amortize kernel dispatch and survive — the serving
    analogue of the paper's kernel-launch-overhead observation.
    """
    model = ExecutionCache()
    mix = WorkloadMix.uniform(SERVING_WORKLOADS)
    slo_s = slo_ms * 1e-3
    rate = load * num_chips / _mean_unbatched_service_s(model, mix)
    stream = _poisson_requests(rate, requests, mix, seed)
    policy_kwargs = {
        "none": {},
        "fixed": {"batch_size": batch_size, "max_wait_s": slo_s / 4},
        "continuous": {"max_batch_size": batch_size, "slo_s": slo_s},
    }
    rows = []
    for name in policies:
        simulator = ServingSimulator(
            service_model=model,
            fleet=Fleet(num_chips=num_chips, router="jsq"),
            batching_policy=build_policy(name, **policy_kwargs.get(name, {})),
        )
        result = simulator.run(stream)
        rows.append(
            {
                "policy": name,
                **summarize_result(result, slo_s, offered_rps=rate),
            }
        )
    return rows


def fleet_scaling(
    chip_counts: tuple[int, ...] = (1, 2, 4, 8),
    routers: tuple[str, ...] = ("round_robin", "jsq", "affinity"),
    load_per_chip: float = 0.8,
    requests_per_chip: int = 250,
    max_batch_size: int = 8,
    slo_ms: float = 5.0,
    seed: int = 0,
) -> list[dict]:
    """Scale-out efficiency: offered load grows proportionally with chips.

    ``efficiency`` is goodput per chip normalized to the smallest fleet of
    the same router — 1.0 means perfect linear scaling.  Load-aware routing
    (JSQ) should hold efficiency near 1.0 while round-robin leaks tail
    latency to unlucky queues and affinity trades balance for homogeneous
    per-chip batches.
    """
    model = ExecutionCache()
    mix = WorkloadMix.uniform(SERVING_WORKLOADS)
    slo_s = slo_ms * 1e-3
    service = _mean_unbatched_service_s(model, mix)
    rows = []
    for router in routers:
        base_goodput_per_chip = None
        for num_chips in sorted(chip_counts):
            rate = load_per_chip * num_chips / service
            stream = _poisson_requests(
                rate, requests_per_chip * num_chips, mix, seed
            )
            simulator = ServingSimulator(
                service_model=model,
                fleet=Fleet(num_chips=num_chips, router=router),
                batching_policy=build_policy(
                    "continuous", max_batch_size=max_batch_size, slo_s=slo_s
                ),
            )
            result = simulator.run(stream)
            summary = summarize_result(result, slo_s, offered_rps=rate)
            goodput_per_chip = summary["goodput_rps"] / num_chips
            if base_goodput_per_chip is None:
                base_goodput_per_chip = goodput_per_chip
            efficiency = (
                round(goodput_per_chip / base_goodput_per_chip, 4)
                if base_goodput_per_chip
                else 0.0
            )
            rows.append({"router": router, "efficiency": efficiency, **summary})
    return rows


def scenario_slo_matrix(
    scenarios: tuple[str, ...] = (
        "steady",
        "diurnal",
        "flash_crowd",
        "mixed_workload",
    ),
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
) -> list[dict]:
    """Goodput/SLO matrix over the named scenario presets.

    One accelerator model is shared across scenarios, so the memoized
    reports make the whole matrix a single pass of cheap event loops.
    """
    model = ExecutionCache()
    rows = []
    for name in scenarios:
        scenario, result = run_scenario(
            name,
            seed=seed,
            load_scale=load_scale,
            duration_scale=duration_scale,
            service_model=model,
        )
        rows.append(
            {
                "scenario": scenario.name,
                "router": scenario.router,
                "policy": scenario.policy,
                **summarize_result(result, scenario.slo_s),
            }
        )
    return rows


def heterogeneous_fleet(
    backends: tuple[str, ...] = ("cogsys", "cogsys", "a100", "xavier_nx"),
    scenario: str = "mixed_workload",
    router: str = "symbolic_affinity",
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    slo_ms: float | None = None,
) -> list[dict]:
    """Mixed-backend fleet under a scenario preset, with per-backend rows.

    One chip per ``backends`` entry serves the scenario's traffic; the
    symbolic-affinity router sends symbolic-heavy workloads to the CogSys
    chips and neural-heavy ones to the GPU/edge chips.  The first row
    (``backend="(fleet)"``) aggregates the whole fleet, the rest break
    utilization, latency and goodput down per backend — idle pools show up
    as zero-utilization rows instead of disappearing.
    """
    if not backends:
        raise ServingError("heterogeneous_fleet needs at least one backend")
    preset, result = run_scenario(
        scenario,
        seed=seed,
        load_scale=load_scale,
        duration_scale=duration_scale,
        router=router,
        backends=tuple(backends),
    )
    slo_s = preset.slo_s if slo_ms is None else slo_ms * 1e-3
    overall = summarize_result(result, slo_s)
    by_backend = per_backend_summary(result, slo_s)
    # Derive the fleet row's metric columns from the per-backend schema so
    # the two row shapes cannot drift apart.
    metric_keys = [
        key
        for key in by_backend[0]
        if key not in ("backend", "chips", "requests", "request_share")
    ]
    fleet_row = {
        "backend": "(fleet)",
        "chips": result.num_chips,
        "requests": overall["requests"],
        "request_share": 1.0,
        **{key: overall[key] for key in metric_keys},
    }
    return [fleet_row, *by_backend]


def trace_replay_matrix(
    scenarios: tuple[str, ...] = (
        "steady",
        "diurnal",
        "flash_crowd",
        "mixed_workload",
    ),
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    chunk_size: int = 4096,
) -> list[dict]:
    """Record, replay and cross-check each scenario as a request trace.

    For every scenario the driver (1) records the preset's traffic to a
    JSONL trace, (2) replays it through the streaming event core
    (``run_stream`` over columnar chunks) on the scenario's own fleet, and
    (3) runs the identical requests through the full in-memory simulator.
    ``stream_matches_memory`` asserts the two paths agree on every summary
    metric — the differential guarantee that bounded-memory replay does
    not change semantics.  All columns are deterministic in ``seed``.
    """
    if chunk_size < 1:
        raise ServingError(f"chunk_size must be positive, got {chunk_size}")
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-trace-") as tmp:
        for name in scenarios:
            scenario = get_scenario(name)
            path = Path(tmp) / f"{name}.jsonl"
            info = record_scenario(
                path,
                name,
                seed=seed,
                load_scale=load_scale,
                duration_scale=duration_scale,
            )
            fleet = Fleet(num_chips=scenario.num_chips, router=scenario.router)
            model = FleetServiceModel(fleet=fleet)
            streamed = replay_trace(
                path,
                num_chips=scenario.num_chips,
                router=scenario.router,
                policy=scenario.policy,
                service_model=model,
                chunk_size=chunk_size,
            )
            simulator = ServingSimulator(
                service_model=model,
                fleet=fleet,
                batching_policy=build_policy(scenario.policy),
            )
            in_memory = simulator.run(RequestTrace(path).requests())
            streamed_summary = summarize_result(streamed, scenario.slo_s)
            memory_summary = summarize_result(in_memory, scenario.slo_s)
            rows.append(
                {
                    "scenario": name,
                    "trace_requests": info.num_requests,
                    "chunks": -(-info.num_requests // chunk_size),
                    "stream_matches_memory": streamed_summary == memory_summary,
                    **streamed_summary,
                }
            )
    return rows


def chaos_resilience_matrix(
    scenarios: tuple[str, ...] = (
        "chip_outage",
        "straggler_storm",
        "session_surge",
    ),
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    window_ms: float = 50.0,
    tolerance: float = 1.2,
) -> list[dict]:
    """Resilience accounting over the chaos and closed-loop presets.

    Each scenario runs with its own incident timeline (or closed-loop
    population) and reports the conservation counters — every arrived
    request is completed, lost (in-flight batch killed) or shed (queue
    dropped) — plus the tail-inflation ratio and the time for the p95
    tail to recover to within ``tolerance`` of its pre-incident baseline
    (measured in ``window_ms`` windows).  ``conserved`` certifies the
    accounting identity on every row; chaos-free closed-loop rows report
    zero losses and no recovery clock.
    """
    if window_ms <= 0:
        raise ServingError(f"window_ms must be positive, got {window_ms}")
    model = ExecutionCache()
    rows = []
    for name in scenarios:
        scenario, result = run_scenario(
            name,
            seed=seed,
            load_scale=load_scale,
            duration_scale=duration_scale,
            service_model=model,
        )
        resilience = resilience_metrics(
            result, window_s=window_ms * 1e-3, tolerance=tolerance
        )
        summary = summarize_result(result, scenario.slo_s)
        rows.append(
            {
                "scenario": scenario.name,
                "closed_loop": scenario.sessions is not None,
                "incidents": resilience["incidents"],
                "requests_arrived": resilience["requests_arrived"],
                "requests_completed": resilience["requests_completed"],
                "requests_lost": resilience["requests_lost"],
                "requests_shed": resilience["requests_shed"],
                "conserved": (
                    resilience["requests_completed"]
                    + resilience["requests_lost"]
                    + resilience["requests_shed"]
                    == resilience["requests_arrived"]
                ),
                "pre_incident_p95_ms": resilience["pre_incident_p95_ms"],
                "during_p95_ms": resilience["during_p95_ms"],
                "tail_inflation_x": resilience["tail_inflation_x"],
                "recovery_time_s": resilience["recovery_time_s"],
                "p95_ms": summary["p95_ms"],
                "slo_attainment": summary["slo_attainment"],
                "throughput_rps": summary["throughput_rps"],
            }
        )
    return rows


def _provisioned_mean(info: dict, horizon_s: float) -> float:
    """Time-weighted mean provisioned chip count from the action log."""
    level = info["initial_chips"]
    at = 0.0
    area = 0.0
    for action in info["actions"]:
        if action["action"] not in ("scale_up", "scale_down"):
            continue
        area += level * (action["at_s"] - at)
        at = action["at_s"]
        level = action["provisioned"]
    area += level * max(0.0, horizon_s - at)
    return area / horizon_s if horizon_s > 0 else float(level)


def control_frontier(
    scenarios: tuple[str, ...] = (
        "ramp_surge",
        "flash_crowd",
        "mix_shift",
        "chip_outage",
        "straggler_storm",
    ),
    policies: tuple[str, ...] = ("target_util", "queue_pid"),
    seed: int = 0,
    load_scale: float = 1.0,
    duration_scale: float = 1.0,
    max_chips: int = 8,
    min_served_frac: float = 0.9,
) -> list[dict]:
    """SLO-attainment versus provisioned-capacity frontier, per scenario.

    The dynamic version of the DSE capacity planner's question.  For every
    scenario the driver sweeps capacity upward from the preset's fleet
    until the p99 SLO is met, two ways:

    * ``static`` rows provision ``chips`` chips for the whole run (what
      ``repro dse plan`` recommends offline) — the frontier point is the
      cheapest static fleet whose p99 meets the scenario SLO while
      serving at least ``min_served_frac`` of arrivals;
    * controller rows run the closed-loop control plane with
      ``max_chips`` capped at ``chips`` — the frontier point is the
      smallest cap whose run meets the same bar.  ``peak_chips`` /
      ``mean_chips`` report what the autoscaler actually used, and
      ``shed``/``lost``/``scale_ups``/``scale_downs`` expose how it got
      there (admission shedding is visible, never hidden).

    A row with ``meets_slo=False`` is the best attempt at ``max_chips``
    — the scenario's SLO is not reachable inside the sweep's budget.
    On surge scenarios the controller's frontier sits strictly left of
    the static one: admission + autoscaling meet the p99 SLO with fewer
    peak-provisioned chips than any static fleet.
    """
    from repro.serving.control import CONTROLLER_POLICIES, ControllerConfig

    if max_chips < 1:
        raise ServingError(f"max_chips must be positive, got {max_chips}")
    if not 0 < min_served_frac <= 1:
        raise ServingError(
            f"min_served_frac must be in (0, 1], got {min_served_frac}"
        )
    for policy in policies:
        if policy not in CONTROLLER_POLICIES:
            raise ServingError(
                f"unknown controller policy '{policy}'; "
                f"known: {', '.join(CONTROLLER_POLICIES)}"
            )
    model = ExecutionCache()
    rows = []

    def run_point(name, *, num_chips=None, controller=None):
        scenario, result = run_scenario(
            name,
            seed=seed,
            load_scale=load_scale,
            duration_scale=duration_scale,
            num_chips=num_chips,
            controller=controller,
            service_model=model,
        )
        summary = summarize_result(result, scenario.slo_s)
        arrived = result.requests_arrived
        served_frac = len(result.records) / arrived if arrived else 0.0
        meets = (
            summary["p99_ms"] <= scenario.slo_s * 1e3
            and served_frac >= min_served_frac
        )
        return scenario, result, summary, served_frac, meets

    for name in scenarios:
        floor = get_scenario(name).num_chips
        candidates = list(range(floor, max(floor, max_chips) + 1))
        for policy in ("static", *policies):
            for chips in candidates:
                if policy == "static":
                    controller_info = None
                    scenario, result, summary, served_frac, meets = run_point(
                        name, num_chips=chips
                    )
                    peak = chips
                    mean_chips = float(chips)
                else:
                    config = ControllerConfig(policy=policy, max_chips=chips)
                    scenario, result, summary, served_frac, meets = run_point(
                        name, controller=config
                    )
                    controller_info = result.provenance["controller"]
                    peak = controller_info["peak_chips"]
                    mean_chips = _provisioned_mean(
                        controller_info, result.horizon_s
                    )
                if meets or chips == candidates[-1]:
                    break
            rows.append(
                {
                    "scenario": name,
                    "policy": policy,
                    "chips": chips,
                    "peak_chips": peak,
                    "mean_chips": round(mean_chips, 2),
                    "meets_slo": meets,
                    "p99_ms": summary["p99_ms"],
                    "slo_ms": round(scenario.slo_s * 1e3, 4),
                    "slo_attainment": summary["slo_attainment"],
                    "served_frac": round(served_frac, 4),
                    "shed": result.requests_shed,
                    "lost": result.requests_lost,
                    "scale_ups": (
                        controller_info["scale_ups"] if controller_info else 0
                    ),
                    "scale_downs": (
                        controller_info["scale_downs"] if controller_info else 0
                    ),
                    "goodput_rps": summary["goodput_rps"],
                }
            )
    return rows
