"""Small helpers to render experiment results as text tables."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

__all__ = ["format_markdown_table", "format_csv", "format_value"]


def format_value(value) -> str:
    """Render one cell: floats get 3 significant decimals, others use str()."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header_line = "| " + " | ".join(str(h) for h in headers) + " |"
    separator = "| " + " | ".join("---" for _ in headers) + " |"
    body = [
        "| " + " | ".join(format_value(cell) for cell in row) + " |" for row in rows
    ]
    return "\n".join([header_line, separator, *body])


def format_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV with a header line (raw, unrounded values)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
