"""Evaluation harness: solvers, experiment registry, engine and reporting.

The cognitive solvers live in :mod:`repro.evaluation.solver`; the per-figure
experiment drivers are spread over five focused modules (``characterization``,
``accuracy_experiments``, ``hardware_experiments``, ``end_to_end``,
``serving_experiments``) and bound together by the declarative
:mod:`repro.evaluation.registry`.  Use
:mod:`repro.evaluation.engine` (or the ``repro`` CLI) to execute registered
experiments with on-disk result caching and optional process-level
parallelism; :mod:`repro.evaluation.experiments` remains as a
backwards-compatible facade over the drivers.
"""

from repro.evaluation.solver import (
    CVRSolver,
    NeuroSymbolicSolver,
    SolverConfig,
    SVRTSolver,
)
from repro.evaluation.reporting import format_csv, format_markdown_table
from repro.evaluation import experiments
from repro.evaluation import registry
from repro.evaluation import engine
from repro.evaluation.registry import ExperimentSpec, all_specs, get_spec
from repro.evaluation.engine import ResultTable, run, run_many

__all__ = [
    "NeuroSymbolicSolver",
    "SolverConfig",
    "CVRSolver",
    "SVRTSolver",
    "format_markdown_table",
    "format_csv",
    "experiments",
    "registry",
    "engine",
    "ExperimentSpec",
    "all_specs",
    "get_spec",
    "ResultTable",
    "run",
    "run_many",
]
