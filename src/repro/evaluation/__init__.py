"""Evaluation harness: cognitive solvers and per-figure experiment drivers."""

from repro.evaluation.solver import (
    CVRSolver,
    NeuroSymbolicSolver,
    SolverConfig,
    SVRTSolver,
)
from repro.evaluation.reporting import format_markdown_table
from repro.evaluation import experiments

__all__ = [
    "NeuroSymbolicSolver",
    "SolverConfig",
    "CVRSolver",
    "SVRTSolver",
    "format_markdown_table",
    "experiments",
]
