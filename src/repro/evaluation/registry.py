"""Declarative registry of every experiment in the paper's evaluation.

Each table/figure of the CogSys evaluation is described by one frozen
:class:`ExperimentSpec`: a stable id (the paper anchor, e.g. ``fig15`` or
``tab09``), the driver callable, its parameter schema and three parameter
sets (defaults, smoke-scale for tests, report-scale for ``repro report``).
The registry is the single source of truth consumed by

* :mod:`repro.evaluation.engine` — cached/parallel execution,
* the ``repro`` CLI (``repro list`` / ``run`` / ``report``),
* the benchmark harnesses under ``benchmarks/`` (via ``run_spec``).

Adding an experiment means writing one driver function in a focused module
and registering one spec here — nothing else needs to change.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.evaluation import (
    accuracy_experiments,
    characterization,
    dse_experiments,
    end_to_end,
    hardware_experiments,
    serving_experiments,
)

__all__ = [
    "ExperimentSpec",
    "UnknownExperimentError",
    "EXPERIMENTS",
    "register",
    "get_spec",
    "all_specs",
    "specs_by_tag",
    "registered_drivers",
]

#: allowed values for :attr:`ExperimentSpec.tags`
KNOWN_TAGS = frozenset(
    {"characterization", "accuracy", "hardware", "e2e", "serving", "dse"}
)

#: allowed values in :attr:`ExperimentSpec.param_schema` — the labels the CLI
#: uses to coerce ``--param key=value`` strings (see ``repro.cli``).
PARAM_TYPES = frozenset(
    {"int", "float", "str", "ints", "floats", "strs", "int_pairs"}
)


class UnknownExperimentError(ReproError):
    """Raised when an experiment id is not present in the registry."""


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one table/figure experiment.

    ``driver`` must be a module-level callable returning plain Python data
    (list of row dicts, a single dict, or anything a ``row_builder`` can
    turn into rows) so that specs stay picklable for the process pool.
    """

    id: str
    title: str
    anchor: str
    driver: Callable[..., object]
    tags: tuple[str, ...]
    param_schema: Mapping[str, str] = field(default_factory=dict)
    default_params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Mapping[str, object] = field(default_factory=dict)
    report_params: Mapping[str, object] = field(default_factory=dict)
    paper_note: str = ""
    row_builder: Callable[[object], list[dict]] | None = None

    def __post_init__(self) -> None:
        unknown_tags = set(self.tags) - KNOWN_TAGS
        if unknown_tags:
            raise ValueError(f"spec '{self.id}' has unknown tags {sorted(unknown_tags)}")
        unknown_types = set(self.param_schema.values()) - PARAM_TYPES
        if unknown_types:
            raise ValueError(
                f"spec '{self.id}' has unknown param types {sorted(unknown_types)}"
            )
        for params in (self.default_params, self.smoke_params, self.report_params):
            stray = set(params) - set(self.param_schema)
            if stray:
                raise ValueError(
                    f"spec '{self.id}' binds params {sorted(stray)} missing from its schema"
                )


#: experiment id -> spec, in paper order (defines ``repro report`` layout)
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry, rejecting duplicate ids and drivers."""
    if spec.id in EXPERIMENTS:
        raise ValueError(f"duplicate experiment id '{spec.id}'")
    if any(existing.driver is spec.driver for existing in EXPERIMENTS.values()):
        raise ValueError(f"driver of '{spec.id}' is already registered")
    EXPERIMENTS[spec.id] = spec
    return spec


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Return the spec for ``experiment_id`` or raise :class:`UnknownExperimentError`."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment '{experiment_id}'; known ids: {', '.join(EXPERIMENTS)}"
        ) from None


def all_specs() -> tuple[ExperimentSpec, ...]:
    """Every registered spec in registration (paper) order."""
    return tuple(EXPERIMENTS.values())


def specs_by_tag(tag: str) -> tuple[ExperimentSpec, ...]:
    """Registered specs carrying ``tag``."""
    return tuple(spec for spec in EXPERIMENTS.values() if tag in spec.tags)


def registered_drivers() -> tuple[Callable[..., object], ...]:
    """The driver callables of every registered spec, in order."""
    return tuple(spec.driver for spec in EXPERIMENTS.values())


def _kernel_profile_rows(profile: object) -> list[dict]:
    """Tab. II returns ``{kernel: metrics}``; flatten to one row per kernel."""
    return [{"kernel": name, **metrics} for name, metrics in profile.items()]


# ---------------------------------------------------------------------------
# Section III characterization
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="fig04a",
        title="Fig. 4a/b — runtime breakdown across devices",
        anchor="fig04",
        driver=characterization.characterization_runtime,
        tags=("characterization",),
        param_schema={"devices": "strs"},
        smoke_params={"devices": ("rtx2080ti",)},
        paper_note=(
            "Paper: symbolic stage dominates runtime (up to ~87 % for NVSA on "
            "GPU); no device reaches real-time."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig04c",
        title="Fig. 4c — task-size scalability (NVSA)",
        anchor="fig04",
        driver=characterization.characterization_scaling,
        tags=("characterization",),
        param_schema={"device_name": "str"},
        paper_note=(
            "Paper: total runtime grows ~5x from 2x2 to 3x3 while the symbolic "
            "share stays stable (91.6 % -> 87.4 %). Measured growth is milder "
            "because the workload model scales with panel count only, but the "
            "share stays stable."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig04d",
        title="Fig. 4d — memory footprint",
        anchor="fig04",
        driver=characterization.characterization_memory,
        tags=("characterization",),
        paper_note=(
            "Paper: 10.8-48.2 MB per workload, dominated by weights plus "
            "symbolic codebooks."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig05",
        title="Fig. 5 — roofline placement (RTX 2080Ti)",
        anchor="fig05",
        driver=characterization.characterization_roofline,
        tags=("characterization",),
        param_schema={"device_name": "str"},
        paper_note=(
            "Paper: neural kernels are compute-bound, symbolic kernels "
            "memory-bound."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig06",
        title="Fig. 6 — symbolic operation breakdown (NVSA)",
        anchor="fig06",
        driver=characterization.symbolic_breakdown,
        tags=("characterization",),
        param_schema={"device_name": "str"},
        paper_note=(
            "Paper: circular convolution + vector-vector multiplication "
            "account for ~80 % of symbolic runtime."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab02",
        title="Tab. II — kernel-level inefficiency profile",
        anchor="tab02",
        driver=characterization.kernel_profile,
        tags=("characterization",),
        paper_note=(
            "Published measurements (reproduced as reference data and used to "
            "calibrate the device models)."
        ),
        row_builder=_kernel_profile_rows,
    )
)

# ---------------------------------------------------------------------------
# Algorithm optimizations and accuracy
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="fig08",
        title="Fig. 8 — factorization efficiency",
        anchor="fig08",
        driver=accuracy_experiments.factorization_efficiency,
        tags=("accuracy", "characterization"),
        param_schema={"device_name": "str"},
        paper_note=(
            "Paper: 13,560 KB -> 190 KB (71.4x) codebook memory, 11.7 s -> "
            "2.88 s (4.1x) runtime."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab03",
        title="Tab. III — algorithm optimization impact",
        anchor="tab03",
        driver=accuracy_experiments.optimization_impact,
        tags=("accuracy",),
        param_schema={"num_tasks": "int"},
        smoke_params={"num_tasks": 2},
        report_params={"num_tasks": 8},
        paper_note=(
            "Paper: factorization and stochasticity increase accuracy and "
            "reduce latency/memory; quantization trades a little accuracy for "
            "4x memory."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab04",
        title="Tab. IV — accelerator comparison (per circular convolution)",
        anchor="tab04",
        driver=hardware_experiments.accelerator_comparison,
        tags=("hardware",),
        param_schema={"vector_dim": "int"},
        smoke_params={"vector_dim": 128},
        paper_note=(
            "Paper: CogSys is the only design with O(d) footprint and "
            "column-wise parallelism."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab05",
        title="Tab. V — reconfigurable vs heterogeneous PEs",
        anchor="tab05",
        driver=hardware_experiments.pe_design_choice,
        tags=("hardware",),
        param_schema={"num_tasks": "int"},
        smoke_params={"num_tasks": 1},
        report_params={"num_tasks": 2},
        paper_note=(
            "Paper: heterogeneous PEs cost 1.96x area (same latency) or 2x "
            "latency (same area) and halve utilization."
        ),
    )
)

# ---------------------------------------------------------------------------
# Hardware micro-benchmarks
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="fig11a",
        title="Fig. 11 — bubble-streaming dataflow",
        anchor="fig11",
        driver=hardware_experiments.bs_dataflow_comparison,
        tags=("hardware",),
        param_schema={"vector_dim": "int", "num_convs": "int"},
        paper_note=(
            "Paper: 3 circular convolutions of d=3 finish in 8 cycles on "
            "CogSys vs 24 on a TPU-like cell."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig11c",
        title="Fig. 11c — circular-convolution roofline",
        anchor="fig11",
        driver=hardware_experiments.bs_roofline,
        tags=("hardware",),
        param_schema={"vector_dim": "int"},
        smoke_params={"vector_dim": 256},
        paper_note=(
            "Paper: BS dataflow is compute-bound, GEMV lowering memory-bound."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig12",
        title="Fig. 12 — spatial/temporal mapping",
        anchor="fig12",
        driver=hardware_experiments.st_mapping_tradeoff,
        tags=("hardware",),
        param_schema={
            "num_arrays": "int",
            "array_length": "int",
            "cases": "int_pairs",
        },
        smoke_params={"cases": ((210, 1024), (1, 2048))},
        paper_note=(
            "Paper: temporal mapping chosen for NVSA (k=210) and LVRF (k=2575) "
            "at d=1024; spatial mapping reduces bandwidth by N/2."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab07a",
        title="Tab. VII — factorization accuracy by constellation",
        anchor="tab07",
        driver=accuracy_experiments.factorization_accuracy_by_constellation,
        tags=("accuracy",),
        param_schema={"tasks_per_constellation": "int", "vector_dim": "int"},
        smoke_params={"tasks_per_constellation": 1, "vector_dim": 512},
        report_params={"tasks_per_constellation": 3},
        paper_note="Paper: ~95.4 % average accuracy across constellations.",
    )
)
register(
    ExperimentSpec(
        id="tab07b",
        title="Tab. VII — factorization accuracy by rule",
        anchor="tab07",
        driver=accuracy_experiments.factorization_accuracy_by_rule,
        tags=("accuracy",),
        param_schema={"tasks_per_rule": "int", "vector_dim": "int"},
        smoke_params={"tasks_per_rule": 1, "vector_dim": 512},
        report_params={"tasks_per_rule": 3},
        paper_note="Paper: ~93.5 % average accuracy across rule families.",
    )
)
register(
    ExperimentSpec(
        id="tab08",
        title="Tab. VIII — reasoning accuracy",
        anchor="tab08",
        driver=accuracy_experiments.reasoning_accuracy,
        tags=("accuracy",),
        param_schema={"tasks_per_dataset": "int"},
        smoke_params={"tasks_per_dataset": 2},
        report_params={"tasks_per_dataset": 10},
        paper_note=(
            "Paper: RAVEN 98.7 %, I-RAVEN 99.0 %, PGM 68.6 % with "
            "factorization+stochasticity; parameters 38 MB -> 32 MB -> 8 MB."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab09",
        title="Tab. IX / Fig. 14 — precision, area, power",
        anchor="tab09",
        driver=accuracy_experiments.precision_impact,
        tags=("accuracy", "hardware"),
        param_schema={"num_tasks": "int"},
        smoke_params={"num_tasks": 2},
        report_params={"num_tasks": 8},
        paper_note=(
            "Paper: FP8 array 9.9 mm^2 / 1.24 W, INT8 3.8 mm^2 / 1.10 W, "
            "4.8 % reconfigurability overhead at FP8; accelerator 4.0 mm^2, "
            "1.48 W."
        ),
    )
)

# ---------------------------------------------------------------------------
# Accelerator-level end-to-end evaluation
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="fig15",
        title="Fig. 15 — end-to-end runtime vs CPU/GPU/edge SoCs",
        anchor="fig15",
        driver=end_to_end.end_to_end_speedups,
        tags=("e2e",),
        param_schema={"datasets": "strs"},
        smoke_params={"datasets": ("raven",)},
        paper_note=(
            "Paper: ~90.8x / 56.8x / 15.9x / 4.6x over TX2 / NX / Xeon / RTX; "
            "CogSys <0.3 s per task."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig16",
        title="Fig. 16 — energy efficiency",
        anchor="fig16",
        driver=end_to_end.energy_efficiency,
        tags=("e2e",),
        param_schema={"datasets": "strs"},
        smoke_params={"datasets": ("raven",)},
        paper_note=(
            "Paper: ~0.44 J per task on CogSys; two to three orders of "
            "magnitude better performance per watt than CPU/GPU."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig17",
        title="Fig. 17 — circular convolution speedup sweep",
        anchor="fig17",
        driver=hardware_experiments.circconv_speedup_sweep,
        tags=("hardware",),
        param_schema={"vector_dims": "ints", "conv_counts": "ints"},
        smoke_params={"vector_dims": (128, 256), "conv_counts": (1, 10)},
        paper_note=(
            "Paper: up to 75.96x over a TPU-like array and 18.9x over the GPU, "
            "growing with vector dimension and batch size."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig18",
        title="Fig. 18 — comparison with ML accelerators",
        anchor="fig18",
        driver=end_to_end.ml_accelerator_comparison,
        tags=("e2e", "hardware"),
        param_schema={"workloads": "strs"},
        smoke_params={"workloads": ("nvsa",)},
        paper_note=(
            "Paper: comparable neural performance, 13.6-127.5x faster symbolic "
            "execution, 1.7-3.7x end-to-end over TPU/MTIA/Gemmini-like designs "
            "(NVSA/LVRF/MIMONet)."
        ),
    )
)
register(
    ExperimentSpec(
        id="fig19",
        title="Fig. 19 — hardware technique ablation",
        anchor="fig19",
        driver=end_to_end.hardware_ablation,
        tags=("e2e", "hardware"),
        param_schema={"num_tasks": "int"},
        smoke_params={"num_tasks": 1},
        paper_note=(
            "Paper: adSCH trims runtime by 28 %; with the scalable array and "
            "nsPE the reduction reaches 61 % and 71 % (normalized runtime "
            "~0.29 for the full design)."
        ),
    )
)
register(
    ExperimentSpec(
        id="tab10",
        title="Tab. X — co-design ablation",
        anchor="tab10",
        driver=end_to_end.codesign_ablation,
        tags=("e2e",),
        param_schema={"datasets": "strs"},
        smoke_params={"datasets": ("raven",)},
        paper_note=(
            "Paper: CogSys algorithm on Xavier NX keeps ~89.5 % of the NVSA "
            "runtime; algorithm + accelerator reduces it to ~1.76 %."
        ),
    )
)
# ---------------------------------------------------------------------------
# Request-level serving (beyond the paper: traffic, batching, fleet scale-out)
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="serve_load",
        title="Serving — latency vs offered load (per workload)",
        anchor="serving",
        driver=serving_experiments.latency_load_sweep,
        tags=("serving",),
        param_schema={
            "workloads": "strs",
            "loads": "floats",
            "requests_per_point": "int",
            "max_batch_size": "int",
            "num_chips": "int",
            "slo_ms": "float",
            "seed": "int",
        },
        smoke_params={
            "workloads": ("nvsa", "mimonet"),
            "loads": (0.3, 0.9),
            "requests_per_point": 40,
        },
        report_params={"requests_per_point": 150},
        paper_note=(
            "Beyond the paper: open-loop Poisson traffic against one chip per "
            "workload.  Queueing delay (and the p99 tail) stays flat until the "
            "load knee, then blows up; loads > 1.0 of unbatched capacity are "
            "only sustainable through continuous-batching amortization."
        ),
    )
)
register(
    ExperimentSpec(
        id="serve_batch",
        title="Serving — batching policy comparison under heavy traffic",
        anchor="serving",
        driver=serving_experiments.batching_policy_comparison,
        tags=("serving",),
        param_schema={
            "policies": "strs",
            "load": "float",
            "requests": "int",
            "num_chips": "int",
            "batch_size": "int",
            "slo_ms": "float",
            "seed": "int",
        },
        smoke_params={"requests": 150, "num_chips": 1},
        report_params={"requests": 500},
        paper_note=(
            "Beyond the paper: the identical over-capacity request stream is "
            "served with no batching, fixed-size batching and deadline-aware "
            "continuous batching; batching policies amortize per-kernel "
            "dispatch and keep goodput/SLO attainment high where the "
            "no-batch baseline saturates."
        ),
    )
)
register(
    ExperimentSpec(
        id="serve_fleet",
        title="Serving — fleet scaling efficiency across routers",
        anchor="serving",
        driver=serving_experiments.fleet_scaling,
        tags=("serving",),
        param_schema={
            "chip_counts": "ints",
            "routers": "strs",
            "load_per_chip": "float",
            "requests_per_chip": "int",
            "max_batch_size": "int",
            "slo_ms": "float",
            "seed": "int",
        },
        smoke_params={
            "chip_counts": (1, 2),
            "routers": ("round_robin", "jsq"),
            "requests_per_chip": 60,
        },
        report_params={"requests_per_chip": 200},
        paper_note=(
            "Beyond the paper: offered load grows proportionally with fleet "
            "size; efficiency is goodput per chip normalized to the smallest "
            "fleet.  Join-shortest-queue routing holds near-linear scaling, "
            "round-robin leaks tail latency to unlucky queues, workload "
            "affinity trades balance for homogeneous per-chip batches."
        ),
    )
)
register(
    ExperimentSpec(
        id="serve_scenarios",
        title="Serving — scenario SLO matrix (steady/diurnal/flash/mixed)",
        anchor="serving",
        driver=serving_experiments.scenario_slo_matrix,
        tags=("serving",),
        param_schema={
            "scenarios": "strs",
            "seed": "int",
            "load_scale": "float",
            "duration_scale": "float",
        },
        smoke_params={"duration_scale": 0.2},
        paper_note=(
            "Beyond the paper: the named scenario presets (steady, diurnal, "
            "flash-crowd, mixed-workload) under their per-scenario SLOs; the "
            "flash crowd transiently exceeds fleet capacity, so its SLO "
            "attainment dips while steady traffic holds ~100 %."
        ),
    )
)

register(
    ExperimentSpec(
        id="serve_hetero",
        title="Serving — heterogeneous CogSys+GPU/edge fleet (mixed workload)",
        anchor="serving",
        driver=serving_experiments.heterogeneous_fleet,
        tags=("serving",),
        param_schema={
            "backends": "strs",
            "scenario": "str",
            "router": "str",
            "seed": "int",
            "load_scale": "float",
            "duration_scale": "float",
            "slo_ms": "float",
        },
        smoke_params={"duration_scale": 0.2},
        report_params={"duration_scale": 1.0},
        paper_note=(
            "Beyond the paper: one registry-resolved backend per chip "
            "(CogSys x2 + A100 + Xavier NX by default) serving the "
            "mixed-workload scenario.  Symbolic-affinity routing keeps "
            "symbolic-heavy workloads on the CogSys chips and sends the "
            "neural-heavy remainder to the GPU/edge pool; rows report "
            "per-backend utilization, latency and goodput."
        ),
    )
)

register(
    ExperimentSpec(
        id="serve_trace",
        title="Serving — trace record/replay differential (streamed vs in-memory)",
        anchor="serving",
        driver=serving_experiments.trace_replay_matrix,
        tags=("serving",),
        param_schema={
            "scenarios": "strs",
            "seed": "int",
            "load_scale": "float",
            "duration_scale": "float",
            "chunk_size": "int",
        },
        smoke_params={"duration_scale": 0.2, "chunk_size": 256},
        paper_note=(
            "Beyond the paper: every scenario preset is recorded to a JSONL "
            "request trace, streamed back through the bounded-memory event "
            "core in columnar chunks, and cross-checked against the full "
            "in-memory simulation of the same requests — "
            "`stream_matches_memory` certifies the two paths agree on every "
            "summary metric, which is what makes million-request trace "
            "replay (`repro serve --trace`) trustworthy."
        ),
    )
)

register(
    ExperimentSpec(
        id="serve_chaos",
        title="Serving — chaos resilience matrix (outage/straggler/sessions)",
        anchor="serving",
        driver=serving_experiments.chaos_resilience_matrix,
        tags=("serving",),
        param_schema={
            "scenarios": "strs",
            "seed": "int",
            "load_scale": "float",
            "duration_scale": "float",
            "window_ms": "float",
            "tolerance": "float",
        },
        smoke_params={"duration_scale": 0.2},
        paper_note=(
            "Beyond the paper: the chaos presets (mid-surge chip failure, "
            "seeded straggler storm with a fleet power cap) and the "
            "closed-loop session surge, with resilience accounting per "
            "scenario — `conserved` certifies arrived == completed + lost "
            "+ shed on every row, and `recovery_time_s` measures how long "
            "the p95 tail stays inflated after the last incident."
        ),
    )
)

register(
    ExperimentSpec(
        id="serve_control",
        title="Serving — SLO vs. provisioned-capacity frontier (closed-loop control)",
        anchor="serving",
        driver=serving_experiments.control_frontier,
        tags=("serving",),
        param_schema={
            "scenarios": "strs",
            "policies": "strs",
            "seed": "int",
            "load_scale": "float",
            "duration_scale": "float",
            "max_chips": "int",
            "min_served_frac": "float",
        },
        smoke_params={"duration_scale": 0.2},
        paper_note=(
            "Beyond the paper: the dynamic version of the capacity planner. "
            "Each scenario's cheapest static fleet meeting its p99 SLO is "
            "compared against the closed-loop controller (autoscaling with "
            "warm-up, SLO-aware admission, adaptive batching) under the "
            "same traffic — on the surge presets the controller meets the "
            "SLO with strictly fewer peak-provisioned chips, at the cost "
            "of an explicit, accounted shed fraction."
        ),
    )
)

# ---------------------------------------------------------------------------
# Design-space exploration (beyond the paper: grids + Pareto frontiers)
# ---------------------------------------------------------------------------
register(
    ExperimentSpec(
        id="dse_sweep",
        title="DSE — design-space sweep with Pareto annotation",
        anchor="dse",
        driver=dse_experiments.design_space_sweep,
        tags=("dse", "hardware"),
        param_schema={
            "space": "str",
            "workloads": "strs",
            "batch_sizes": "ints",
            "grid": "str",
            "objectives": "str",
        },
        smoke_params={"grid": "smoke", "batch_sizes": (1,)},
        paper_note=(
            "Beyond the paper: every point of a named CogSysConfig grid "
            "(see `repro dse list`) executed through the backend protocol; "
            "`pareto` marks designs non-dominated on latency/energy/area "
            "within their (workload, batch) group.  The taped-out 16-cell "
            "512-PE configuration sits on the frontier, supporting the "
            "paper's design choice."
        ),
    )
)
register(
    ExperimentSpec(
        id="dse_frontier",
        title="DSE — Pareto frontier of the combined CogSys grid",
        anchor="dse",
        driver=dse_experiments.design_frontier,
        tags=("dse", "hardware"),
        param_schema={
            "space": "str",
            "workloads": "strs",
            "batch_sizes": "ints",
            "grid": "str",
            "objectives": "str",
        },
        smoke_params={"grid": "smoke", "workloads": ("nvsa",)},
        paper_note=(
            "Beyond the paper: only the non-dominated designs of the "
            "combined cells x SIMD x bandwidth x scale-out grid survive — "
            "the menu a deployment picks from once dominated configurations "
            "are discarded."
        ),
    )
)
register(
    ExperimentSpec(
        id="dse_capacity",
        title="DSE — serving capacity plan (fleet size x router x batching)",
        anchor="dse",
        driver=dse_experiments.capacity_plan,
        tags=("dse", "serving"),
        param_schema={
            "offered_rps": "float",
            "target_p99_ms": "float",
            "target_attainment": "float",
            "chip_counts": "ints",
            "routers": "strs",
            "policies": "strs",
            "backend": "str",
            "requests": "int",
            "max_batch_size": "int",
            "seed": "int",
        },
        smoke_params={
            "chip_counts": (1, 2),
            "routers": ("jsq",),
            "policies": ("continuous",),
            "requests": 120,
        },
        report_params={"requests": 400},
        paper_note=(
            "Beyond the paper: one seeded request stream scored against "
            "every fleet configuration; `meets_target` gates on the p99 "
            "target and SLO attainment, `pareto` is computed over (fleet "
            "power: min, goodput: max), and `recommended` marks the "
            "cheapest passing plan."
        ),
    )
)

register(
    ExperimentSpec(
        id="accuracy_overview",
        title="Dataset accuracy overview (supports Fig. 15/16 claims)",
        anchor="fig15",
        driver=accuracy_experiments.task_accuracy_overview,
        tags=("accuracy",),
        param_schema={"tasks_per_dataset": "int"},
        smoke_params={"tasks_per_dataset": 2},
        report_params={"tasks_per_dataset": 10},
        paper_note=(
            "Sanity check that the full pipeline keeps solving all five "
            "datasets while the hardware experiments make it fast."
        ),
    )
)
