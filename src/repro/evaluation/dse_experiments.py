"""Design-space exploration drivers: sweeps, frontiers, capacity plans.

Three experiment families expose :mod:`repro.dse` through the registry and
engine (so results are disk-cached, parallelizable and land in
``EXPERIMENTS.md`` like every other experiment):

* ``dse_sweep`` — one named design space, every grid point executed on the
  requested workloads/batch sizes, rows pareto-annotated,
* ``dse_frontier`` — the non-dominated subset only (the capacity argument
  the paper makes with Fig. 19, generalized to a grid),
* ``dse_capacity`` — the serving capacity planner: fleet size x router x
  batching policy against a tail-latency target, with the recommended
  (cheapest passing) configuration marked.

Objectives are passed in the CLI string form (``"latency_ms:min,..."``) so
the specs stay declaratively parameterized.
"""

from __future__ import annotations

from repro.dse.frontier import format_objectives, parse_objectives
from repro.dse.planner import plan_capacity, recommend
from repro.dse.sweep import DEFAULT_OBJECTIVES, sweep
from repro.errors import DesignSpaceError

__all__ = [
    "SWEEP_OBJECTIVES",
    "design_space_sweep",
    "design_frontier",
    "capacity_plan",
]

#: default sweep objectives in their declarative (string) form
SWEEP_OBJECTIVES = format_objectives(DEFAULT_OBJECTIVES)


def _resolve_grid(grid: str) -> bool:
    """Map the ``grid`` parameter (``full``/``smoke``) to the smoke flag."""
    if grid not in ("full", "smoke"):
        raise DesignSpaceError(f"grid must be 'full' or 'smoke', got '{grid}'")
    return grid == "smoke"


def design_space_sweep(
    space: str = "pe_array",
    workloads: tuple[str, ...] = ("nvsa",),
    batch_sizes: tuple[int, ...] = (1, 8),
    grid: str = "full",
    objectives: str = SWEEP_OBJECTIVES,
) -> list[dict]:
    """Every grid point of ``space``, pareto-annotated per (workload, batch)."""
    return sweep(
        space,
        workloads=workloads,
        batch_sizes=batch_sizes,
        smoke=_resolve_grid(grid),
        objectives=objectives,
    )


def design_frontier(
    space: str = "cogsys",
    workloads: tuple[str, ...] = ("nvsa", "lvrf"),
    batch_sizes: tuple[int, ...] = (1,),
    grid: str = "full",
    objectives: str = SWEEP_OBJECTIVES,
) -> list[dict]:
    """Only the non-dominated designs of ``space``, per (workload, batch).

    The ``pareto`` column (always ``True`` here) is dropped in favour of an
    ``objectives`` provenance column so the table records what the frontier
    was computed over.
    """
    rows = sweep(
        space,
        workloads=workloads,
        batch_sizes=batch_sizes,
        smoke=_resolve_grid(grid),
        objectives=objectives,
    )
    label = format_objectives(parse_objectives(objectives))
    frontier = [
        {**row, "objectives": label} for row in rows if row.pop("pareto")
    ]
    return frontier


def capacity_plan(
    offered_rps: float = 2000.0,
    target_p99_ms: float = 5.0,
    target_attainment: float = 0.99,
    chip_counts: tuple[int, ...] = (1, 2, 4, 8),
    routers: tuple[str, ...] = ("round_robin", "jsq"),
    policies: tuple[str, ...] = ("none", "continuous"),
    backend: str = "cogsys",
    requests: int = 400,
    max_batch_size: int = 8,
    seed: int = 0,
) -> list[dict]:
    """Fleet capacity plan with the recommended configuration marked.

    Rows come pareto-annotated over ``(fleet_power_w: min, goodput_rps:
    max)`` — see :data:`repro.dse.planner.PLANNER_OBJECTIVES` — and carry a
    ``recommended`` column marking the cheapest target-meeting row.
    """
    rows = plan_capacity(
        offered_rps=offered_rps,
        target_p99_ms=target_p99_ms,
        target_attainment=target_attainment,
        chip_counts=chip_counts,
        routers=routers,
        policies=policies,
        backend=backend,
        requests=requests,
        max_batch_size=max_batch_size,
        seed=seed,
    )
    best = recommend(rows)
    chosen = (
        (best["chips"], best["router"], best["policy"]) if best is not None else None
    )
    return [
        {
            **row,
            "recommended": (row["chips"], row["router"], row["policy"]) == chosen,
        }
        for row in rows
    ]
