"""Experiment drivers, one per table/figure of the paper's evaluation.

Every function returns plain Python data (lists of dicts) so the benchmark
harnesses under ``benchmarks/`` and the documentation generator can print
the same rows the paper reports.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core import Precision
from repro.core.footprint import compare_footprints
from repro.hardware import CogSysAccelerator, CogSysConfig, make_device
from repro.hardware.baselines import GenericDevice, DEVICE_SPECS
from repro.hardware.bubble_stream import BubbleStreamSimulator, bs_latency_cycles
from repro.hardware.energy import PE_DESIGN_CHOICES, PRECISION_SILICON
from repro.hardware.mapping import spatial_mapping, temporal_mapping
from repro.hardware.roofline import Roofline
from repro.hardware.systolic import SystolicArrayModel
from repro.profiling import (
    KERNEL_PROFILE,
    memory_footprint,
    roofline_points,
    runtime_breakdown,
    symbolic_operation_breakdown,
    task_size_scaling,
)
from repro.evaluation.solver import CVRSolver, NeuroSymbolicSolver, SolverConfig, SVRTSolver
from repro.tasks import CVRGenerator, IRavenGenerator, PGMGenerator, RavenGenerator, SVRTGenerator
from repro.tasks.raven import RAVEN_CONFIGURATIONS
from repro.workloads import build_workload
from repro.workloads.nvsa import NVSA_FACTOR_SIZES, build_nvsa_workload

__all__ = [
    "characterization_runtime",
    "characterization_scaling",
    "characterization_memory",
    "characterization_roofline",
    "symbolic_breakdown",
    "kernel_profile",
    "factorization_efficiency",
    "optimization_impact",
    "accelerator_comparison",
    "pe_design_choice",
    "bs_dataflow_comparison",
    "st_mapping_tradeoff",
    "factorization_accuracy_by_constellation",
    "factorization_accuracy_by_rule",
    "reasoning_accuracy",
    "precision_impact",
    "end_to_end_speedups",
    "energy_efficiency",
    "circconv_speedup_sweep",
    "ml_accelerator_comparison",
    "hardware_ablation",
    "codesign_ablation",
]

#: the four profiled workloads (Sec. III)
PROFILED_WORKLOADS = ("nvsa", "mimonet", "lvrf", "prae")
#: the five reasoning datasets of Fig. 15/16
EVALUATED_DATASETS = ("raven", "iraven", "pgm", "cvr", "svrt")
#: the CPU/GPU/edge devices of Fig. 15
EVALUATED_DEVICES = ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti")


# ---------------------------------------------------------------------------
# Section III characterization (Fig. 4, Fig. 5, Fig. 6, Tab. II)
# ---------------------------------------------------------------------------
def characterization_runtime(devices: Sequence[str] = ("rtx2080ti", "jetson_tx2", "xavier_nx", "coral_tpu")) -> list[dict]:
    """Fig. 4a/4b: runtime and neural/symbolic split per workload and device."""
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        for device_name in devices:
            breakdown = runtime_breakdown(workload, make_device(device_name))
            rows.append(
                {
                    "workload": workload_name,
                    "device": device_name,
                    "total_seconds": breakdown.total_seconds,
                    "neural_fraction": breakdown.neural_fraction,
                    "symbolic_fraction": breakdown.symbolic_fraction,
                }
            )
    return rows


def characterization_scaling(device_name: str = "rtx2080ti") -> list[dict]:
    """Fig. 4c: task-size scalability of the NVSA workload."""
    device = make_device(device_name)
    rows = []
    for breakdown, grid in zip(
        task_size_scaling(build_nvsa_workload, device, grid_sizes=(2, 3)), (2, 3)
    ):
        rows.append(
            {
                "grid_size": f"{grid}x{grid}",
                "total_seconds": breakdown.total_seconds,
                "symbolic_fraction": breakdown.symbolic_fraction,
            }
        )
    rows[-1]["slowdown_vs_smallest"] = rows[-1]["total_seconds"] / rows[0]["total_seconds"]
    return rows


def characterization_memory() -> list[dict]:
    """Fig. 4d: weight vs codebook memory footprint per workload."""
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        footprint = memory_footprint(workload)
        rows.append(
            {
                "workload": workload_name,
                "weights_mb": footprint.weight_bytes / 1e6,
                "codebook_mb": footprint.codebook_bytes / 1e6,
                "total_mb": footprint.total_megabytes,
            }
        )
    return rows


def characterization_roofline(device_name: str = "rtx2080ti") -> list[dict]:
    """Fig. 5: roofline placement of the neural and symbolic stages."""
    device = make_device(device_name)
    assert isinstance(device, GenericDevice)
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        for stage, point in roofline_points(workload, device).items():
            rows.append(
                {
                    "workload": workload_name,
                    "stage": stage,
                    "arithmetic_intensity": point.arithmetic_intensity,
                    "attainable_tflops": point.attainable_flops / 1e12,
                    "bound": point.bound,
                }
            )
    return rows


def symbolic_breakdown(device_name: str = "rtx2080ti") -> dict[str, float]:
    """Fig. 6: share of symbolic runtime per operation type (NVSA)."""
    workload = build_workload("nvsa")
    return symbolic_operation_breakdown(workload, make_device(device_name))


def kernel_profile() -> dict[str, dict[str, float]]:
    """Tab. II: measured kernel-level hardware inefficiency profile."""
    return dict(KERNEL_PROFILE)


# ---------------------------------------------------------------------------
# Algorithm optimizations (Fig. 8, Tab. III, Tab. VII, Tab. VIII, Tab. IX)
# ---------------------------------------------------------------------------
def factorization_efficiency(device_name: str = "xavier_nx") -> dict:
    """Fig. 8: codebook memory and runtime with and without factorization."""
    report = compare_footprints(NVSA_FACTOR_SIZES, dim=1024)
    device = make_device(device_name)
    with_fact = device.workload_time(build_workload("nvsa", use_factorization=True))
    without_fact = device.workload_time(build_workload("nvsa", use_factorization=False))
    return {
        "codebook_kib": report.product_codebook_kib,
        "factorized_kib": report.factorized_kib,
        "memory_reduction": report.reduction_factor,
        "runtime_with_factorization_s": with_fact.total_seconds,
        "runtime_without_factorization_s": without_fact.total_seconds,
        "runtime_speedup": without_fact.total_seconds / with_fact.total_seconds,
    }


def optimization_impact(num_tasks: int = 12) -> list[dict]:
    """Tab. III: directional impact of factorization, stochasticity, quantization."""
    generator = RavenGenerator("center", seed=11)
    batch = generator.generate(num_tasks)
    baseline = NeuroSymbolicSolver(
        SolverConfig(use_vsa_factorization=True, stochasticity=0.0, vector_dim=512)
    )
    stochastic = NeuroSymbolicSolver(
        SolverConfig(use_vsa_factorization=True, stochasticity=0.05, vector_dim=512)
    )
    quantized = NeuroSymbolicSolver(
        SolverConfig(
            use_vsa_factorization=True,
            stochasticity=0.05,
            quantization=Precision.INT8,
            vector_dim=512,
        )
    )
    footprint = compare_footprints(NVSA_FACTOR_SIZES, dim=1024)
    footprint_int8 = compare_footprints(NVSA_FACTOR_SIZES, dim=1024, precision=Precision.INT8)
    return [
        {
            "optimization": "factorization",
            "accuracy": baseline.accuracy(batch),
            "memory_kib": footprint.factorized_kib,
            "memory_direction": "reduce",
            "latency_direction": "reduce",
        },
        {
            "optimization": "factorization+stochasticity",
            "accuracy": stochastic.accuracy(batch),
            "memory_kib": footprint.factorized_kib,
            "memory_direction": "no impact",
            "latency_direction": "reduce",
        },
        {
            "optimization": "factorization+stochasticity+int8",
            "accuracy": quantized.accuracy(batch),
            "memory_kib": footprint_int8.factorized_kib,
            "memory_direction": "reduce",
            "latency_direction": "reduce",
        },
    ]


def accelerator_comparison(vector_dim: int = 1024) -> list[dict]:
    """Tab. IV: per-circular-convolution memory footprint and parallelism support."""
    gemv_bytes = (vector_dim * vector_dim + 2 * vector_dim) * 4
    bs_bytes = 3 * vector_dim * 4
    return [
        {
            "accelerator": "TPU/MTIA/Gemmini-like (GEMV)",
            "footprint_bytes": gemv_bytes,
            "footprint_order": "O(d^2)",
            "column_wise_parallelism": False,
            "cell_wise_parallelism": True,
            "neurosymbolic_support": False,
        },
        {
            "accelerator": "CogSys (BS dataflow)",
            "footprint_bytes": bs_bytes,
            "footprint_order": "O(d)",
            "column_wise_parallelism": True,
            "cell_wise_parallelism": True,
            "neurosymbolic_support": True,
        },
    ]


def pe_design_choice(num_tasks: int = 2) -> list[dict]:
    """Tab. V: reconfigurable nsPEs versus dedicated heterogeneous PE pools."""
    workload = build_workload("nvsa", num_tasks=num_tasks)
    full = CogSysAccelerator(CogSysConfig(num_cells=16))
    half = CogSysAccelerator(CogSysConfig(num_cells=8))
    full_latency = full.simulate(workload, "adaptive").total_seconds
    # A same-area heterogeneous design dedicates half the cells to neural and
    # half to symbolic kernels; each kernel can only use its own pool, which
    # is approximated by running the whole workload on an 8-cell device.
    half_latency = half.simulate(workload, "adaptive").total_seconds
    rows = []
    for name, reference in PE_DESIGN_CHOICES.items():
        measured_latency = full_latency if "16+16" in name or name.startswith("reconfigurable") else half_latency
        rows.append(
            {
                "configuration": name,
                "area_factor": reference["area"],
                "reported_latency_factor": reference["latency"],
                "measured_latency_factor": measured_latency / full_latency,
                "energy_factor": reference["energy"],
                "utilization": reference["utilization"],
            }
        )
    return rows


def precision_impact(num_tasks: int = 10) -> list[dict]:
    """Tab. IX: area/power per precision plus reasoning accuracy impact."""
    generator = RavenGenerator("center", seed=5)
    batch = generator.generate(num_tasks)
    rows = []
    for precision in (Precision.FP32, Precision.FP8, Precision.INT8):
        silicon = PRECISION_SILICON[precision]
        solver = NeuroSymbolicSolver(
            SolverConfig(
                use_vsa_factorization=True,
                stochasticity=0.05,
                quantization=None if precision is Precision.FP32 else precision,
                vector_dim=512,
            )
        )
        rows.append(
            {
                "precision": precision.value,
                "array_area_mm2": silicon.array_area_mm2,
                "array_power_mw": silicon.array_power_mw,
                "simd_area_mm2": silicon.simd_area_mm2,
                "simd_power_mw": silicon.simd_power_mw,
                "area_overhead_vs_systolic": silicon.reconfigurability_overhead,
                "accuracy": solver.accuracy(batch),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Hardware micro-benchmarks (Fig. 11, Fig. 12, Fig. 17)
# ---------------------------------------------------------------------------
def bs_dataflow_comparison(vector_dim: int = 3, num_convs: int = 3) -> dict:
    """Fig. 11a/b: BS dataflow versus GEMV lowering on a tiny example."""
    simulator = BubbleStreamSimulator(vector_dim)
    rng = np.random.default_rng(0)
    run = simulator.run(rng.normal(size=vector_dim), rng.normal(size=vector_dim))
    # On CogSys the ``num_convs`` convolutions run on different columns in
    # parallel, so the batch finishes in one BS pass.
    cogsys_cycles = run.cycles
    cell = SystolicArrayModel(vector_dim, vector_dim)
    tpu_cycles = cell.circconv_cycles_gemv(vector_dim, num_convs).cycles
    return {
        "vector_dim": vector_dim,
        "num_convs": num_convs,
        "cogsys_cycles": cogsys_cycles,
        "tpu_like_cycles": tpu_cycles,
        "speedup": tpu_cycles / cogsys_cycles,
        "functional_check_cycles": run.cycles,
    }


def bs_roofline(vector_dim: int = 2048) -> list[dict]:
    """Fig. 11c: arithmetic intensity of BS dataflow vs GEMV vs GPU."""
    flops = 2 * vector_dim * vector_dim - vector_dim
    rows = []
    cogsys = Roofline("cogsys", peak_flops=2 * 16384 * 0.8e9, memory_bandwidth_bytes_per_s=15e12)
    gpu = Roofline("rtx2080ti", peak_flops=13.4e12, memory_bandwidth_bytes_per_s=616e9)
    rows.append(
        {
            "implementation": "CogSys BS dataflow",
            "arithmetic_intensity": flops / (3 * vector_dim * 4),
            "bound": cogsys.place("bs", flops, 3 * vector_dim * 4).bound,
        }
    )
    gemv_bytes = (vector_dim * vector_dim + 2 * vector_dim) * 4
    rows.append(
        {
            "implementation": "GPU/TPU GEMV lowering",
            "arithmetic_intensity": flops / gemv_bytes,
            "bound": gpu.place("gemv", flops, gemv_bytes).bound,
        }
    )
    return rows


def st_mapping_tradeoff(
    num_arrays: int = 32,
    array_length: int = 512,
    cases: Sequence[tuple[int, int]] = ((210, 1024), (2575, 1024), (1, 2048), (1000, 64)),
) -> list[dict]:
    """Fig. 12: spatial vs temporal mapping latency and bandwidth."""
    rows = []
    for num_convs, vector_dim in cases:
        spatial = spatial_mapping(num_arrays, array_length, num_convs, vector_dim)
        temporal = temporal_mapping(num_arrays, array_length, num_convs, vector_dim)
        chosen = "temporal" if temporal.cycles < spatial.cycles else "spatial"
        rows.append(
            {
                "num_convs": num_convs,
                "vector_dim": vector_dim,
                "spatial_cycles": spatial.cycles,
                "temporal_cycles": temporal.cycles,
                "spatial_reads_per_pass": spatial.memory_reads_per_pass,
                "temporal_reads_per_pass": temporal.memory_reads_per_pass,
                "chosen": chosen,
            }
        )
    return rows


def circconv_speedup_sweep(
    vector_dims: Sequence[int] = (128, 256, 512, 1024, 2048),
    conv_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
) -> list[dict]:
    """Fig. 17: circular-convolution speedup of CogSys over TPU-like and GPU."""
    cogsys = CogSysAccelerator()
    tpu = SystolicArrayModel(128, 128)
    gpu = DEVICE_SPECS["rtx2080ti"]
    rows = []
    for vector_dim in vector_dims:
        for count in conv_counts:
            # The paper's Fig. 17 sweep keeps the (N = 32, M = 512) scale-up
            # organisation fixed, so scale-out reconfiguration is disabled.
            cogsys_cycles = cogsys.circconv_mapping(
                vector_dim, count, allow_scale_out=False
            ).cycles
            cogsys_seconds = cogsys_cycles / cogsys.config.frequency_hz
            tpu_seconds = tpu.circconv_cycles_gemv(vector_dim, count).cycles / 0.8e9
            flops = count * (2 * vector_dim * vector_dim - vector_dim)
            gemv_bytes = count * (vector_dim * vector_dim + 2 * vector_dim) * 4
            gpu_seconds = max(
                flops / (gpu.peak_flops * 0.05),
                gemv_bytes / (gpu.memory_bandwidth_bytes_per_s * 0.85),
            )
            rows.append(
                {
                    "vector_dim": vector_dim,
                    "num_convs": count,
                    "speedup_vs_tpu": tpu_seconds / cogsys_seconds,
                    "speedup_vs_gpu": gpu_seconds / cogsys_seconds,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Accuracy experiments (Tab. VII, Tab. VIII)
# ---------------------------------------------------------------------------
def factorization_accuracy_by_constellation(
    tasks_per_constellation: int = 4, vector_dim: int = 1024
) -> list[dict]:
    """Tab. VII (top): attribute-recovery accuracy per RAVEN constellation.

    As in NVSA, each visual component (e.g. the "left" and "right" shapes of
    the left-right constellation) is described by its own product vector and
    factorized independently; a panel counts as correct only when every
    component's attributes are recovered.
    """
    from repro.core import ConstantGaussianNoise, Factorizer, FactorizerConfig
    from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder

    rows = []
    rng = np.random.default_rng(3)
    for name, configuration in RAVEN_CONFIGURATIONS.items():
        domains = configuration.attribute_domains()
        space = BipolarSpace(vector_dim, seed=1)
        per_component: dict[str, tuple[SceneEncoder, Factorizer]] = {}
        for component in configuration.components:
            component_domains = {
                attribute: values
                for attribute, values in domains.items()
                if attribute.startswith(f"{component}.")
            }
            codebooks = CodebookSet.from_factors(component_domains, space)
            per_component[component] = (
                SceneEncoder(codebooks),
                Factorizer(
                    codebooks,
                    FactorizerConfig(
                        similarity_noise=ConstantGaussianNoise(0.05), seed=2
                    ),
                ),
            )
        generator = RavenGenerator(name, seed=int(rng.integers(0, 1_000_000)))
        total = 0
        correct = 0
        for task in generator.generate(tasks_per_constellation):
            for panel in task.context:
                total += 1
                panel_correct = True
                for component, (encoder, factorizer) in per_component.items():
                    component_truth = {
                        attribute: value
                        for attribute, value in panel.items()
                        if attribute.startswith(f"{component}.")
                    }
                    query = encoder.encode_with_noise(
                        [component_truth], noise_std=0.2, rng=rng
                    )
                    result = factorizer.factorize(query)
                    panel_correct &= result.matches(component_truth)
                correct += panel_correct
        rows.append({"constellation": name, "accuracy": correct / total})
    return rows


def factorization_accuracy_by_rule(
    tasks_per_rule: int = 4, vector_dim: int = 1024
) -> list[dict]:
    """Tab. VII (bottom): attribute-recovery accuracy grouped by governing rule."""
    from repro.core import ConstantGaussianNoise, Factorizer, FactorizerConfig
    from repro.vsa import BipolarSpace, CodebookSet, SceneEncoder

    generator = PGMGenerator(seed=17)
    domains = generator.attribute_domains
    space = BipolarSpace(vector_dim, seed=1)
    codebooks = CodebookSet.from_factors(domains, space)
    encoder = SceneEncoder(codebooks)
    factorizer = Factorizer(
        codebooks,
        FactorizerConfig(similarity_noise=ConstantGaussianNoise(0.05), seed=2),
    )
    rng = np.random.default_rng(5)
    per_rule: dict[str, list[bool]] = {}
    # Generate until every rule family has a reasonable sample.
    for task in generator.generate(tasks_per_rule * 12):
        for attribute, rule_name in task.rules.items():
            family = rule_name.split("_")[0] if rule_name.startswith("logical") else rule_name
            panel = dict(task.context[int(rng.integers(0, 8))])
            query = encoder.encode_with_noise([panel], noise_std=0.2, rng=rng)
            result = factorizer.factorize(query)
            per_rule.setdefault(family, []).append(
                result.labels[attribute] == panel[attribute]
            )
    return [
        {"rule": rule, "accuracy": float(np.mean(outcomes)), "samples": len(outcomes)}
        for rule, outcomes in sorted(per_rule.items())
    ]


def reasoning_accuracy(tasks_per_dataset: int = 12) -> list[dict]:
    """Tab. VIII: end-to-end reasoning accuracy on RAVEN, I-RAVEN and PGM."""
    datasets = {
        "raven": (RavenGenerator("center", seed=21), 0.03),
        "iraven": (IRavenGenerator("center", seed=22), 0.03),
        "pgm": (PGMGenerator(seed=23), 0.22),
    }
    nvsa_params_mb = 38.0
    factorized_params_mb = 32.0
    quantized_params_mb = 8.0
    rows = []
    for dataset, (generator, error) in datasets.items():
        batch = generator.generate(tasks_per_dataset)
        baseline = NeuroSymbolicSolver(
            SolverConfig(perception_error=error, use_vsa_factorization=False)
        )
        cogsys = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=error,
                use_vsa_factorization=True,
                stochasticity=0.05,
                vector_dim=512,
            )
        )
        quantized = NeuroSymbolicSolver(
            SolverConfig(
                perception_error=error,
                use_vsa_factorization=True,
                stochasticity=0.05,
                quantization=Precision.INT8,
                vector_dim=512,
            )
        )
        rows.append(
            {
                "dataset": dataset,
                "nvsa_accuracy": baseline.accuracy(batch),
                "cogsys_factorization_accuracy": cogsys.accuracy(batch),
                "cogsys_quantized_accuracy": quantized.accuracy(batch),
                "nvsa_params_mb": nvsa_params_mb,
                "cogsys_params_mb": factorized_params_mb,
                "cogsys_quantized_params_mb": quantized_params_mb,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Accelerator-level evaluation (Fig. 15, 16, 18, 19, Tab. X)
# ---------------------------------------------------------------------------
def _dataset_workload(dataset: str, num_tasks: int = 1):
    """Workload variant used for each reasoning dataset in Fig. 15/16."""
    if dataset in ("raven", "iraven"):
        return build_workload("nvsa", grid_size=3, num_tasks=num_tasks)
    if dataset == "pgm":
        return build_workload("nvsa", grid_size=3, num_candidates=8, num_tasks=num_tasks,
                              factorization_iterations=7)
    if dataset == "cvr":
        return build_workload("nvsa", grid_size=2, num_candidates=4, num_tasks=num_tasks)
    if dataset == "svrt":
        return build_workload("nvsa", grid_size=2, num_candidates=2, num_tasks=num_tasks)
    raise ValueError(f"unknown dataset '{dataset}'")


def end_to_end_speedups(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Fig. 15: normalized runtime of CPU/GPU/edge devices versus CogSys."""
    cogsys = CogSysAccelerator()
    rows = []
    for dataset in datasets:
        workload = _dataset_workload(dataset)
        cogsys_seconds = cogsys.simulate(workload, "adaptive").total_seconds
        row = {"dataset": dataset, "cogsys_seconds": cogsys_seconds, "cogsys": 1.0}
        for device_name in EVALUATED_DEVICES:
            device_seconds = make_device(device_name).workload_time(workload).total_seconds
            row[device_name] = device_seconds / cogsys_seconds
        rows.append(row)
    return rows


def energy_efficiency(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Fig. 16: energy per task and performance-per-watt versus CogSys."""
    cogsys = CogSysAccelerator()
    rows = []
    for dataset in datasets:
        workload = _dataset_workload(dataset)
        report = cogsys.simulate(workload, "adaptive")
        row = {
            "dataset": dataset,
            "cogsys_energy_j": report.energy_joules,
            "cogsys_perf_per_watt": 1.0,
        }
        cogsys_perf_per_watt = 1.0 / report.energy_joules
        for device_name in EVALUATED_DEVICES:
            device_report = make_device(device_name).workload_time(workload)
            row[f"{device_name}_energy_j"] = device_report.energy_joules
            device_perf_per_watt = (
                1.0 / device_report.energy_joules if device_report.energy_joules else 0.0
            )
            row[f"{device_name}_perf_per_watt_vs_cogsys"] = (
                device_perf_per_watt / cogsys_perf_per_watt
            )
        rows.append(row)
    return rows


def ml_accelerator_comparison(
    workloads: Sequence[str] = ("nvsa", "lvrf", "mimonet")
) -> list[dict]:
    """Fig. 18: neural-only, symbolic-only and end-to-end runtime comparison."""
    from repro.workloads.base import Stage

    cogsys = CogSysAccelerator()
    rows = []
    for workload_name in workloads:
        workload = build_workload(workload_name)
        cogsys_report = cogsys.simulate(workload, "adaptive")
        for device_name in ("tpu_like", "mtia_like", "gemmini_like"):
            device_report = make_device(device_name).workload_time(workload)
            rows.append(
                {
                    "workload": workload_name,
                    "device": device_name,
                    "neural_vs_cogsys": device_report.neural_seconds
                    / max(cogsys_report.neural_seconds, 1e-12),
                    "symbolic_vs_cogsys": device_report.symbolic_seconds
                    / max(cogsys_report.symbolic_seconds, 1e-12),
                    "end_to_end_vs_cogsys": device_report.total_seconds
                    / max(cogsys_report.total_seconds, 1e-12),
                }
            )
    return rows


def hardware_ablation(num_tasks: int = 4) -> list[dict]:
    """Fig. 19: runtime without adSCH, scalable arrays and reconfigurable PEs."""
    datasets = ("raven", "iraven", "pgm")
    rows = []
    for dataset in datasets:
        workload = _dataset_workload(dataset, num_tasks=num_tasks)
        full = CogSysAccelerator().simulate(workload, "adaptive").total_seconds
        no_adsch = CogSysAccelerator().simulate(workload, "sequential").total_seconds
        no_scale = (
            CogSysAccelerator(scale_out=False).simulate(workload, "sequential").total_seconds
        )
        no_nspe = (
            CogSysAccelerator(scale_out=False, reconfigurable_symbolic=False)
            .simulate(workload, "sequential")
            .total_seconds
        )
        rows.append(
            {
                "dataset": dataset,
                "cogsys": full / no_nspe,
                "without_adsch": no_adsch / no_nspe,
                "without_adsch_so": no_scale / no_nspe,
                "without_adsch_so_nspe": 1.0,
            }
        )
    return rows


def codesign_ablation(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Tab. X: algorithm-only, hardware-only and full co-design runtimes."""
    edge = make_device("xavier_nx")
    cogsys = CogSysAccelerator()
    rows = []
    for dataset in datasets:
        nvsa_on_edge = edge.workload_time(
            build_workload("nvsa", use_factorization=False)
        ).total_seconds
        algo_on_edge = edge.workload_time(_dataset_workload(dataset)).total_seconds
        codesign = cogsys.simulate(_dataset_workload(dataset), "adaptive").total_seconds
        rows.append(
            {
                "dataset": dataset,
                "nvsa_on_xavier_nx": 1.0,
                "cogsys_algorithm_on_xavier_nx": algo_on_edge / nvsa_on_edge,
                "cogsys_algorithm_on_cogsys_accelerator": codesign / nvsa_on_edge,
            }
        )
    return rows


def task_accuracy_overview(tasks_per_dataset: int = 10) -> list[dict]:
    """Accuracy of the full pipeline on all five datasets (supports Fig. 15's
    claim that CogSys preserves reasoning capability while being faster)."""
    rows = []
    raven = NeuroSymbolicSolver(SolverConfig()).accuracy(
        RavenGenerator("center", seed=31).generate(tasks_per_dataset)
    )
    iraven = NeuroSymbolicSolver(SolverConfig()).accuracy(
        IRavenGenerator("center", seed=32).generate(tasks_per_dataset)
    )
    pgm = NeuroSymbolicSolver(SolverConfig(perception_error=0.22)).accuracy(
        PGMGenerator(seed=33).generate(tasks_per_dataset)
    )
    cvr = CVRSolver().accuracy(CVRGenerator(seed=34).generate(tasks_per_dataset))
    svrt = SVRTSolver().accuracy(SVRTGenerator(seed=35).generate(tasks_per_dataset))
    for dataset, accuracy in (
        ("raven", raven),
        ("iraven", iraven),
        ("pgm", pgm),
        ("cvr", cvr),
        ("svrt", svrt),
    ):
        rows.append({"dataset": dataset, "accuracy": accuracy})
    return rows
