"""Backwards-compatible facade over the experiment driver modules.

The drivers themselves now live in five focused modules —
:mod:`repro.evaluation.characterization` (Sec. III profiling),
:mod:`repro.evaluation.accuracy_experiments` (algorithm optimizations),
:mod:`repro.evaluation.hardware_experiments` (micro-benchmarks),
:mod:`repro.evaluation.end_to_end` (full-system evaluation),
:mod:`repro.evaluation.serving_experiments` (request-level serving) and
:mod:`repro.evaluation.dse_experiments` (design-space exploration) — and
are bound together by :mod:`repro.evaluation.registry`.  Prefer resolving drivers
through the registry (or the ``repro`` CLI / :mod:`repro.evaluation.engine`)
in new code; this module only re-exports every driver under its historical
name.  See the top-level ``README.md`` for the experiment index and
``EXPERIMENTS.md`` for the paper-vs-measured comparison.
"""

from __future__ import annotations

from repro.profiling import KERNEL_PROFILE
from repro.evaluation.characterization import (
    PROFILED_WORKLOADS,
    characterization_memory,
    characterization_roofline,
    characterization_runtime,
    characterization_scaling,
    kernel_profile,
    symbolic_breakdown,
)
from repro.evaluation.accuracy_experiments import (
    factorization_accuracy_by_constellation,
    factorization_accuracy_by_rule,
    factorization_efficiency,
    optimization_impact,
    precision_impact,
    reasoning_accuracy,
    task_accuracy_overview,
)
from repro.evaluation.hardware_experiments import (
    accelerator_comparison,
    bs_dataflow_comparison,
    bs_roofline,
    circconv_speedup_sweep,
    pe_design_choice,
    st_mapping_tradeoff,
)
from repro.evaluation.end_to_end import (
    EVALUATED_DATASETS,
    EVALUATED_DEVICES,
    codesign_ablation,
    dataset_workload as _dataset_workload,
    end_to_end_speedups,
    energy_efficiency,
    hardware_ablation,
    ml_accelerator_comparison,
)
from repro.evaluation.serving_experiments import (
    batching_policy_comparison,
    chaos_resilience_matrix,
    control_frontier,
    fleet_scaling,
    heterogeneous_fleet,
    latency_load_sweep,
    scenario_slo_matrix,
    trace_replay_matrix,
)
from repro.evaluation.dse_experiments import (
    capacity_plan,
    design_frontier,
    design_space_sweep,
)

__all__ = [
    "characterization_runtime",
    "characterization_scaling",
    "characterization_memory",
    "characterization_roofline",
    "symbolic_breakdown",
    "kernel_profile",
    "factorization_efficiency",
    "optimization_impact",
    "accelerator_comparison",
    "pe_design_choice",
    "bs_dataflow_comparison",
    "bs_roofline",
    "st_mapping_tradeoff",
    "factorization_accuracy_by_constellation",
    "factorization_accuracy_by_rule",
    "reasoning_accuracy",
    "precision_impact",
    "end_to_end_speedups",
    "energy_efficiency",
    "circconv_speedup_sweep",
    "ml_accelerator_comparison",
    "hardware_ablation",
    "codesign_ablation",
    "latency_load_sweep",
    "batching_policy_comparison",
    "fleet_scaling",
    "scenario_slo_matrix",
    "heterogeneous_fleet",
    "trace_replay_matrix",
    "chaos_resilience_matrix",
    "control_frontier",
    "design_space_sweep",
    "design_frontier",
    "capacity_plan",
    "task_accuracy_overview",
]
