"""Section III characterization drivers (Fig. 4, Fig. 5, Fig. 6, Tab. II).

These experiments profile the four neurosymbolic workloads on the baseline
CPU/GPU/edge devices: runtime split between the neural and symbolic stages,
task-size scalability, memory footprint, roofline placement and the
kernel-level inefficiency profile.  Every driver returns plain Python data
(lists of dicts) and is bound into :mod:`repro.evaluation.registry` so the
engine, the benchmark harnesses and the ``repro`` CLI can all run it.  See
the top-level ``README.md`` for the experiment index.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.backends import get_backend
from repro.profiling import (
    KERNEL_PROFILE,
    memory_footprint,
    roofline_points,
    runtime_breakdown,
    symbolic_operation_breakdown,
    task_size_scaling,
)
from repro.workloads import build_workload
from repro.workloads.nvsa import build_nvsa_workload

__all__ = [
    "PROFILED_WORKLOADS",
    "characterization_runtime",
    "characterization_scaling",
    "characterization_memory",
    "characterization_roofline",
    "symbolic_breakdown",
    "kernel_profile",
]

#: the four profiled workloads (Sec. III)
PROFILED_WORKLOADS = ("nvsa", "mimonet", "lvrf", "prae")


def characterization_runtime(devices: Sequence[str] = ("rtx2080ti", "jetson_tx2", "xavier_nx", "coral_tpu")) -> list[dict]:
    """Fig. 4a/4b: runtime and neural/symbolic split per workload and device."""
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        for device_name in devices:
            breakdown = runtime_breakdown(workload, get_backend(device_name))
            rows.append(
                {
                    "workload": workload_name,
                    "device": device_name,
                    "total_seconds": breakdown.total_seconds,
                    "neural_fraction": breakdown.neural_fraction,
                    "symbolic_fraction": breakdown.symbolic_fraction,
                }
            )
    return rows


def characterization_scaling(device_name: str = "rtx2080ti") -> list[dict]:
    """Fig. 4c: task-size scalability of the NVSA workload."""
    device = get_backend(device_name)
    rows = []
    for breakdown, grid in zip(
        task_size_scaling(build_nvsa_workload, device, grid_sizes=(2, 3)), (2, 3)
    ):
        rows.append(
            {
                "grid_size": f"{grid}x{grid}",
                "total_seconds": breakdown.total_seconds,
                "symbolic_fraction": breakdown.symbolic_fraction,
            }
        )
    rows[-1]["slowdown_vs_smallest"] = rows[-1]["total_seconds"] / rows[0]["total_seconds"]
    return rows


def characterization_memory() -> list[dict]:
    """Fig. 4d: weight vs codebook memory footprint per workload."""
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        footprint = memory_footprint(workload)
        rows.append(
            {
                "workload": workload_name,
                "weights_mb": footprint.weight_bytes / 1e6,
                "codebook_mb": footprint.codebook_bytes / 1e6,
                "total_mb": footprint.total_megabytes,
            }
        )
    return rows


def characterization_roofline(device_name: str = "rtx2080ti") -> list[dict]:
    """Fig. 5: roofline placement of the neural and symbolic stages."""
    device = get_backend(device_name)
    rows = []
    for workload_name in PROFILED_WORKLOADS:
        workload = build_workload(workload_name)
        for stage, point in roofline_points(workload, device).items():
            rows.append(
                {
                    "workload": workload_name,
                    "stage": stage,
                    "arithmetic_intensity": point.arithmetic_intensity,
                    "attainable_tflops": point.attainable_flops / 1e12,
                    "bound": point.bound,
                }
            )
    return rows


def symbolic_breakdown(device_name: str = "rtx2080ti") -> dict[str, float]:
    """Fig. 6: share of symbolic runtime per operation type (NVSA)."""
    workload = build_workload("nvsa")
    return symbolic_operation_breakdown(workload, get_backend(device_name))


def kernel_profile() -> dict[str, dict[str, float]]:
    """Tab. II: measured kernel-level hardware inefficiency profile."""
    return dict(KERNEL_PROFILE)
