"""Execution engine: cached, optionally parallel experiment runs.

:func:`run` executes one registered experiment and returns a structured
:class:`ResultTable` (rows + headers + provenance).  Results are memoized in
an on-disk cache keyed by ``(experiment id, parameter hash, code version)``
so repeated benchmark and documentation runs are near-instant; the code
version fingerprints the whole ``repro`` package source, so editing any
model code transparently invalidates stale cached results.  :func:`run_many` fans several
experiments out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Rows are normalised through a JSON round-trip before they are returned or
cached, so a cold run and a cache hit yield byte-identical tables.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro._version import __version__
from repro.errors import ReproError
from repro.evaluation.registry import ExperimentSpec, get_spec
from repro.evaluation.reporting import format_csv, format_markdown_table

__all__ = [
    "ResultTable",
    "UnknownParameterError",
    "run",
    "run_many",
    "default_cache_dir",
    "cache_info",
    "cache_stats",
    "clear_cache",
]

#: environment variable overriding the default on-disk cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class UnknownParameterError(ReproError):
    """Raised when an override is not part of the experiment's param schema."""


@dataclass
class ResultTable:
    """Structured result of one experiment run."""

    experiment_id: str
    title: str
    anchor: str
    headers: list[str]
    rows: list[dict]
    provenance: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def cells(self) -> list[list]:
        """Row-major cell matrix in header order (missing keys render empty)."""
        return [[row.get(header, "") for header in self.headers] for row in self.rows]

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        return format_markdown_table(self.headers, self.cells())

    def to_csv(self) -> str:
        """Render as CSV with a header line."""
        return format_csv(self.headers, self.cells())

    def to_json(self) -> str:
        """Render the full table (rows + provenance) as a JSON document."""
        return json.dumps(
            {
                "experiment": self.experiment_id,
                "title": self.title,
                "anchor": self.anchor,
                "headers": self.headers,
                "rows": self.rows,
                "provenance": self.provenance,
            },
            indent=2,
        )

    def render(self, fmt: str = "md") -> str:
        """Render in one of the CLI formats: ``md``, ``csv`` or ``json``."""
        if fmt == "md":
            return self.to_markdown()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "json":
            return self.to_json()
        raise ValueError(f"unknown format '{fmt}' (expected md, csv or json)")


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-experiments``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-experiments"


def _json_fallback(value):
    """Coerce numpy scalars (and other duck-typed numbers) for JSON."""
    if hasattr(value, "item"):  # numpy scalars and 0-d arrays
        return value.item()
    raise TypeError(f"cannot serialise {type(value).__name__} in experiment rows")


def _normalise_rows(raw: object, spec: ExperimentSpec) -> list[dict]:
    """Turn a driver's return value into JSON-clean row dicts."""
    if spec.row_builder is not None:
        rows = spec.row_builder(raw)
    elif isinstance(raw, dict):
        rows = [raw]
    else:
        rows = list(raw)
    return json.loads(json.dumps(rows, default=_json_fallback))


def _headers(rows: list[dict]) -> list[str]:
    """Ordered union of row keys (first-appearance order)."""
    headers: dict[str, None] = {}
    for row in rows:
        for key in row:
            headers.setdefault(key, None)
    return list(headers)


@functools.lru_cache(maxsize=1)
def _package_fingerprint() -> str:
    """Hash of every ``.py`` source file in the ``repro`` package."""
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def code_version(spec: ExperimentSpec) -> str:
    """Version fingerprint of the code behind ``spec``'s driver.

    Combines the package version with a hash of the whole ``repro`` source
    tree: drivers pull in workload, hardware and solver models from across
    the package, so an edit anywhere must invalidate cached results rather
    than silently serve stale numbers.
    """
    return f"{__version__}+{_package_fingerprint()}"


def resolve_params(spec: ExperimentSpec, overrides: dict) -> dict:
    """Merge ``overrides`` over the spec defaults, validating names."""
    unknown = set(overrides) - set(spec.param_schema)
    if unknown:
        raise UnknownParameterError(
            f"experiment '{spec.id}' has no parameter(s) {sorted(unknown)}; "
            f"schema: {dict(spec.param_schema)}"
        )
    return {**spec.default_params, **overrides}


def _cache_key(spec: ExperimentSpec, params: dict, version: str) -> str:
    payload = json.dumps(
        {"experiment": spec.id, "params": params, "code_version": version},
        sort_keys=True,
        default=_json_fallback,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _cache_path(cache_dir: Path, spec: ExperimentSpec, key: str) -> Path:
    return cache_dir / f"{spec.id}-{key}.json"


def _write_atomic(path: Path, content: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=path.parent, prefix=path.name, suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(content)
        os.replace(handle.name, path)
    except BaseException:
        os.unlink(handle.name)
        raise


def run(
    spec_or_id: ExperimentSpec | str,
    *,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
    **overrides,
) -> ResultTable:
    """Execute one experiment (through the cache) and return its table.

    ``spec_or_id`` is a registry id (``"tab09"``) or an
    :class:`ExperimentSpec`; keyword ``overrides`` are driver parameters
    validated against the spec's param schema.  With ``use_cache`` (the
    default) the result is read from / written to the on-disk cache.
    """
    spec = get_spec(spec_or_id) if isinstance(spec_or_id, str) else spec_or_id
    params = resolve_params(spec, overrides)
    version = code_version(spec)
    key = _cache_key(spec, params, version)
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    path = _cache_path(root, spec, key)

    if use_cache and path.is_file():
        payload = json.loads(path.read_text())
        provenance = dict(payload["provenance"])
        provenance["cache"] = "hit"
        return ResultTable(
            experiment_id=spec.id,
            title=spec.title,
            anchor=spec.anchor,
            headers=payload["headers"],
            rows=payload["rows"],
            provenance=provenance,
        )

    started = time.perf_counter()
    raw = spec.driver(**params)
    elapsed = time.perf_counter() - started
    rows = _normalise_rows(raw, spec)
    headers = _headers(rows)
    provenance = {
        "experiment": spec.id,
        "params": json.loads(json.dumps(params, default=_json_fallback)),
        "code_version": version,
        "cache_key": key,
        "runtime_seconds": round(elapsed, 6),
        "cache": "miss" if use_cache else "off",
    }
    if use_cache:
        stored = dict(provenance)
        stored["cache"] = "miss"
        _write_atomic(
            path,
            json.dumps({"headers": headers, "rows": rows, "provenance": stored}),
        )
    return ResultTable(
        experiment_id=spec.id,
        title=spec.title,
        anchor=spec.anchor,
        headers=headers,
        rows=rows,
        provenance=provenance,
    )


def _run_one(job: tuple) -> ResultTable:
    """Top-level pool worker (must stay picklable)."""
    experiment_id, overrides, use_cache, cache_dir = job
    return run(experiment_id, use_cache=use_cache, cache_dir=cache_dir, **overrides)


def run_many(
    ids,
    *,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
    overrides_by_id: dict[str, dict] | None = None,
) -> list[ResultTable]:
    """Execute several experiments, optionally across worker processes.

    ``workers=None`` (or ``<= 1``) runs serially in-process; ``workers=N``
    fans out over a :class:`ProcessPoolExecutor`.  Results come back in the
    order of ``ids`` regardless of completion order, and every worker shares
    the same on-disk cache.
    """
    overrides_by_id = overrides_by_id or {}
    ids = list(ids)
    stray = set(overrides_by_id) - set(ids)
    if stray:
        raise UnknownParameterError(
            f"overrides_by_id names experiment(s) not being run: {sorted(stray)}"
        )
    if not ids:
        # An empty request is a valid no-op; return early so it can never
        # reach ProcessPoolExecutor(max_workers=0), which raises ValueError.
        return []
    cache_dir = str(cache_dir) if cache_dir is not None else None
    jobs = [
        (experiment_id, overrides_by_id.get(experiment_id, {}), use_cache, cache_dir)
        for experiment_id in ids
    ]
    # Validate ids and overrides up front so a bad request fails fast instead
    # of surfacing as a pickled exception from a worker process.
    for experiment_id, overrides, _, _ in jobs:
        resolve_params(get_spec(experiment_id), overrides)
    if not workers or workers <= 1 or len(jobs) <= 1:
        return [_run_one(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(_run_one, jobs))


def cache_info(cache_dir: str | Path | None = None) -> dict:
    """Entry count and total size of the on-disk result cache."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    files = sorted(root.glob("*.json")) if root.is_dir() else []
    return {
        "path": str(root),
        "entries": len(files),
        "total_bytes": sum(f.stat().st_size for f in files),
    }


def cache_stats(cache_dir: str | Path | None = None) -> dict:
    """:func:`cache_info` plus a per-experiment entry/byte breakdown.

    Entry filenames are ``<experiment id>-<key>.json`` (see
    :func:`_cache_path`), so the experiment id is recovered by stripping the
    trailing cache-key component.  Use this to see what ``repro cache clear``
    would discard before pruning.
    """
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    files = sorted(root.glob("*.json")) if root.is_dir() else []
    experiments: dict[str, dict[str, int]] = {}
    for file in files:
        experiment_id = file.stem.rsplit("-", 1)[0]
        entry = experiments.setdefault(experiment_id, {"entries": 0, "bytes": 0})
        entry["entries"] += 1
        entry["bytes"] += file.stat().st_size
    return {
        "path": str(root),
        "entries": len(files),
        "total_bytes": sum(f.stat().st_size for f in files),
        "experiments": dict(sorted(experiments.items())),
    }


def clear_cache(cache_dir: str | Path | None = None) -> int:
    """Delete every cached result; returns the number of entries removed."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    removed = 0
    if root.is_dir():
        for file in root.glob("*.json"):
            file.unlink()
            removed += 1
    return removed
