"""Builder for ``EXPERIMENTS.md`` — paper-reported versus measured results.

The document is assembled straight from the experiment registry: one section
per :class:`~repro.evaluation.registry.ExperimentSpec`, in registration
(paper) order, each carrying the spec's paper note and the measured table
rendered by :class:`~repro.evaluation.engine.ResultTable`.  ``repro report``
calls :func:`write_report`; CI regenerates the document and fails if it is
not byte-identical to the checked-in copy.
"""

from __future__ import annotations

from pathlib import Path

from repro.evaluation import engine
from repro.evaluation.registry import all_specs

__all__ = ["build_report", "write_report"]

_HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the CogSys evaluation, regenerated from the
experiment registry (`repro report`, or `python -m repro report`).  Absolute
numbers are not expected to match silicon/GPU measurements — the hardware
side is an analytical/cycle-level model and the workloads are synthetic (see
the design notes in `README.md`) — but the *shape* (who wins, by roughly
what factor, where crossovers fall) is the reproduction target and is
asserted by the harnesses under `benchmarks/`.
"""


def build_report(
    *,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
    workers: int | None = None,
    smoke: bool = False,
) -> str:
    """Render the full experiments document as a markdown string.

    ``smoke=True`` substitutes each spec's smoke-scale parameters for its
    report-scale ones — used by CI and tests to exercise the full pipeline
    in seconds instead of minutes.
    """
    specs = all_specs()
    overrides = {
        spec.id: dict(spec.smoke_params if smoke else spec.report_params)
        for spec in specs
    }
    tables = engine.run_many(
        [spec.id for spec in specs],
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        overrides_by_id=overrides,
    )
    sections = [_HEADER]
    for spec, table in zip(specs, tables):
        body = f"## {spec.title}\n"
        if spec.paper_note:
            body += f"{spec.paper_note}\n"
        body += f"\n{table.to_markdown()}"
        sections.append(body)
    return "\n\n".join(sections) + "\n"


def write_report(output: str | Path, **kwargs) -> Path:
    """Write :func:`build_report` output to ``output`` and return the path."""
    path = Path(output)
    path.write_text(build_report(**kwargs))
    return path
