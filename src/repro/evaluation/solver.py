"""End-to-end neurosymbolic solvers used for the accuracy experiments.

The :class:`NeuroSymbolicSolver` mirrors the NVSA/PrAE pipeline: the
perception simulator observes each panel, the observation is either kept as
attribute PMFs (PrAE/LVRF style) or routed through VSA encoding plus the
CogSys factorizer (NVSA style, optionally with quantized codebooks), and the
probabilistic abduction engine infers rules and selects the answer.  The
CVR/SVRT solvers handle the two non-RPM benchmark families with the same
perception front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    ConstantGaussianNoise,
    Factorizer,
    FactorizerConfig,
    NoNoise,
    Precision,
    dequantize,
    quantize,
)
from repro.errors import TaskGenerationError
from repro.neural.perception import PerceptionConfig, PerceptionSimulator
from repro.symbolic import AttributePMF, ProbabilisticAbductionEngine, logical_rule_library
from repro.tasks.base import RPMTask, TaskBatch
from repro.tasks.cvr import CVRTask
from repro.tasks.svrt import SVRTTask
from repro.vsa import BipolarSpace, Codebook, CodebookSet, SceneEncoder

__all__ = ["SolverConfig", "NeuroSymbolicSolver", "CVRSolver", "SVRTSolver"]


@dataclass(frozen=True)
class SolverConfig:
    """Configuration of the end-to-end RPM solver."""

    perception_error: float = 0.03
    use_vsa_factorization: bool = False
    vector_dim: int = 1024
    stochasticity: float = 0.0
    quantization: Precision | None = None
    query_noise: float = 0.1
    max_iterations: int = 40
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.vector_dim < 8:
            raise TaskGenerationError(f"vector_dim too small: {self.vector_dim}")
        if self.query_noise < 0 or self.stochasticity < 0:
            raise TaskGenerationError("noise parameters must be non-negative")


@dataclass
class SolveOutcome:
    """Result of solving one task."""

    correct: bool
    answer_index: int
    expected_index: int
    factorizer_iterations: int = 0


class NeuroSymbolicSolver:
    """Solve RPM tasks with simulated perception plus probabilistic abduction."""

    def __init__(self, config: SolverConfig | None = None) -> None:
        self.config = config or SolverConfig()
        self.engine = ProbabilisticAbductionEngine(logical_rule_library())
        self._rng = np.random.default_rng(self.config.seed)
        self._iterations = 0
        # Cached VSA machinery per attribute-domain signature.
        self._vsa_cache: dict[tuple, tuple[CodebookSet, SceneEncoder, Factorizer]] = {}

    # -- VSA machinery -----------------------------------------------------------
    def _vsa_for(self, task: RPMTask) -> tuple[CodebookSet, SceneEncoder, Factorizer]:
        signature = tuple((name, tuple(domain)) for name, domain in task.attribute_domains.items())
        if signature in self._vsa_cache:
            return self._vsa_cache[signature]
        space = BipolarSpace(self.config.vector_dim, seed=7)
        codebooks = []
        for name, domain in task.attribute_domains.items():
            codebook = Codebook(name, list(domain), space)
            if self.config.quantization is not None:
                restored = dequantize(quantize(codebook.vectors, self.config.quantization))
                codebook = Codebook(name, list(domain), space, vectors=restored)
            codebooks.append(codebook)
        codebook_set = CodebookSet(codebooks)
        encoder = SceneEncoder(codebook_set)
        noise = (
            ConstantGaussianNoise(self.config.stochasticity)
            if self.config.stochasticity > 0
            else NoNoise()
        )
        factorizer = Factorizer(
            codebook_set,
            FactorizerConfig(
                max_iterations=self.config.max_iterations,
                similarity_noise=noise,
                seed=self.config.seed,
            ),
        )
        self._vsa_cache[signature] = (codebook_set, encoder, factorizer)
        return self._vsa_cache[signature]

    # -- panel perception -----------------------------------------------------------
    def _perceive_panel_pmfs(
        self, simulator: PerceptionSimulator, task: RPMTask, panel
    ) -> dict[str, AttributePMF]:
        if not self.config.use_vsa_factorization:
            return simulator.perceive_panel(panel)
        # NVSA-style route: sample a concrete detection, encode it as an
        # entangled query hypervector, then recover the attributes with the
        # CogSys factorizer.  The decoded labels become near-delta PMFs whose
        # residual mass reflects the factorizer's confidence.
        _, encoder, factorizer = self._vsa_for(task)
        detected = simulator.sample_misperceived_panel(panel)
        query = encoder.encode_with_noise(
            [detected], noise_std=self.config.query_noise, rng=self._rng
        )
        result = factorizer.factorize(query)
        self._iterations += result.iterations
        pmfs: dict[str, AttributePMF] = {}
        for name, domain in task.attribute_domains.items():
            label = result.labels[name]
            confidence = min(1.0, max(0.0, result.confidence))
            leak = (1.0 - confidence) * 0.5
            probabilities = np.full(len(domain), leak / max(1, len(domain) - 1))
            probabilities[list(domain).index(label)] = 1.0 - leak
            pmfs[name] = AttributePMF.from_index_distribution(name, domain, probabilities)
        return pmfs

    # -- public API -----------------------------------------------------------------
    def solve_task(self, task: RPMTask) -> SolveOutcome:
        """Solve one task and report correctness."""
        simulator = PerceptionSimulator(
            task.attribute_domains,
            PerceptionConfig(error_rate=self.config.perception_error, seed=self.config.seed),
        )
        self._iterations = 0
        context = [self._perceive_panel_pmfs(simulator, task, panel) for panel in task.context]
        candidates = [
            self._perceive_panel_pmfs(simulator, task, panel) for panel in task.candidates
        ]
        result = self.engine.solve(context, candidates)
        return SolveOutcome(
            correct=result.answer_index == task.answer_index,
            answer_index=result.answer_index,
            expected_index=task.answer_index,
            factorizer_iterations=self._iterations,
        )

    def accuracy(self, batch: TaskBatch | list[RPMTask]) -> float:
        """Fraction of tasks in ``batch`` solved correctly."""
        tasks = list(batch)
        if not tasks:
            raise TaskGenerationError("cannot compute accuracy over an empty batch")
        correct = sum(self.solve_task(task).correct for task in tasks)
        return correct / len(tasks)


class CVRSolver:
    """Odd-one-out solver for CVR-style tasks.

    Each panel is compared against the others attribute by attribute; the
    panel with the lowest total agreement is declared the outlier.
    """

    def __init__(self, perception_error: float = 0.03, seed: int | None = 0) -> None:
        self.perception_error = perception_error
        self.seed = seed

    def solve_task(self, task: CVRTask) -> bool:
        simulator = PerceptionSimulator(
            {name: domain for name, domain in _cvr_domains(task).items()},
            PerceptionConfig(error_rate=self.perception_error, seed=self.seed),
        )
        observed = [simulator.sample_misperceived_panel(panel) for panel in task.panels]
        num_panels = len(observed)
        # An attribute "accuses" a panel when that panel is the unique
        # dissenter while every other panel agrees on one value — which is
        # exactly the structure the hidden regularity induces.  Total
        # agreement breaks ties between equally accused panels.
        accusations = [0] * num_panels
        agreements = [0] * num_panels
        for attribute in observed[0]:
            values = [panel[attribute] for panel in observed]
            for index, value in enumerate(values):
                others = [v for j, v in enumerate(values) if j != index]
                agreements[index] += sum(v == value for v in others)
                if value not in others and len(set(others)) == 1:
                    accusations[index] += 1
        ranked = sorted(
            range(num_panels), key=lambda i: (-accusations[i], agreements[i])
        )
        return ranked[0] == task.odd_index

    def accuracy(self, tasks: list[CVRTask]) -> float:
        """Fraction of odd-one-out tasks answered correctly."""
        if not tasks:
            raise TaskGenerationError("cannot compute accuracy over an empty list")
        return sum(self.solve_task(task) for task in tasks) / len(tasks)


class SVRTSolver:
    """Same/different solver for SVRT-style tasks."""

    def __init__(self, perception_error: float = 0.03, seed: int | None = 0) -> None:
        self.perception_error = perception_error
        self.seed = seed

    def solve_task(self, task: SVRTTask) -> bool:
        simulator = PerceptionSimulator(
            {name: domain for name, domain in _svrt_domains(task).items()},
            PerceptionConfig(error_rate=self.perception_error, seed=self.seed),
        )
        seen_a = simulator.sample_misperceived_panel(task.panel_a)
        seen_b = simulator.sample_misperceived_panel(task.panel_b)
        predicted_same = seen_a == seen_b
        return predicted_same == task.same

    def accuracy(self, tasks: list[SVRTTask]) -> float:
        """Fraction of same/different tasks answered correctly."""
        if not tasks:
            raise TaskGenerationError("cannot compute accuracy over an empty list")
        return sum(self.solve_task(task) for task in tasks) / len(tasks)


def _cvr_domains(task: CVRTask) -> dict[str, tuple[str, ...]]:
    from repro.tasks.cvr import CVR_DOMAINS

    return dict(CVR_DOMAINS)


def _svrt_domains(task: SVRTTask) -> dict[str, tuple[str, ...]]:
    from repro.tasks.svrt import SVRT_DOMAINS

    return dict(SVRT_DOMAINS)
