"""Accelerator-level end-to-end drivers (Fig. 15, 16, 18, 19, Tab. X).

These experiments run the full workload models through the CogSys
accelerator simulator and the baseline devices: end-to-end speedups,
energy efficiency, comparison with ML accelerators, and the hardware and
co-design ablations.  Every driver returns plain Python data (lists of
dicts) and is bound into :mod:`repro.evaluation.registry`; see the
top-level ``README.md`` for the experiment index.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.backends import get_backend
from repro.workloads import build_workload

__all__ = [
    "EVALUATED_DATASETS",
    "EVALUATED_DEVICES",
    "dataset_workload",
    "end_to_end_speedups",
    "energy_efficiency",
    "ml_accelerator_comparison",
    "hardware_ablation",
    "codesign_ablation",
]

#: the five reasoning datasets of Fig. 15/16
EVALUATED_DATASETS = ("raven", "iraven", "pgm", "cvr", "svrt")
#: the CPU/GPU/edge devices of Fig. 15
EVALUATED_DEVICES = ("jetson_tx2", "xavier_nx", "xeon", "rtx2080ti")


def dataset_workload(dataset: str, num_tasks: int = 1):
    """Workload variant used for each reasoning dataset in Fig. 15/16."""
    if dataset in ("raven", "iraven"):
        return build_workload("nvsa", grid_size=3, num_tasks=num_tasks)
    if dataset == "pgm":
        return build_workload("nvsa", grid_size=3, num_candidates=8, num_tasks=num_tasks,
                              factorization_iterations=7)
    if dataset == "cvr":
        return build_workload("nvsa", grid_size=2, num_candidates=4, num_tasks=num_tasks)
    if dataset == "svrt":
        return build_workload("nvsa", grid_size=2, num_candidates=2, num_tasks=num_tasks)
    raise ValueError(f"unknown dataset '{dataset}'")


def end_to_end_speedups(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Fig. 15: normalized runtime of CPU/GPU/edge devices versus CogSys."""
    cogsys = get_backend("cogsys")
    rows = []
    for dataset in datasets:
        workload = dataset_workload(dataset)
        cogsys_seconds = cogsys.execute(workload, scheduler="adaptive").total_seconds
        row = {"dataset": dataset, "cogsys_seconds": cogsys_seconds, "cogsys": 1.0}
        for device_name in EVALUATED_DEVICES:
            device_seconds = get_backend(device_name).execute(workload).total_seconds
            row[device_name] = device_seconds / cogsys_seconds
        rows.append(row)
    return rows


def energy_efficiency(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Fig. 16: energy per task and performance-per-watt versus CogSys."""
    cogsys = get_backend("cogsys")
    rows = []
    for dataset in datasets:
        workload = dataset_workload(dataset)
        report = cogsys.execute(workload, scheduler="adaptive")
        row = {
            "dataset": dataset,
            "cogsys_energy_j": report.energy_joules,
            "cogsys_perf_per_watt": 1.0,
        }
        cogsys_perf_per_watt = 1.0 / report.energy_joules
        for device_name in EVALUATED_DEVICES:
            device_report = get_backend(device_name).execute(workload)
            row[f"{device_name}_energy_j"] = device_report.energy_joules
            device_perf_per_watt = (
                1.0 / device_report.energy_joules if device_report.energy_joules else 0.0
            )
            row[f"{device_name}_perf_per_watt_vs_cogsys"] = (
                device_perf_per_watt / cogsys_perf_per_watt
            )
        rows.append(row)
    return rows


def ml_accelerator_comparison(
    workloads: Sequence[str] = ("nvsa", "lvrf", "mimonet")
) -> list[dict]:
    """Fig. 18: neural-only, symbolic-only and end-to-end runtime comparison."""
    cogsys = get_backend("cogsys")
    rows = []
    for workload_name in workloads:
        workload = build_workload(workload_name)
        cogsys_report = cogsys.execute(workload, scheduler="adaptive")
        for device_name in ("tpu_like", "mtia_like", "gemmini_like"):
            device_report = get_backend(device_name).execute(workload)
            rows.append(
                {
                    "workload": workload_name,
                    "device": device_name,
                    "neural_vs_cogsys": device_report.neural_seconds
                    / max(cogsys_report.neural_seconds, 1e-12),
                    "symbolic_vs_cogsys": device_report.symbolic_seconds
                    / max(cogsys_report.symbolic_seconds, 1e-12),
                    "end_to_end_vs_cogsys": device_report.total_seconds
                    / max(cogsys_report.total_seconds, 1e-12),
                }
            )
    return rows


def hardware_ablation(num_tasks: int = 4) -> list[dict]:
    """Fig. 19: runtime without adSCH, scalable arrays and reconfigurable PEs.

    The ablated designs are first-class registry backends
    (``cogsys_no_scaleout``, ``cogsys_no_nspe``); removing adSCH is a
    scheduler choice at execute time.
    """
    datasets = ("raven", "iraven", "pgm")
    cogsys = get_backend("cogsys")
    no_scaleout = get_backend("cogsys_no_scaleout")
    without_nspe = get_backend("cogsys_no_nspe")
    rows = []
    for dataset in datasets:
        workload = dataset_workload(dataset, num_tasks=num_tasks)
        full = cogsys.execute(workload, scheduler="adaptive").total_seconds
        no_adsch = cogsys.execute(workload, scheduler="sequential").total_seconds
        no_scale = no_scaleout.execute(workload, scheduler="sequential").total_seconds
        no_nspe = without_nspe.execute(workload, scheduler="sequential").total_seconds
        rows.append(
            {
                "dataset": dataset,
                "cogsys": full / no_nspe,
                "without_adsch": no_adsch / no_nspe,
                "without_adsch_so": no_scale / no_nspe,
                "without_adsch_so_nspe": 1.0,
            }
        )
    return rows


def codesign_ablation(datasets: Sequence[str] = EVALUATED_DATASETS) -> list[dict]:
    """Tab. X: algorithm-only, hardware-only and full co-design runtimes."""
    edge = get_backend("xavier_nx")
    cogsys = get_backend("cogsys")
    nvsa_on_edge = edge.execute(
        build_workload("nvsa", use_factorization=False)
    ).total_seconds
    rows = []
    for dataset in datasets:
        algo_on_edge = edge.execute(dataset_workload(dataset)).total_seconds
        codesign = cogsys.execute(
            dataset_workload(dataset), scheduler="adaptive"
        ).total_seconds
        rows.append(
            {
                "dataset": dataset,
                "nvsa_on_xavier_nx": 1.0,
                "cogsys_algorithm_on_xavier_nx": algo_on_edge / nvsa_on_edge,
                "cogsys_algorithm_on_cogsys_accelerator": codesign / nvsa_on_edge,
            }
        )
    return rows
