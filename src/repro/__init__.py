"""CogSys reproduction: efficient and scalable neurosymbolic cognition system.

This package reproduces the system described in "CogSys: Efficient and
Scalable Neurosymbolic Cognition System via Algorithm-Hardware Co-Design"
(HPCA 2025).  It is organised as a set of substrates plus the paper's core
contribution:

``repro.vsa``
    Vector-symbolic architecture substrate: hypervector spaces, binding via
    circular convolution, bundling, codebooks and cleanup memories.
``repro.core``
    The paper's algorithmic contribution: the iterative symbolic codebook
    factorizer (resonator), stochasticity injection, quantization and memory
    footprint accounting.
``repro.neural``
    Numpy neural layers with FLOP/byte accounting and a perception simulator.
``repro.symbolic``
    Probabilistic abduction reasoning over Raven's-Progressive-Matrices-style
    rules.
``repro.tasks``
    Synthetic cognitive task generators (RAVEN, I-RAVEN, PGM, CVR, SVRT).
``repro.workloads``
    Operator-graph models of the four neurosymbolic workloads analysed by
    the paper (NVSA, MIMONet, LVRF, PrAE).
``repro.hardware``
    Cycle-level and analytical hardware models: the CogSys accelerator
    (nsPE array, bubble-streaming dataflow, spatial/temporal mapping, SIMD,
    SRAM/DRAM, energy/area) and baseline devices (TPU/GPU/CPU/edge SoCs).
``repro.scheduler``
    Sequential and adaptive workload-aware (adSCH) schedulers.
``repro.profiling``
    Workload characterization helpers (runtime/roofline/memory profiling).
``repro.evaluation``
    The evaluation platform: per-figure experiment drivers in focused
    modules, the declarative ``repro.evaluation.registry`` of
    ``ExperimentSpec`` entries, and the caching/parallel
    ``repro.evaluation.engine`` that executes them.
``repro.cli``
    The ``repro`` command line (``repro list`` / ``run`` / ``report`` /
    ``cache``, also ``python -m repro``) for running registered experiments
    and regenerating ``EXPERIMENTS.md``.
"""

from repro._version import __version__

__all__ = ["__version__"]
