"""MIMONet workload model (multiple-input multiple-output networks).

MIMONet [Menet et al., NeurIPS 2023] binds several inputs into one
superposed representation with VSA binding, pushes the superposition through
a single CNN/Transformer, and unbinds the per-input results.  Its kernel mix
is therefore neural-heavy (the paper's Fig. 4a attributes >90 % of runtime
to the neural stage) with comparatively few, *low-dimensional* circular
convolutions — which is why the scale-out array organisation wins for this
workload (Sec. V-E).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Stage, Workload
from repro.workloads.builders import (
    circconv_kernel,
    elementwise_kernel,
    gemm_kernel,
    perception_kernels,
)
from repro.neural.network import build_perception_backbone

__all__ = ["build_mimonet_workload"]


def build_mimonet_workload(
    num_inputs: int = 4,
    sequence_length: int = 256,
    embedding_dim: int = 512,
    num_transformer_layers: int = 4,
    binding_dim: int = 64,
    image_size: int = 32,
    num_tasks: int = 1,
) -> Workload:
    """Build the MIMONet kernel graph.

    Parameters
    ----------
    num_inputs:
        How many inputs are processed in superposition per pass.
    sequence_length / embedding_dim / num_transformer_layers:
        Transformer trunk dimensions (LRA-style workloads).
    binding_dim:
        Dimensionality of the VSA binding keys (d = 64 in the paper's
        scale-out discussion).
    """
    if num_inputs < 1:
        raise WorkloadError(f"num_inputs must be >= 1, got {num_inputs}")
    if num_tasks < 1:
        raise WorkloadError(f"num_tasks must be >= 1, got {num_tasks}")

    backbone = build_perception_backbone(
        name="mimo_cnn",
        image_size=image_size,
        embedding_dim=embedding_dim,
        width=16,
        num_blocks=2,
    )

    kernels = []
    for task in range(num_tasks):
        prefix = f"task{task}"

        # Symbolic encode: bind each input with its key (low-dimensional).
        bind = circconv_kernel(
            f"{prefix}/symb/bind",
            vector_dim=binding_dim,
            count=num_inputs * sequence_length,
            launches=num_inputs,
            task_id=task,
        )
        kernels.append(bind)

        # Neural trunk: CNN tokenizer followed by transformer layers running
        # on the superposed representation.
        neural = perception_kernels(
            backbone,
            input_shape=(1, image_size, image_size),
            prefix=f"{prefix}/neuro/tokenizer",
            num_panels=1,
            task_id=task,
            depends_on=(bind.name,),
        )
        kernels.extend(neural)
        previous = neural[-1].name

        for layer in range(num_transformer_layers):
            attention = gemm_kernel(
                f"{prefix}/neuro/layer{layer}/attention",
                m=sequence_length,
                k=embedding_dim,
                n=3 * embedding_dim,
                task_id=task,
                depends_on=(previous,),
            )
            scores = gemm_kernel(
                f"{prefix}/neuro/layer{layer}/scores",
                m=sequence_length,
                k=embedding_dim,
                n=sequence_length,
                task_id=task,
                depends_on=(attention.name,),
            )
            mlp = gemm_kernel(
                f"{prefix}/neuro/layer{layer}/mlp",
                m=sequence_length,
                k=embedding_dim,
                n=4 * embedding_dim,
                task_id=task,
                depends_on=(scores.name,),
            )
            norm = elementwise_kernel(
                f"{prefix}/neuro/layer{layer}/norm",
                elements=sequence_length * embedding_dim,
                ops_per_element=6,
                stage=Stage.NEURAL,
                task_id=task,
                depends_on=(mlp.name,),
            )
            kernels.extend([attention, scores, mlp, norm])
            previous = norm.name

        # Symbolic decode: unbind per-input results from the superposition.
        unbind = circconv_kernel(
            f"{prefix}/symb/unbind",
            vector_dim=binding_dim,
            count=num_inputs * sequence_length,
            launches=num_inputs,
            task_id=task,
            depends_on=(previous,),
        )
        readout = elementwise_kernel(
            f"{prefix}/symb/readout",
            elements=num_inputs * embedding_dim,
            ops_per_element=3,
            task_id=task,
            depends_on=(unbind.name,),
        )
        kernels.extend([unbind, readout])

    transformer_params = num_transformer_layers * (
        3 * embedding_dim * embedding_dim + 4 * embedding_dim * embedding_dim
    )
    weight_bytes = (
        backbone.stats((1, image_size, image_size)).weight_bytes()
        + transformer_params * 4
    )
    codebook_bytes = num_inputs * binding_dim * 4 * sequence_length

    return Workload(
        name="mimonet",
        kernels=kernels,
        weight_bytes=weight_bytes,
        codebook_bytes=codebook_bytes,
        description=(
            "MIMONet computation-in-superposition: VSA binding of multiple "
            "inputs, shared CNN/transformer trunk, VSA unbinding."
        ),
    )
