"""Kernel-level workload representation.

A :class:`Workload` is a directed acyclic graph of :class:`KernelOp` nodes.
Each node carries enough shape information for every hardware model in
``repro.hardware`` to derive cycles and traffic:

* GEMM-like kernels (``gemm``, ``conv`` lowered via im2col, ``matvec``)
  carry ``(m, k, n)`` dimensions.
* Circular-convolution kernels carry the vector dimension ``d`` and the
  number of independent convolutions ``count``.
* Element-wise kernels carry an element count.

The graph edges (``depends_on``) capture the neural -> symbolic sequential
dependency the paper identifies as a system-level bottleneck; kernels from
different reasoning tasks (different ``task_id``) are independent, which is
what the adaptive scheduler exploits.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = ["KernelKind", "Stage", "KernelOp", "Workload"]


class KernelKind(enum.Enum):
    """Kernel categories used across the hardware models."""

    GEMM = "gemm"
    CONV = "conv"
    MATVEC = "matvec"
    CIRCCONV = "circconv"
    ELEMENTWISE = "elementwise"


class Stage(enum.Enum):
    """Which half of the neurosymbolic pipeline a kernel belongs to."""

    NEURAL = "neural"
    SYMBOLIC = "symbolic"


@dataclass(frozen=True)
class KernelOp:
    """One kernel in the workload operator graph."""

    name: str
    kind: KernelKind
    stage: Stage
    flops: int
    bytes_read: int
    bytes_written: int
    m: int = 1
    k: int = 1
    n: int = 1
    vector_dim: int = 0
    count: int = 1
    launches: int = 0
    task_id: int = 0
    depends_on: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise WorkloadError(f"kernel '{self.name}' has negative cost fields")
        if self.launches < 0:
            raise WorkloadError(f"kernel '{self.name}' has negative launch count")
        if min(self.m, self.k, self.n, self.count) < 1:
            raise WorkloadError(f"kernel '{self.name}' has non-positive dimensions")
        if self.kind is KernelKind.CIRCCONV and self.vector_dim < 1:
            raise WorkloadError(
                f"circular convolution kernel '{self.name}' needs vector_dim >= 1"
            )

    @property
    def total_bytes(self) -> int:
        """Total off-array traffic of the kernel."""
        return self.bytes_read + self.bytes_written

    @property
    def device_launches(self) -> int:
        """Separate kernel launches this operation needs on a CPU/GPU host.

        Batched operations fuse many logical sub-operations into one launch,
        so this may be much smaller than ``count``; it defaults to ``count``
        when the builder did not specify a fused launch structure.
        """
        return self.launches if self.launches > 0 else self.count

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte (roofline x-axis)."""
        return self.flops / self.total_bytes if self.total_bytes else 0.0

    @property
    def is_symbolic(self) -> bool:
        """True when the kernel belongs to the symbolic stage."""
        return self.stage is Stage.SYMBOLIC


@dataclass
class Workload:
    """A named DAG of kernels plus workload-level memory metadata."""

    name: str
    kernels: list[KernelOp]
    weight_bytes: int = 0
    codebook_bytes: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.kernels:
            raise WorkloadError(f"workload '{self.name}' has no kernels")
        names = [kernel.name for kernel in self.kernels]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload '{self.name}' has duplicate kernel names")
        known = set(names)
        for kernel in self.kernels:
            unknown = set(kernel.depends_on) - known
            if unknown:
                raise WorkloadError(
                    f"kernel '{kernel.name}' depends on unknown kernels {sorted(unknown)}"
                )

    # -- lookups -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self):
        return iter(self.kernels)

    def kernel(self, name: str) -> KernelOp:
        """Return the kernel with the given name."""
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise WorkloadError(f"workload '{self.name}' has no kernel named '{name}'")

    def by_stage(self, stage: Stage) -> list[KernelOp]:
        """All kernels belonging to one pipeline stage."""
        return [kernel for kernel in self.kernels if kernel.stage is stage]

    def by_kind(self, kind: KernelKind) -> list[KernelOp]:
        """All kernels of one kind."""
        return [kernel for kernel in self.kernels if kernel.kind is kind]

    # -- aggregate metrics ----------------------------------------------------------
    def total_flops(self, stage: Stage | None = None) -> int:
        """Total FLOPs, optionally restricted to one stage."""
        return sum(k.flops for k in self._select(stage))

    def total_bytes(self, stage: Stage | None = None) -> int:
        """Total kernel traffic, optionally restricted to one stage."""
        return sum(k.total_bytes for k in self._select(stage))

    def symbolic_flops_fraction(self) -> float:
        """Fraction of workload FLOPs issued by symbolic kernels."""
        total = self.total_flops()
        return self.total_flops(Stage.SYMBOLIC) / total if total else 0.0

    def memory_footprint_bytes(self) -> int:
        """Model weights plus symbolic codebook storage."""
        return self.weight_bytes + self.codebook_bytes

    def _select(self, stage: Stage | None) -> Iterable[KernelOp]:
        if stage is None:
            return self.kernels
        return self.by_stage(stage)

    # -- graph helpers ----------------------------------------------------------------
    def dependencies_of(self, name: str) -> list[KernelOp]:
        """Direct predecessors of a kernel."""
        kernel = self.kernel(name)
        return [self.kernel(dep) for dep in kernel.depends_on]

    def topological_order(self) -> list[KernelOp]:
        """Kernels sorted so every dependency precedes its dependents."""
        order: list[KernelOp] = []
        resolved: set[str] = set()
        remaining = list(self.kernels)
        while remaining:
            progressed = False
            still_remaining = []
            for kernel in remaining:
                if set(kernel.depends_on) <= resolved:
                    order.append(kernel)
                    resolved.add(kernel.name)
                    progressed = True
                else:
                    still_remaining.append(kernel)
            if not progressed:
                raise WorkloadError(
                    f"workload '{self.name}' has a dependency cycle among "
                    f"{[k.name for k in still_remaining]}"
                )
            remaining = still_remaining
        return order
