"""NVSA workload model (neuro-vector-symbolic architecture).

NVSA [Hersche et al., Nature MI 2023] solves Raven's Progressive Matrices:
a CNN front-end perceives every panel, VSA binding/unbinding plus a
factorization loop extract per-attribute beliefs, and a probabilistic rule
engine abducts the governing rules and executes them.  The paper's
characterisation (Sec. III) reports that the symbolic stage dominates
runtime (~87 % on GPU) while contributing only ~19 % of the FLOPs, and that
the symbolic codebook accounts for tens of MB — this builder produces a
kernel graph with exactly those properties.
"""

from __future__ import annotations

from repro.core.footprint import codebook_footprint, factorizer_footprint
from repro.errors import WorkloadError
from repro.neural.network import build_perception_backbone
from repro.workloads.base import Stage, Workload
from repro.workloads.builders import (
    circconv_kernel,
    elementwise_kernel,
    matvec_kernel,
    perception_kernels,
)

__all__ = ["build_nvsa_workload"]

#: per-attribute codebook sizes of the RAVEN-style grammar (type, size,
#: color, position), matching the factor structure of Sec. IV-A.  With
#: d = 1024 FP32 hypervectors the exhaustive product codebook is ~13.4 MB
#: and the factorized form ~165 KB, reproducing the Fig. 8 comparison
#: (13,560 KB -> 190 KB).
NVSA_FACTOR_SIZES = [6, 8, 10, 7]


def build_nvsa_workload(
    grid_size: int = 3,
    num_candidates: int = 8,
    vector_dim: int = 1024,
    factorization_iterations: int = 6,
    image_size: int = 80,
    num_tasks: int = 1,
    use_factorization: bool = True,
) -> Workload:
    """Build the NVSA kernel graph for one (or a batch of) reasoning task(s).

    Parameters
    ----------
    grid_size:
        RPM grid size (2 or 3); controls the number of context panels and
        scales the symbolic work, reproducing the Fig. 4c scalability sweep.
    num_candidates:
        Size of the answer set.
    vector_dim:
        VSA hypervector dimensionality (d = 1024 in the paper).
    factorization_iterations:
        Average factorizer iterations per query vector.
    num_tasks:
        Number of independent reasoning tasks in the batch; kernels of
        different tasks carry different ``task_id`` so schedulers may
        interleave them.
    use_factorization:
        When False, the symbolic search runs against the exhaustive product
        codebook (the pre-CogSys baseline), which inflates both traffic and
        the codebook footprint (Fig. 8 / Tab. X ablations).
    """
    if grid_size < 2:
        raise WorkloadError(f"grid_size must be >= 2, got {grid_size}")
    if num_tasks < 1:
        raise WorkloadError(f"num_tasks must be >= 1, got {num_tasks}")

    num_attributes = len(NVSA_FACTOR_SIZES)
    context_panels = grid_size * grid_size - 1
    num_panels = context_panels + num_candidates
    backbone = build_perception_backbone(
        name="nvsa_cnn",
        image_size=image_size,
        embedding_dim=vector_dim,
        width=32,
        num_blocks=4,
    )

    kernels = []
    for task in range(num_tasks):
        prefix = f"task{task}"
        neural = perception_kernels(
            backbone,
            input_shape=(1, image_size, image_size),
            prefix=f"{prefix}/neuro",
            num_panels=num_panels,
            task_id=task,
        )
        kernels.extend(neural)
        last_neural = neural[-1].name

        # Symbolic stage: factorize every panel's query vector into its
        # attribute codevectors (unbind -> similarity search -> projection),
        # then abduct and execute rules over the attribute beliefs.
        if use_factorization:
            unbind_count = num_panels * num_attributes * factorization_iterations
            search_rows = sum(NVSA_FACTOR_SIZES)
        else:
            # Exhaustive search: one similarity pass over the full product
            # codebook per panel, no iterative unbinding.
            unbind_count = num_panels * num_attributes
            search_rows = 1
            for size in NVSA_FACTOR_SIZES:
                search_rows *= size

        binding = circconv_kernel(
            f"{prefix}/symb/unbind",
            vector_dim=vector_dim,
            count=unbind_count,
            launches=num_attributes * factorization_iterations,
            task_id=task,
            depends_on=(last_neural,),
        )
        kernels.append(binding)

        # With factorization the similarity search scans the small per-factor
        # codebooks every iteration; without it every panel's query (and its
        # per-attribute rule evaluations) must be matched against the full
        # product codebook, which is what blows up both traffic and latency.
        search = matvec_kernel(
            f"{prefix}/symb/similarity",
            rows=search_rows,
            cols=vector_dim,
            count=num_panels * factorization_iterations
            if use_factorization
            else num_panels * num_attributes,
            launches=factorization_iterations if use_factorization else num_attributes,
            task_id=task,
            depends_on=(binding.name,),
        )
        kernels.append(search)

        projection = matvec_kernel(
            f"{prefix}/symb/projection",
            rows=vector_dim,
            cols=sum(NVSA_FACTOR_SIZES),
            count=(num_panels * factorization_iterations) if use_factorization else num_panels,
            launches=factorization_iterations if use_factorization else 1,
            task_id=task,
            depends_on=(search.name,),
        )
        kernels.append(projection)

        rule_probability = elementwise_kernel(
            f"{prefix}/symb/rule_probabilities",
            elements=num_attributes * 8 * grid_size * grid_size * 64,
            ops_per_element=4,
            count=num_attributes * 8,
            task_id=task,
            depends_on=(projection.name,),
        )
        kernels.append(rule_probability)

        scoring = matvec_kernel(
            f"{prefix}/symb/candidate_scoring",
            rows=num_candidates,
            cols=vector_dim,
            count=num_attributes,
            task_id=task,
            depends_on=(rule_probability.name,),
        )
        kernels.append(scoring)

    if use_factorization:
        codebook_bytes = factorizer_footprint(NVSA_FACTOR_SIZES, vector_dim)
    else:
        codebook_bytes = codebook_footprint(NVSA_FACTOR_SIZES, vector_dim)
    weight_bytes = backbone.stats((1, image_size, image_size)).weight_bytes()

    return Workload(
        name="nvsa" if use_factorization else "nvsa_codebook",
        kernels=kernels,
        weight_bytes=weight_bytes,
        codebook_bytes=codebook_bytes,
        description=(
            "NVSA spatial-temporal abduction reasoning: CNN perception, VSA "
            "factorization, probabilistic rule abduction and execution."
        ),
    )
