"""LVRF workload model (probabilistic abduction via learned VSA rules).

LVRF [Hersche et al., NeurIPS 2023] performs visual abstract reasoning with
rules *learned* in the VSA space, which makes its symbolic stage even more
binding/unbinding intensive than NVSA (the paper quotes k = 2575 circular
convolutions per task at d = 1024) while keeping a comparable CNN front-end.
It also targets out-of-distribution generalisation, so candidate scoring
runs against a larger rule bank.
"""

from __future__ import annotations

from repro.core.footprint import factorizer_footprint
from repro.errors import WorkloadError
from repro.neural.network import build_perception_backbone
from repro.workloads.base import Workload
from repro.workloads.builders import (
    circconv_kernel,
    elementwise_kernel,
    matvec_kernel,
    perception_kernels,
)

__all__ = ["build_lvrf_workload"]

#: attribute codebook sizes mirroring the NVSA grammar
LVRF_FACTOR_SIZES = [5, 6, 10, 9, 7]


def build_lvrf_workload(
    grid_size: int = 3,
    num_candidates: int = 8,
    vector_dim: int = 1024,
    num_learned_rules: int = 32,
    image_size: int = 80,
    num_tasks: int = 1,
) -> Workload:
    """Build the LVRF kernel graph for a batch of reasoning tasks."""
    if grid_size < 2:
        raise WorkloadError(f"grid_size must be >= 2, got {grid_size}")
    if num_tasks < 1:
        raise WorkloadError(f"num_tasks must be >= 1, got {num_tasks}")

    num_attributes = len(LVRF_FACTOR_SIZES)
    context_panels = grid_size * grid_size - 1
    num_panels = context_panels + num_candidates
    backbone = build_perception_backbone(
        name="lvrf_cnn",
        image_size=image_size,
        embedding_dim=vector_dim,
        width=32,
        num_blocks=4,
    )

    kernels = []
    for task in range(num_tasks):
        prefix = f"task{task}"
        neural = perception_kernels(
            backbone,
            input_shape=(1, image_size, image_size),
            prefix=f"{prefix}/neuro",
            num_panels=num_panels,
            task_id=task,
        )
        kernels.extend(neural)
        last_neural = neural[-1].name

        # Rule abduction in VSA space: bind context panels against every
        # learned rule template (this is where the large circular-convolution
        # count comes from), then score rules and candidates.
        rule_binding = circconv_kernel(
            f"{prefix}/symb/rule_binding",
            vector_dim=vector_dim,
            count=num_panels * num_attributes * num_learned_rules // 2,
            launches=num_attributes * num_learned_rules,
            task_id=task,
            depends_on=(last_neural,),
        )
        kernels.append(rule_binding)

        rule_scoring = matvec_kernel(
            f"{prefix}/symb/rule_scoring",
            rows=num_learned_rules,
            cols=vector_dim,
            count=num_panels * num_attributes,
            launches=num_attributes,
            task_id=task,
            depends_on=(rule_binding.name,),
        )
        kernels.append(rule_scoring)

        posterior = elementwise_kernel(
            f"{prefix}/symb/rule_posterior",
            elements=num_attributes * num_learned_rules * 128,
            ops_per_element=4,
            task_id=task,
            depends_on=(rule_scoring.name,),
        )
        kernels.append(posterior)

        execution = circconv_kernel(
            f"{prefix}/symb/rule_execution",
            vector_dim=vector_dim,
            count=num_candidates * num_attributes,
            launches=num_attributes,
            task_id=task,
            depends_on=(posterior.name,),
        )
        kernels.append(execution)

        scoring = matvec_kernel(
            f"{prefix}/symb/candidate_scoring",
            rows=num_candidates,
            cols=vector_dim,
            count=num_attributes,
            task_id=task,
            depends_on=(execution.name,),
        )
        kernels.append(scoring)

    weight_bytes = backbone.stats((1, image_size, image_size)).weight_bytes()
    codebook_bytes = (
        factorizer_footprint(LVRF_FACTOR_SIZES, vector_dim)
        + num_learned_rules * vector_dim * 4
    )

    return Workload(
        name="lvrf",
        kernels=kernels,
        weight_bytes=weight_bytes,
        codebook_bytes=codebook_bytes,
        description=(
            "LVRF probabilistic abduction with learned VSA rules: CNN "
            "perception, rule binding/unbinding, posterior computation and "
            "rule execution."
        ),
    )
