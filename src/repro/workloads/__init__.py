"""Operator-graph models of the four neurosymbolic workloads.

The paper characterises four VSA-based neurosymbolic models (NVSA, MIMONet,
LVRF, PrAE).  For hardware analysis what matters is each workload's kernel
composition: which GEMM/convolution kernels the neural stage issues, which
circular-convolution / matrix-vector / element-wise kernels the symbolic
stage issues, their shapes, FLOPs, data traffic and dependencies.  The
classes here build those operator graphs, parameterised by reasoning task
size, so the schedulers and device models can consume them.
"""

from repro.workloads.base import KernelKind, KernelOp, Stage, Workload
from repro.workloads.nvsa import build_nvsa_workload
from repro.workloads.mimonet import build_mimonet_workload
from repro.workloads.lvrf import build_lvrf_workload
from repro.workloads.prae import build_prae_workload
from repro.workloads.registry import WORKLOAD_BUILDERS, build_workload

__all__ = [
    "KernelKind",
    "KernelOp",
    "Stage",
    "Workload",
    "build_nvsa_workload",
    "build_mimonet_workload",
    "build_lvrf_workload",
    "build_prae_workload",
    "WORKLOAD_BUILDERS",
    "build_workload",
]
