"""PrAE workload model (probabilistic abduction and execution learner).

PrAE [Zhang et al., CVPR 2021] pairs a CNN scene-parsing front-end with a
purely probabilistic symbolic back-end: attribute beliefs are manipulated as
probability tensors (no hypervector binding), so its symbolic stage is
dominated by vector-vector multiplications and element-wise probability
updates rather than circular convolutions, yet it still sits on the
sequential critical path behind the neural stage.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.neural.network import build_perception_backbone
from repro.workloads.base import Workload
from repro.workloads.builders import (
    elementwise_kernel,
    matvec_kernel,
    perception_kernels,
)

__all__ = ["build_prae_workload"]

#: attribute domain sizes of the PrAE scene representation
PRAE_ATTRIBUTE_SIZES = [5, 6, 10, 9, 7]
#: number of rules hypothesised per attribute
PRAE_RULES_PER_ATTRIBUTE = 8


def build_prae_workload(
    grid_size: int = 3,
    num_candidates: int = 8,
    image_size: int = 80,
    hidden_dim: int = 512,
    num_tasks: int = 1,
) -> Workload:
    """Build the PrAE kernel graph for a batch of reasoning tasks."""
    if grid_size < 2:
        raise WorkloadError(f"grid_size must be >= 2, got {grid_size}")
    if num_tasks < 1:
        raise WorkloadError(f"num_tasks must be >= 1, got {num_tasks}")

    num_attributes = len(PRAE_ATTRIBUTE_SIZES)
    context_panels = grid_size * grid_size - 1
    num_panels = context_panels + num_candidates
    backbone = build_perception_backbone(
        name="prae_cnn",
        image_size=image_size,
        embedding_dim=hidden_dim,
        width=32,
        num_blocks=4,
    )

    kernels = []
    for task in range(num_tasks):
        prefix = f"task{task}"
        neural = perception_kernels(
            backbone,
            input_shape=(1, image_size, image_size),
            prefix=f"{prefix}/neuro",
            num_panels=num_panels,
            task_id=task,
        )
        kernels.extend(neural)
        last_neural = neural[-1].name

        # Scene inference: project embeddings to per-attribute PMFs.
        scene_heads = matvec_kernel(
            f"{prefix}/symb/scene_inference",
            rows=sum(PRAE_ATTRIBUTE_SIZES),
            cols=hidden_dim,
            count=num_panels,
            task_id=task,
            depends_on=(last_neural,),
        )
        kernels.append(scene_heads)

        # Probabilistic abduction: evaluate every rule hypothesis against the
        # two complete rows for every attribute.  The probability tensors
        # include the joint position distribution over the 3x3 slot grid
        # (2^9 occupancy states), which is what makes this stage large, and
        # each (attribute, rule) pair is issued as its own small kernel.
        position_states = 2 ** (grid_size * grid_size)
        abduction_launches = num_attributes * PRAE_RULES_PER_ATTRIBUTE * (grid_size - 1)
        abduction_elements = (
            abduction_launches * max(PRAE_ATTRIBUTE_SIZES) ** 2 * position_states
        )
        abduction = elementwise_kernel(
            f"{prefix}/symb/rule_abduction",
            elements=abduction_elements,
            ops_per_element=3,
            count=abduction_launches,
            task_id=task,
            depends_on=(scene_heads.name,),
        )
        kernels.append(abduction)

        # Execution: predict the missing panel's PMFs under the abducted rules.
        execution = elementwise_kernel(
            f"{prefix}/symb/rule_execution",
            elements=num_attributes
            * PRAE_RULES_PER_ATTRIBUTE
            * max(PRAE_ATTRIBUTE_SIZES) ** 2
            * position_states,
            ops_per_element=3,
            count=num_attributes * PRAE_RULES_PER_ATTRIBUTE,
            task_id=task,
            depends_on=(abduction.name,),
        )
        kernels.append(execution)

        # Candidate scoring: divergence between prediction and each candidate.
        scoring = matvec_kernel(
            f"{prefix}/symb/candidate_scoring",
            rows=num_candidates,
            cols=sum(PRAE_ATTRIBUTE_SIZES),
            count=num_attributes,
            task_id=task,
            depends_on=(execution.name,),
        )
        kernels.append(scoring)

    weight_bytes = backbone.stats((1, image_size, image_size)).weight_bytes()
    codebook_bytes = (
        sum(PRAE_ATTRIBUTE_SIZES) * PRAE_RULES_PER_ATTRIBUTE * max(PRAE_ATTRIBUTE_SIZES) * 4 * 64
    )

    return Workload(
        name="prae",
        kernels=kernels,
        weight_bytes=weight_bytes,
        codebook_bytes=codebook_bytes,
        description=(
            "PrAE probabilistic abduction and execution: CNN scene parsing "
            "followed by probability-tensor rule abduction and execution."
        ),
    )
