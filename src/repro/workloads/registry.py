"""Registry of workload builders used by the evaluation harness."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.lvrf import build_lvrf_workload
from repro.workloads.mimonet import build_mimonet_workload
from repro.workloads.nvsa import build_nvsa_workload
from repro.workloads.prae import build_prae_workload

__all__ = ["WORKLOAD_BUILDERS", "build_workload"]

#: workload name -> builder callable
WORKLOAD_BUILDERS: dict[str, Callable[..., Workload]] = {
    "nvsa": build_nvsa_workload,
    "mimonet": build_mimonet_workload,
    "lvrf": build_lvrf_workload,
    "prae": build_prae_workload,
}


def build_workload(name: str, **kwargs) -> Workload:
    """Build one of the four analysed workloads by name."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload '{name}'; known workloads: {sorted(WORKLOAD_BUILDERS)}"
        ) from exc
    return builder(**kwargs)
