"""Shared helpers for constructing kernel graphs.

The individual workload modules (NVSA, MIMONet, LVRF, PrAE) differ in their
kernel mix but build their graphs from the same primitives: convolutions
lowered to GEMM shape, GEMM/matvec kernels, circular-convolution bundles and
element-wise kernels.  Keeping the cost formulas in one place guarantees
every workload is accounted the same way.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.neural.layers import Conv2d, Linear
from repro.neural.network import SequentialNetwork
from repro.workloads.base import KernelKind, KernelOp, Stage

__all__ = [
    "conv_kernel",
    "gemm_kernel",
    "matvec_kernel",
    "circconv_kernel",
    "elementwise_kernel",
    "perception_kernels",
]

#: storage width used for traffic accounting (FP32 activations/weights)
ELEMENT_BYTES = 4


def conv_kernel(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    output_height: int,
    output_width: int,
    stage: Stage = Stage.NEURAL,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> KernelOp:
    """A convolution lowered to its im2col GEMM shape."""
    m = output_height * output_width
    k = in_channels * kernel_size * kernel_size
    n = out_channels
    flops = 2 * m * k * n
    bytes_read = (m * k + k * n) * ELEMENT_BYTES
    bytes_written = m * n * ELEMENT_BYTES
    return KernelOp(
        name=name,
        kind=KernelKind.CONV,
        stage=stage,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        m=m,
        k=k,
        n=n,
        task_id=task_id,
        depends_on=tuple(depends_on),
    )


def gemm_kernel(
    name: str,
    m: int,
    k: int,
    n: int,
    stage: Stage = Stage.NEURAL,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> KernelOp:
    """A dense matrix-matrix multiplication kernel."""
    flops = 2 * m * k * n
    bytes_read = (m * k + k * n) * ELEMENT_BYTES
    bytes_written = m * n * ELEMENT_BYTES
    return KernelOp(
        name=name,
        kind=KernelKind.GEMM,
        stage=stage,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        m=m,
        k=k,
        n=n,
        task_id=task_id,
        depends_on=tuple(depends_on),
    )


def matvec_kernel(
    name: str,
    rows: int,
    cols: int,
    count: int = 1,
    launches: int = 0,
    stage: Stage = Stage.SYMBOLIC,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> KernelOp:
    """``count`` independent matrix-vector products (similarity searches)."""
    flops = 2 * rows * cols * count
    bytes_read = (rows * cols + cols) * count * ELEMENT_BYTES
    bytes_written = rows * count * ELEMENT_BYTES
    return KernelOp(
        name=name,
        kind=KernelKind.MATVEC,
        stage=stage,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        m=count,
        k=cols,
        n=rows,
        count=count,
        launches=launches,
        task_id=task_id,
        depends_on=tuple(depends_on),
    )


def circconv_kernel(
    name: str,
    vector_dim: int,
    count: int,
    launches: int = 0,
    stage: Stage = Stage.SYMBOLIC,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> KernelOp:
    """``count`` circular convolutions (bindings/unbindings) of dimension ``d``.

    FLOPs use the direct O(d^2) formulation because that is what both the
    nsPE array and the GEMV lowering on TPU-like baselines execute; traffic
    is the streaming O(d) view (two inputs plus one output per operation).
    Device models that materialise the circulant matrix add their own
    overhead on top.
    """
    if vector_dim < 1:
        raise WorkloadError(f"circconv kernel '{name}' needs vector_dim >= 1")
    flops = count * (2 * vector_dim * vector_dim - vector_dim)
    bytes_read = 2 * vector_dim * count * ELEMENT_BYTES
    bytes_written = vector_dim * count * ELEMENT_BYTES
    return KernelOp(
        name=name,
        kind=KernelKind.CIRCCONV,
        stage=stage,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        vector_dim=vector_dim,
        count=count,
        launches=launches,
        task_id=task_id,
        depends_on=tuple(depends_on),
    )


def elementwise_kernel(
    name: str,
    elements: int,
    ops_per_element: int = 1,
    count: int = 1,
    stage: Stage = Stage.SYMBOLIC,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> KernelOp:
    """A vector/element-wise kernel (activation, normalisation, scoring).

    ``count`` records how many separate small launches the operation is
    issued as on CPU/GPU baselines (symbolic pipelines launch one kernel per
    rule/attribute), which is what the per-launch overhead model in
    ``repro.hardware.baselines`` consumes.
    """
    flops = elements * ops_per_element
    bytes_read = elements * ELEMENT_BYTES
    bytes_written = elements * ELEMENT_BYTES
    return KernelOp(
        name=name,
        kind=KernelKind.ELEMENTWISE,
        stage=stage,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        m=elements,
        count=count,
        task_id=task_id,
        depends_on=tuple(depends_on),
    )


def perception_kernels(
    network: SequentialNetwork,
    input_shape: tuple[int, int, int],
    prefix: str,
    num_panels: int,
    task_id: int = 0,
    depends_on: tuple[str, ...] = (),
) -> list[KernelOp]:
    """Lower a perception backbone into a chain of neural kernels.

    The ``num_panels`` panels of a reasoning task are processed as a batch,
    which multiplies the GEMM ``m`` dimension rather than duplicating
    kernels (matching how the frameworks the paper profiles execute them).
    """
    if num_panels < 1:
        raise WorkloadError(f"num_panels must be positive, got {num_panels}")
    kernels: list[KernelOp] = []
    shape = tuple(input_shape)
    previous = tuple(depends_on)
    elementwise_elements = 0
    elementwise_index = 0
    for layer in network.layers:
        stats = layer.stats(shape)
        if isinstance(layer, Conv2d):
            _, out_h, out_w = stats.output_shape
            kernel = conv_kernel(
                f"{prefix}/{layer.name}",
                in_channels=layer.in_channels,
                out_channels=layer.out_channels,
                kernel_size=layer.kernel_size,
                output_height=out_h,
                output_width=out_w * num_panels,
                task_id=task_id,
                depends_on=previous,
            )
            kernels.append(kernel)
            previous = (kernel.name,)
        elif isinstance(layer, Linear):
            kernel = gemm_kernel(
                f"{prefix}/{layer.name}",
                m=num_panels,
                k=layer.in_features,
                n=layer.out_features,
                task_id=task_id,
                depends_on=previous,
            )
            kernels.append(kernel)
            previous = (kernel.name,)
        else:
            # Fuse consecutive activation/normalisation layers into a single
            # element-wise kernel to keep the graph compact.
            elementwise_elements += int(stats.flops) * num_panels
        shape = stats.output_shape
    if elementwise_elements:
        kernel = elementwise_kernel(
            f"{prefix}/activations{elementwise_index}",
            elements=elementwise_elements,
            stage=Stage.NEURAL,
            task_id=task_id,
            depends_on=previous,
        )
        kernels.append(kernel)
    return kernels
