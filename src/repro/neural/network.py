"""Sequential network container and perception backbone builders."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionMismatchError
from repro.neural.layers import (
    BatchNorm,
    Conv2d,
    Flatten,
    Layer,
    LayerStats,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = ["NetworkStats", "SequentialNetwork", "build_perception_backbone"]


@dataclass(frozen=True)
class NetworkStats:
    """Aggregate compute/memory summary of a network at a given input shape."""

    layer_stats: tuple[LayerStats, ...]

    @property
    def total_flops(self) -> int:
        """Sum of per-layer FLOPs."""
        return sum(stat.flops for stat in self.layer_stats)

    @property
    def total_params(self) -> int:
        """Sum of per-layer parameter counts."""
        return sum(stat.params for stat in self.layer_stats)

    def total_bytes(self, element_bytes: int = 4) -> int:
        """Sum of per-layer traffic estimates."""
        return sum(stat.total_bytes(element_bytes) for stat in self.layer_stats)

    def weight_bytes(self, element_bytes: int = 4) -> int:
        """Total parameter storage."""
        return self.total_params * element_bytes

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Shape of the final layer's output."""
        return self.layer_stats[-1].output_shape if self.layer_stats else ()


class SequentialNetwork:
    """A plain feed-forward stack of layers."""

    def __init__(self, name: str, layers: list[Layer]) -> None:
        if not layers:
            raise DimensionMismatchError(f"network '{name}' needs at least one layer")
        self.name = name
        self.layers = list(layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def forward(self, activations: np.ndarray) -> np.ndarray:
        """Run all layers in order."""
        for layer in self.layers:
            activations = layer.forward(activations)
        return activations

    def stats(self, input_shape: tuple[int, ...]) -> NetworkStats:
        """Collect per-layer stats by propagating the input shape."""
        shape = tuple(input_shape)
        collected = []
        for layer in self.layers:
            stat = layer.stats(shape)
            collected.append(stat)
            shape = stat.output_shape
        return NetworkStats(layer_stats=tuple(collected))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape produced for a given input shape."""
        return self.stats(input_shape).output_shape


def build_perception_backbone(
    name: str = "perception",
    input_channels: int = 1,
    image_size: int = 32,
    embedding_dim: int = 128,
    width: int = 16,
    num_blocks: int = 3,
    seed: int | None = 0,
) -> SequentialNetwork:
    """Build the small CNN backbone used by the workload example pipelines.

    The paper's workloads use ResNet-style perception front-ends; the shape
    of the compute (stacked conv/BN/ReLU blocks with spatial downsampling
    followed by a GEMM head) is what matters for the hardware analysis, so
    the builder exposes depth/width knobs rather than replicating an exact
    architecture.
    """
    if image_size // (2**num_blocks) < 1:
        raise DimensionMismatchError(
            f"image_size {image_size} too small for {num_blocks} pooling stages"
        )
    layers: list[Layer] = []
    in_channels = input_channels
    channels = width
    spatial = image_size
    for block in range(num_blocks):
        layers.append(
            Conv2d(
                f"{name}_conv{block}",
                in_channels,
                channels,
                kernel_size=3,
                stride=1,
                padding=1,
                seed=None if seed is None else seed + block,
            )
        )
        layers.append(BatchNorm(f"{name}_bn{block}", channels))
        layers.append(ReLU(f"{name}_relu{block}"))
        layers.append(MaxPool2d(f"{name}_pool{block}", pool_size=2))
        in_channels = channels
        channels *= 2
        spatial //= 2
    layers.append(Flatten(f"{name}_flatten"))
    flat_features = in_channels * spatial * spatial
    layers.append(
        Linear(
            f"{name}_head",
            flat_features,
            embedding_dim,
            seed=None if seed is None else seed + 100,
        )
    )
    return SequentialNetwork(name, layers)
