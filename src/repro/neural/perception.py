"""Perception simulator: the documented substitute for the trained CNN.

The paper's pipelines run a trained ResNet-style network over RAVEN/PGM
panel images and obtain, for each panel, probability mass functions (PMFs)
over the symbolic attribute values (type, size, color, ...), or equivalently
a VSA query vector.  Training such a network is outside the scope of an
offline reproduction, so this module models the *output statistics* of that
front-end instead: given the ground-truth attributes of a panel it emits a
PMF that puts most probability on the true value and spreads a configurable
amount of confusion over the remaining values.  Downstream components (the
factorizer, the probabilistic abduction engine, the schedulers and hardware
models) are exercised exactly as they would be by a real perception network.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.symbolic.attributes import AttributePMF
from repro.vsa.encoding import SceneEncoder

__all__ = ["PerceptionConfig", "PerceptionSimulator"]


@dataclass(frozen=True)
class PerceptionConfig:
    """Noise model of the simulated perception front-end.

    Attributes
    ----------
    error_rate:
        Probability mass assigned to *incorrect* attribute values, spread
        uniformly over them.  0.0 reproduces a perfect perception module.
    confusion_concentration:
        Optional extra mass placed on the values adjacent to the true one
        (ordinal attributes such as size are typically confused with their
        neighbours rather than uniformly).
    seed:
        Seed for the simulator's random generator (sampled mis-detections).
    """

    error_rate: float = 0.05
    confusion_concentration: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise WorkloadError(f"error_rate must be in [0, 1), got {self.error_rate}")
        if not 0.0 <= self.confusion_concentration <= 1.0:
            raise WorkloadError(
                "confusion_concentration must be in [0, 1], got "
                f"{self.confusion_concentration}"
            )


class PerceptionSimulator:
    """Produce attribute PMFs (and query vectors) from ground-truth panels."""

    def __init__(
        self,
        attribute_domains: Mapping[str, Sequence[str]],
        config: PerceptionConfig | None = None,
        encoder: SceneEncoder | None = None,
    ) -> None:
        if not attribute_domains:
            raise WorkloadError("attribute_domains must not be empty")
        self.attribute_domains = {
            name: list(values) for name, values in attribute_domains.items()
        }
        for name, values in self.attribute_domains.items():
            if not values:
                raise WorkloadError(f"attribute '{name}' has an empty value domain")
        self.config = config or PerceptionConfig()
        self.encoder = encoder
        self._rng = np.random.default_rng(self.config.seed)

    # -- PMF interface ---------------------------------------------------------
    def perceive_attribute(self, name: str, true_value: str) -> AttributePMF:
        """Return a noisy PMF over the values of attribute ``name``."""
        values = self._domain(name)
        if true_value not in values:
            raise WorkloadError(
                f"value '{true_value}' is not in the domain of attribute '{name}'"
            )
        size = len(values)
        probabilities = np.zeros(size)
        true_index = values.index(true_value)
        error = self.config.error_rate if size > 1 else 0.0
        probabilities[true_index] = 1.0 - error
        if error > 0:
            neighbour_mass = error * self.config.confusion_concentration
            uniform_mass = error - neighbour_mass
            others = [i for i in range(size) if i != true_index]
            probabilities[others] += uniform_mass / len(others)
            neighbours = [i for i in (true_index - 1, true_index + 1) if 0 <= i < size]
            if neighbours:
                probabilities[neighbours] += neighbour_mass / len(neighbours)
            else:
                probabilities[true_index] += neighbour_mass
        return AttributePMF(
            name=name,
            values=tuple(values),
            probabilities=probabilities / probabilities.sum(),
        )

    def perceive_panel(self, attributes: Mapping[str, str]) -> dict[str, AttributePMF]:
        """Return PMFs for every attribute of one panel."""
        return {
            name: self.perceive_attribute(name, value)
            for name, value in attributes.items()
        }

    def sample_misperceived_panel(self, attributes: Mapping[str, str]) -> dict[str, str]:
        """Sample a concrete (possibly wrong) detection for every attribute."""
        sampled = {}
        for name, value in attributes.items():
            pmf = self.perceive_attribute(name, value)
            sampled[name] = str(self._rng.choice(pmf.values, p=pmf.probabilities))
        return sampled

    # -- VSA interface ------------------------------------------------------------
    def query_vector(self, attributes: Mapping[str, str], noise_std: float = 0.1) -> np.ndarray:
        """Encode a panel into a (noisy) VSA query vector.

        Requires the simulator to have been built with a ``SceneEncoder``.
        """
        if self.encoder is None:
            raise WorkloadError("query_vector requires a SceneEncoder")
        return self.encoder.encode_with_noise([dict(attributes)], noise_std, rng=self._rng)

    # -- internals ------------------------------------------------------------------
    def _domain(self, name: str) -> list[str]:
        try:
            return self.attribute_domains[name]
        except KeyError as exc:
            raise WorkloadError(f"unknown attribute '{name}'") from exc
