"""Neural substrate: numpy layers, small CNN backbones, perception simulation.

The neural half of a neurosymbolic workload is dominated by GEMM and
convolution kernels.  This subpackage provides:

* :mod:`repro.neural.layers` — numpy forward implementations of the layer
  types the paper's workloads use (convolution, linear, batch-norm, ReLU,
  pooling, softmax), each reporting its FLOPs, parameter count and memory
  traffic so the workload models and hardware simulator can consume them.
* :mod:`repro.neural.network` — a sequential container plus builders for the
  perception backbones used by the NVSA/MIMONet/LVRF/PrAE workload models.
* :mod:`repro.neural.perception` — the perception *simulator* that replaces
  the paper's trained CNN front-end: it converts ground-truth panel
  attributes into noisy probability mass functions (and optionally VSA query
  vectors), preserving the statistical behaviour the symbolic stages see.
"""

from repro.neural.layers import (
    BatchNorm,
    Conv2d,
    Flatten,
    Layer,
    LayerStats,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.neural.network import NetworkStats, SequentialNetwork, build_perception_backbone
from repro.neural.perception import PerceptionConfig, PerceptionSimulator

__all__ = [
    "Layer",
    "LayerStats",
    "Conv2d",
    "Linear",
    "BatchNorm",
    "ReLU",
    "MaxPool2d",
    "Softmax",
    "Flatten",
    "SequentialNetwork",
    "NetworkStats",
    "build_perception_backbone",
    "PerceptionSimulator",
    "PerceptionConfig",
]
