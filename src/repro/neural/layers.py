"""Numpy neural network layers with cost accounting.

Each layer implements a functional ``forward`` (enough to run the example
pipelines end to end) and reports a :class:`LayerStats` record describing
its compute and memory behaviour.  Those records are what the workload
models (``repro.workloads``) and the hardware simulator consume, so the cost
model is attached to the same objects that produce numerical outputs.

All activations use ``NCHW``-style shapes without the batch dimension:
convolutional layers take ``(channels, height, width)`` and linear layers
take flat ``(features,)`` vectors.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "LayerStats",
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm",
    "ReLU",
    "MaxPool2d",
    "Softmax",
    "Flatten",
]


@dataclass(frozen=True)
class LayerStats:
    """Compute/memory characteristics of one layer at a given input shape."""

    name: str
    kind: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    flops: int
    params: int

    def activation_bytes(self, element_bytes: int = 4) -> int:
        """Bytes of input plus output activations."""
        input_elements = int(np.prod(self.input_shape))
        output_elements = int(np.prod(self.output_shape))
        return (input_elements + output_elements) * element_bytes

    def weight_bytes(self, element_bytes: int = 4) -> int:
        """Bytes of parameters."""
        return self.params * element_bytes

    def total_bytes(self, element_bytes: int = 4) -> int:
        """Total data movement estimate (activations + weights)."""
        return self.activation_bytes(element_bytes) + self.weight_bytes(element_bytes)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of traffic — the roofline x-axis."""
        total = self.total_bytes()
        return self.flops / total if total else 0.0


class Layer(abc.ABC):
    """Base class for all layers."""

    #: short kind tag used by the workload models ("conv", "gemm", ...)
    kind: str = "generic"

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def forward(self, activations: np.ndarray) -> np.ndarray:
        """Apply the layer to an input activation tensor."""

    @abc.abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape produced for a given input shape."""

    @abc.abstractmethod
    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Multiply-accumulate and element-wise FLOPs for one forward pass."""

    def params(self) -> int:
        """Number of learnable parameters (0 unless overridden)."""
        return 0

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        """Build the :class:`LayerStats` record for ``input_shape``."""
        return LayerStats(
            name=self.name,
            kind=self.kind,
            input_shape=tuple(input_shape),
            output_shape=self.output_shape(tuple(input_shape)),
            flops=self.flops(tuple(input_shape)),
            params=self.params(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def _check_chw(shape: tuple[int, ...], layer_name: str) -> tuple[int, int, int]:
    if len(shape) != 3:
        raise DimensionMismatchError(
            f"layer '{layer_name}' expects a (C, H, W) input, got shape {shape}"
        )
    return shape


class Conv2d(Layer):
    """2-D convolution with square kernels, stride and zero padding."""

    kind = "conv"

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        seed: int | None = None,
    ) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise DimensionMismatchError(
                f"invalid Conv2d configuration for '{name}': "
                f"in={in_channels}, out={out_channels}, k={kernel_size}, "
                f"stride={stride}, padding={padding}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(in_channels * kernel_size * kernel_size)
        self.weights = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)

    def _spatial_output(self, size: int) -> int:
        return (size + 2 * self.padding - self.kernel_size) // self.stride + 1

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = _check_chw(input_shape, self.name)
        if channels != self.in_channels:
            raise DimensionMismatchError(
                f"layer '{self.name}' expects {self.in_channels} channels, got {channels}"
            )
        return (self.out_channels, self._spatial_output(height), self._spatial_output(width))

    def flops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        macs = (
            self.out_channels
            * out_h
            * out_w
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )
        return 2 * macs

    def params(self) -> int:
        return int(self.weights.size + self.bias.size)

    def forward(self, activations: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.float64)
        out_channels, out_h, out_w = self.output_shape(activations.shape)
        padded = np.pad(
            activations,
            ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
        )
        output = np.empty((out_channels, out_h, out_w))
        k = self.kernel_size
        for row in range(out_h):
            for col in range(out_w):
                r0 = row * self.stride
                c0 = col * self.stride
                patch = padded[:, r0 : r0 + k, c0 : c0 + k]
                output[:, row, col] = (
                    np.tensordot(self.weights, patch, axes=([1, 2, 3], [0, 1, 2]))
                    + self.bias
                )
        return output


class Linear(Layer):
    """Fully connected (GEMM) layer."""

    kind = "gemm"

    def __init__(self, name: str, in_features: int, out_features: int, seed: int | None = None) -> None:
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise DimensionMismatchError(
                f"invalid Linear configuration for '{name}': "
                f"in={in_features}, out={out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 1.0 / np.sqrt(in_features), size=(out_features, in_features))
        self.bias = np.zeros(out_features)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if int(np.prod(input_shape)) != self.in_features:
            raise DimensionMismatchError(
                f"layer '{self.name}' expects {self.in_features} inputs, "
                f"got shape {input_shape}"
            )
        return (self.out_features,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        self.output_shape(input_shape)
        return 2 * self.in_features * self.out_features

    def params(self) -> int:
        return int(self.weights.size + self.bias.size)

    def forward(self, activations: np.ndarray) -> np.ndarray:
        flat = np.asarray(activations, dtype=np.float64).reshape(-1)
        self.output_shape(flat.shape)
        return self.weights @ flat + self.bias


class BatchNorm(Layer):
    """Inference-time batch normalisation over the channel axis."""

    kind = "elementwise"

    def __init__(self, name: str, channels: int, epsilon: float = 1e-5) -> None:
        super().__init__(name)
        if channels < 1:
            raise DimensionMismatchError(f"channels must be positive, got {channels}")
        self.channels = channels
        self.epsilon = epsilon
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels = input_shape[0]
        if channels != self.channels:
            raise DimensionMismatchError(
                f"layer '{self.name}' expects {self.channels} channels, got {channels}"
            )
        return tuple(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        self.output_shape(input_shape)
        return 4 * int(np.prod(input_shape))

    def params(self) -> int:
        return 2 * self.channels

    def forward(self, activations: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.float64)
        self.output_shape(activations.shape)
        shape = (self.channels,) + (1,) * (activations.ndim - 1)
        mean = self.running_mean.reshape(shape)
        var = self.running_var.reshape(shape)
        gamma = self.gamma.reshape(shape)
        beta = self.beta.reshape(shape)
        return gamma * (activations - mean) / np.sqrt(var + self.epsilon) + beta


class ReLU(Layer):
    """Rectified linear activation."""

    kind = "elementwise"

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))

    def forward(self, activations: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(activations, dtype=np.float64), 0.0)


class MaxPool2d(Layer):
    """Non-overlapping max pooling over square windows."""

    kind = "elementwise"

    def __init__(self, name: str, pool_size: int = 2) -> None:
        super().__init__(name)
        if pool_size < 1:
            raise DimensionMismatchError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        channels, height, width = _check_chw(input_shape, self.name)
        return (channels, height // self.pool_size, width // self.pool_size)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        out = self.output_shape(input_shape)
        return int(np.prod(out)) * self.pool_size * self.pool_size

    def forward(self, activations: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.float64)
        channels, out_h, out_w = self.output_shape(activations.shape)
        p = self.pool_size
        trimmed = activations[:, : out_h * p, : out_w * p]
        reshaped = trimmed.reshape(channels, out_h, p, out_w, p)
        return reshaped.max(axis=(2, 4))


class Softmax(Layer):
    """Numerically stable softmax over the last axis."""

    kind = "elementwise"

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 5 * int(np.prod(input_shape))

    def forward(self, activations: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.float64)
        shifted = activations - activations.max(axis=-1, keepdims=True)
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum(axis=-1, keepdims=True)


class Flatten(Layer):
    """Flatten any input tensor into a vector."""

    kind = "elementwise"

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 0

    def forward(self, activations: np.ndarray) -> np.ndarray:
        return np.asarray(activations, dtype=np.float64).reshape(-1)
