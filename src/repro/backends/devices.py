"""Backend adapters for the baseline device models.

The roofline/efficiency device models (:class:`~repro.hardware.baselines.
GenericDevice`) and the systolic ML-accelerator baselines
(:class:`~repro.hardware.baselines.SystolicAcceleratorDevice`) execute a
workload as a strict sequential sweep over its kernels — that loop lives
here, and the legacy ``DeviceModel.workload_time`` entry point now
delegates to this backend.
"""

from __future__ import annotations

from repro.backends.base import Backend, ExecutionReport
from repro.hardware.baselines import DeviceModel, SystolicAcceleratorDevice
from repro.workloads.base import KernelOp, Stage, Workload

__all__ = ["DeviceBackend"]


class DeviceBackend(Backend):
    """Unified-protocol wrapper around one baseline :class:`DeviceModel`."""

    schedulers = ("sequential",)

    def __init__(self, model: DeviceModel) -> None:
        self.model = model
        self.name = model.name
        self.power_watts = model.power_watts
        self.family = (
            "ml_accelerator"
            if isinstance(model, SystolicAcceleratorDevice)
            else "device"
        )

    def kernel_time(self, kernel: KernelOp) -> float:
        """Seconds one kernel takes on the wrapped device model."""
        return self.model.kernel_time(kernel)

    def execute(
        self, workload: Workload, scheduler: str | None = None
    ) -> ExecutionReport:
        """Execute the workload's kernels sequentially (no overlap)."""
        resolved = self.resolve_scheduler(scheduler)
        kernel_seconds: dict[str, float] = {}
        neural = 0.0
        symbolic = 0.0
        for kernel in workload.topological_order():
            seconds = self.model.kernel_time(kernel)
            kernel_seconds[kernel.name] = seconds
            if kernel.stage is Stage.NEURAL:
                neural += seconds
            else:
                symbolic += seconds
        total = neural + symbolic
        return ExecutionReport(
            backend=self.name,
            workload=workload.name,
            total_seconds=total,
            neural_seconds=neural,
            symbolic_seconds=symbolic,
            kernel_seconds=kernel_seconds,
            energy_joules=total * self.power_watts,
            scheduler=resolved,
        )
