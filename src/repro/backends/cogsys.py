"""Backend adapter for the CogSys cycle-level accelerator model.

The end-to-end schedule-and-summarize logic that used to live in
``CogSysAccelerator.simulate`` is implemented here; the legacy method now
delegates to this backend so there is exactly one code path producing
CogSys timings.
"""

from __future__ import annotations

from repro.hardware.accelerator import CogSysAccelerator
from repro.backends.base import Backend, ExecutionReport
from repro.scheduler import AdaptiveScheduler, SequentialScheduler
from repro.workloads.base import KernelOp, Stage, Workload

__all__ = ["CogSysBackend"]


class CogSysBackend(Backend):
    """Unified-protocol wrapper around one :class:`CogSysAccelerator`."""

    family = "cogsys"
    schedulers = ("adaptive", "sequential")

    def __init__(
        self, accelerator: CogSysAccelerator | None = None, name: str | None = None
    ) -> None:
        self.accelerator = accelerator or CogSysAccelerator()
        self.name = name or self.accelerator.name
        self.power_watts = self.accelerator.power_watts

    @property
    def symbolic_friendly(self) -> bool:
        """Native symbolic support requires the reconfigurable nsPE mode."""
        return self.accelerator.reconfigurable_symbolic

    def kernel_time(self, kernel: KernelOp) -> float:
        """Seconds one kernel takes on the cycle model."""
        return self.accelerator.kernel_time(kernel)

    def execute(
        self, workload: Workload, scheduler: str | None = None
    ) -> ExecutionReport:
        """Schedule ``workload`` on the cycle model and summarize it."""
        resolved = self.resolve_scheduler(scheduler)
        accelerator = self.accelerator
        if resolved == "adaptive":
            engine = AdaptiveScheduler(
                accelerator.kernel_cycles, accelerator.config.num_cells
            )
        else:
            engine = SequentialScheduler(
                accelerator.kernel_cycles, accelerator.config.num_cells
            )
        schedule = engine.schedule(workload)
        config = accelerator.config
        total_seconds = config.cycles_to_seconds(schedule.total_cycles)
        neural_seconds = config.cycles_to_seconds(schedule.stage_cycles(Stage.NEURAL))
        symbolic_seconds = config.cycles_to_seconds(
            schedule.stage_cycles(Stage.SYMBOLIC)
        )
        kernel_seconds = {
            entry.name: config.cycles_to_seconds(entry.duration)
            for entry in schedule.entries
        }
        return ExecutionReport(
            backend=self.name,
            workload=workload.name,
            total_seconds=total_seconds,
            neural_seconds=neural_seconds,
            symbolic_seconds=symbolic_seconds,
            kernel_seconds=kernel_seconds,
            energy_joules=self.power_watts * total_seconds,
            scheduler=resolved,
            total_cycles=schedule.total_cycles,
            array_occupancy=schedule.array_occupancy,
            schedule=schedule,
        )
