"""The execution protocol every hardware target implements.

A *backend* is one simulated execution resource — the CogSys accelerator,
a GPU/CPU/edge device, or a TPU-like systolic baseline — behind a single
interface:

* :meth:`Backend.kernel_time` — seconds for one kernel,
* :meth:`Backend.execute` — an end-to-end :class:`ExecutionReport` for a
  workload graph under an optional scheduler,
* :meth:`Backend.batched` — vectorized reports over batch-size variants of
  a registered workload (the serving layer's service-time oracle).

:class:`ExecutionReport` subsumes the historical ``CogSysReport`` and
``DeviceReport`` shapes: the shared fields (total/neural/symbolic seconds,
per-kernel seconds, energy) are always populated, while cycle-model-only
fields (``total_cycles``, ``array_occupancy``, ``schedule``) stay ``None``
for roofline-style device backends.

This module is intentionally dependency-light (stdlib + ``repro.errors``
only) so the legacy report types in :mod:`repro.hardware` can share
:class:`SymbolicFractionMixin` without an import cycle.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.scheduler import ScheduleResult
    from repro.workloads.base import KernelOp, Workload

__all__ = ["SymbolicFractionMixin", "ExecutionReport", "Backend"]


class SymbolicFractionMixin:
    """Shared ``symbolic_fraction`` property of every execution report.

    The fraction is computed over the *stage-summed* runtime
    (``neural_seconds + symbolic_seconds``): on backends whose scheduler
    overlaps stages the end-to-end total can be smaller than the stage sum,
    and on sequential device models the two denominators coincide exactly.
    """

    neural_seconds: float
    symbolic_seconds: float

    @property
    def symbolic_fraction(self) -> float:
        """Fraction of (stage-summed) runtime spent in symbolic kernels."""
        stage_total = self.neural_seconds + self.symbolic_seconds
        return self.symbolic_seconds / stage_total if stage_total else 0.0


@dataclass(frozen=True)
class ExecutionReport(SymbolicFractionMixin):
    """End-to-end execution summary of one workload on one backend."""

    backend: str
    workload: str
    total_seconds: float
    neural_seconds: float
    symbolic_seconds: float
    kernel_seconds: dict[str, float] = field(default_factory=dict)
    energy_joules: float = 0.0
    scheduler: str | None = None
    #: cycle-model backends only
    total_cycles: int | None = None
    array_occupancy: float | None = None
    schedule: "ScheduleResult | None" = None

    @property
    def device(self) -> str:
        """Legacy alias of :attr:`backend` (the old ``DeviceReport`` field)."""
        return self.backend


class Backend(abc.ABC):
    """One simulated execution resource behind the unified protocol."""

    name: str
    power_watts: float
    #: presentation family used by the registry/CLI ("cogsys",
    #: "ml_accelerator" or "device")
    family: str = "device"
    #: whether the backend has native (reconfigurable) symbolic support —
    #: the signal heterogeneous-fleet affinity routing keys on
    symbolic_friendly: bool = False
    #: scheduler names :meth:`execute` accepts; the first is the default
    schedulers: tuple[str, ...] = ("sequential",)

    @property
    def default_scheduler(self) -> str:
        """Scheduler used when :meth:`execute` is called without one."""
        return self.schedulers[0]

    def supports_scheduler(self, scheduler: str) -> bool:
        """Whether :meth:`execute` accepts ``scheduler``."""
        return scheduler in self.schedulers

    def resolve_scheduler(self, scheduler: str | None) -> str:
        """``scheduler`` validated against this backend, or its default."""
        resolved = scheduler or self.default_scheduler
        if not self.supports_scheduler(resolved):
            raise BackendError(
                f"backend '{self.name}' has no scheduler '{resolved}'; "
                f"known: {list(self.schedulers)}"
            )
        return resolved

    @abc.abstractmethod
    def kernel_time(self, kernel: "KernelOp") -> float:
        """Execution time of one kernel in seconds."""

    @abc.abstractmethod
    def execute(
        self, workload: "Workload", scheduler: str | None = None
    ) -> ExecutionReport:
        """Run ``workload`` end to end and return its execution report."""

    def batched(
        self,
        workload: str,
        batch_sizes: Sequence[int],
        scheduler: str | None = None,
        **workload_params: object,
    ) -> tuple[ExecutionReport, ...]:
        """Reports for the ``num_tasks=b`` variants of a registered workload.

        ``workload`` is a workload *name* (resolved through
        :mod:`repro.workloads.registry`) because each batch size needs its
        own kernel graph; extra keyword arguments reach the workload
        builder unchanged.
        """
        from repro.workloads.registry import build_workload

        sizes = tuple(batch_sizes)
        for size in sizes:
            if size < 1:
                raise BackendError(f"batch sizes must be positive, got {size}")
        return tuple(
            self.execute(
                build_workload(workload, num_tasks=size, **workload_params),
                scheduler=scheduler,
            )
            for size in sizes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
