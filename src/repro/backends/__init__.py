"""Unified backend layer: one execution protocol for every hardware target.

Everything that can run a workload — the CogSys accelerator, its ablated
variants, the CPU/GPU/edge devices and the TPU/MTIA/Gemmini-like systolic
baselines — implements the same :class:`~repro.backends.base.Backend`
protocol and resolves through a string-keyed registry::

    from repro.backends import get_backend

    report = get_backend("cogsys").execute(workload)
    report = get_backend("a100").execute(workload)
    reports = get_backend("tpu_like").batched("nvsa", (1, 2, 4))

All reports are :class:`~repro.backends.base.ExecutionReport` instances,
so evaluation drivers, the serving fleet and the CLI no longer branch on
which hardware family they talk to.  See ``repro backends`` for the
registry listing and the top-level ``README.md`` for the how-to.

Only :mod:`repro.backends.base` is imported eagerly; the registry and its
adapters load on first use so that :mod:`repro.hardware` (which shares the
report mixin defined here) never observes a half-initialized package.
"""

from repro.backends.base import Backend, ExecutionReport, SymbolicFractionMixin

__all__ = [
    "Backend",
    "ExecutionReport",
    "SymbolicFractionMixin",
    "BackendInfo",
    "CustomSpec",
    "ExecutionCache",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_info",
    "describe_backend",
    "describe_backends",
    "is_symbolic_friendly",
]

#: lazily resolved attribute -> defining submodule (PEP 562)
_LAZY_ATTRS = {
    "BackendInfo": "repro.backends.registry",
    "CustomSpec": "repro.backends.registry",
    "register_backend": "repro.backends.registry",
    "get_backend": "repro.backends.registry",
    "backend_names": "repro.backends.registry",
    "backend_info": "repro.backends.registry",
    "describe_backend": "repro.backends.registry",
    "describe_backends": "repro.backends.registry",
    "is_symbolic_friendly": "repro.backends.registry",
    "ExecutionCache": "repro.backends.cache",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.backends' has no attribute '{name}'")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
