"""Memoized per-``(workload, batch)`` execution reports for one backend.

Hoisted out of the serving fleet so any layer can reuse it: the expensive
part of answering "how long does a batch of ``b`` requests take on backend
``X``" is building the kernel graph and scheduling it once — afterwards
every lookup is a dictionary hit, which is what keeps full load sweeps and
serving scenario matrices fast.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.backends.base import Backend, ExecutionReport
from repro.backends.registry import CustomSpec, get_backend
from repro.errors import BackendError
from repro.workloads.registry import build_workload

__all__ = ["ExecutionCache"]


class ExecutionCache:
    """Memoized ``(workload name, batch size) -> ExecutionReport`` oracle."""

    def __init__(
        self,
        backend: Backend | CustomSpec | str = "cogsys",
        scheduler: str | None = None,
        workload_params: Mapping[str, Mapping[str, object]] | None = None,
    ) -> None:
        self.backend = (
            backend if isinstance(backend, Backend) else get_backend(backend)
        )
        # Resolve (and validate) the scheduler up front so an unsupported
        # override fails at construction, not mid-simulation.
        self.scheduler = self.backend.resolve_scheduler(scheduler)
        self.workload_params = {
            name: dict(params) for name, params in (workload_params or {}).items()
        }
        self._reports: dict[tuple[str, int], ExecutionReport] = {}

    @property
    def backend_name(self) -> str:
        """Name of the backend this cache answers for."""
        return self.backend.name

    def report(self, workload: str, batch_size: int) -> ExecutionReport:
        """The backend report for a batch, computed once and memoized."""
        if batch_size < 1:
            raise BackendError(f"batch_size must be positive, got {batch_size}")
        key = (workload, batch_size)
        if key not in self._reports:
            graph = build_workload(
                workload,
                num_tasks=batch_size,
                **self.workload_params.get(workload, {}),
            )
            self._reports[key] = self.backend.execute(graph, scheduler=self.scheduler)
        return self._reports[key]

    def service_seconds(self, workload: str, batch_size: int) -> float:
        """Chip-occupancy seconds for one batch."""
        return self.report(workload, batch_size).total_seconds

    def energy_joules(self, workload: str, batch_size: int) -> float:
        """Energy one batch costs on the backend."""
        return self.report(workload, batch_size).energy_joules

    @property
    def cached_reports(self) -> int:
        """Number of distinct ``(workload, batch)`` executions performed."""
        return len(self._reports)
