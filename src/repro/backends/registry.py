"""String-keyed backend registry and the ``CustomSpec`` escape hatch.

Every simulated execution target is resolvable by name::

    from repro.backends import get_backend

    get_backend("cogsys").execute(workload)          # cycle model, adSCH
    get_backend("a100").execute(workload)            # roofline GPU model
    get_backend("tpu_like").batched("nvsa", (1, 4))  # systolic baseline

Built-ins cover the paper's full comparison matrix: the CogSys accelerator
(plus its Fig. 19 ablations), the CPU/GPU/edge devices of Tab. I and the
TPU/MTIA/Gemmini-like systolic baselines of Tab. VI.  One-off targets that
should not pollute the global namespace go through :class:`CustomSpec`,
which ``get_backend`` accepts in place of a name.

Unknown names raise :class:`repro.errors.BackendError` (never ``KeyError``)
and the listing order is deterministic (sorted by name).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.backends.base import Backend
from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.hardware.baselines import AcceleratorSpec, DeviceSpec
    from repro.hardware.config import CogSysConfig

__all__ = [
    "BackendInfo",
    "CustomSpec",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_info",
    "describe_backend",
    "describe_backends",
    "is_symbolic_friendly",
]


@dataclass(frozen=True)
class BackendInfo:
    """Registry metadata of one backend (resolvable without building it).

    The presentation fields (``power_watts``, ``schedulers``) are captured
    from one probe instance at registration so listings never need to
    construct backends.
    """

    name: str
    family: str
    description: str
    symbolic_friendly: bool
    factory: Callable[[], Backend]
    power_watts: float = 0.0
    schedulers: tuple[str, ...] = ("sequential",)


#: backend name -> metadata + factory; populated lazily so importing this
#: module never races the (partially initialized) hardware package.
_REGISTRY: dict[str, BackendInfo] | None = None


def _probe_info(
    name: str,
    factory: Callable[[], Backend],
    description: str,
    symbolic_friendly: bool | None = None,
    family: str | None = None,
) -> BackendInfo:
    """Build one probe instance and capture its metadata for the registry."""
    probe = factory()
    return BackendInfo(
        name=name,
        family=family if family is not None else probe.family,
        description=description,
        symbolic_friendly=(
            probe.symbolic_friendly
            if symbolic_friendly is None
            else symbolic_friendly
        ),
        factory=factory,
        power_watts=probe.power_watts,
        schedulers=probe.schedulers,
    )


def _builtin_backends() -> dict[str, BackendInfo]:
    """Build the registry rows of the 13 built-in backends."""
    from repro.backends.cogsys import CogSysBackend
    from repro.backends.devices import DeviceBackend
    from repro.hardware.accelerator import CogSysAccelerator
    from repro.hardware.baselines import (
        ACCELERATOR_SPECS,
        DEVICE_SPECS,
        GenericDevice,
        SystolicAcceleratorDevice,
    )

    registry: dict[str, BackendInfo] = {}

    def device_factory(spec):
        return lambda: DeviceBackend(GenericDevice(spec))

    def accelerator_factory(spec):
        return lambda: DeviceBackend(SystolicAcceleratorDevice(spec))

    for spec in DEVICE_SPECS.values():
        registry[spec.name] = _probe_info(
            spec.name,
            device_factory(spec),
            description=(
                f"roofline CPU/GPU/edge model ({spec.peak_flops / 1e12:.2g} "
                f"TFLOPS peak, {spec.power_watts:g} W)"
            ),
        )
    for spec in ACCELERATOR_SPECS.values():
        registry[spec.name] = _probe_info(
            spec.name,
            accelerator_factory(spec),
            description=(
                f"systolic ML accelerator ({spec.num_cells}x "
                f"{spec.cell_rows}x{spec.cell_cols} cells, GEMV-lowered "
                "circular convolution)"
            ),
        )
    registry["cogsys"] = _probe_info(
        "cogsys",
        lambda: CogSysBackend(),
        description="full CogSys accelerator (nsPE + scale-out + adSCH)",
    )
    registry["cogsys_no_scaleout"] = _probe_info(
        "cogsys_no_scaleout",
        lambda: CogSysBackend(
            CogSysAccelerator(scale_out=False), name="cogsys_no_scaleout"
        ),
        description="Fig. 19 ablation: cells fused into one monolithic array",
    )
    registry["cogsys_no_nspe"] = _probe_info(
        "cogsys_no_nspe",
        lambda: CogSysBackend(
            CogSysAccelerator(scale_out=False, reconfigurable_symbolic=False),
            name="cogsys_no_nspe",
        ),
        description=(
            "Fig. 19 ablation: no reconfigurable symbolic mode (GEMV "
            "lowering on a monolithic array)"
        ),
    )
    return registry


def _registry() -> dict[str, BackendInfo]:
    """The lazily initialized backend registry (built on first access)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _builtin_backends()
    return _REGISTRY


@dataclass(frozen=True)
class CustomSpec:
    """Escape hatch: a backend built from raw spec objects, no registration.

    Exactly one hardware description may be supplied:

    * ``device_spec`` — a :class:`~repro.hardware.baselines.DeviceSpec`
      (roofline CPU/GPU/edge model),
    * ``accelerator_spec`` — an
      :class:`~repro.hardware.baselines.AcceleratorSpec` (systolic baseline),
    * ``cogsys_config`` — a :class:`~repro.hardware.config.CogSysConfig`
      (CogSys cycle model; also the default when nothing is supplied, with
      ``reconfigurable_symbolic``/``scale_out`` selecting the ablations).
    """

    name: str
    device_spec: "DeviceSpec | None" = None
    accelerator_spec: "AcceleratorSpec | None" = None
    cogsys_config: "CogSysConfig | None" = None
    reconfigurable_symbolic: bool = True
    scale_out: bool = True

    def build(self) -> Backend:
        """Instantiate the described backend."""
        from repro.backends.cogsys import CogSysBackend
        from repro.backends.devices import DeviceBackend
        from repro.hardware.accelerator import CogSysAccelerator
        from repro.hardware.baselines import GenericDevice, SystolicAcceleratorDevice

        if not self.name:
            raise BackendError("CustomSpec needs a non-empty name")
        supplied = [
            spec
            for spec in (self.device_spec, self.accelerator_spec, self.cogsys_config)
            if spec is not None
        ]
        if len(supplied) > 1:
            raise BackendError(
                f"CustomSpec '{self.name}' must supply at most one of "
                "device_spec, accelerator_spec or cogsys_config"
            )
        if (self.device_spec is not None or self.accelerator_spec is not None) and not (
            self.reconfigurable_symbolic and self.scale_out
        ):
            raise BackendError(
                f"CustomSpec '{self.name}': reconfigurable_symbolic/scale_out "
                "are CogSys ablation switches and do not apply to device or "
                "accelerator specs"
            )
        if self.device_spec is not None:
            backend = DeviceBackend(GenericDevice(self.device_spec))
        elif self.accelerator_spec is not None:
            backend = DeviceBackend(SystolicAcceleratorDevice(self.accelerator_spec))
        else:
            accelerator = CogSysAccelerator(
                config=self.cogsys_config,
                reconfigurable_symbolic=self.reconfigurable_symbolic,
                scale_out=self.scale_out,
            )
            backend = CogSysBackend(accelerator)
        backend.name = self.name
        return backend


def register_backend(
    name: str,
    factory: Callable[[], Backend],
    *,
    family: str | None = None,
    description: str = "",
    symbolic_friendly: bool | None = None,
    replace: bool = False,
) -> BackendInfo:
    """Add a backend factory to the registry under ``name``.

    ``symbolic_friendly`` is the registry's source of truth — affinity
    routing and the CLI listing both read it.  When omitted it is taken
    from a probe instance built by ``factory`` (which also captures the
    listing metadata) so the registry cannot disagree with the backend's
    own properties.
    """
    if not name:
        raise BackendError("backend name must be non-empty")
    registry = _registry()
    if name in registry and not replace:
        raise BackendError(f"backend '{name}' is already registered")
    info = _probe_info(
        name,
        factory,
        description=description,
        symbolic_friendly=symbolic_friendly,
        family=family,
    )
    registry[name] = info
    return info


def backend_info(name: str) -> BackendInfo:
    """Registry metadata for ``name`` or a typed error listing known names."""
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        raise BackendError(
            f"unknown backend '{name}'; known backends: {list(backend_names())}"
        ) from None


def get_backend(name: str | CustomSpec) -> Backend:
    """Resolve a backend by registry name (or build a :class:`CustomSpec`).

    The backend a registered factory returns is handed back as built —
    its name is the factory's responsibility (every built-in names itself
    after its registry key).
    """
    if isinstance(name, CustomSpec):
        return name.build()
    if not isinstance(name, str):
        raise BackendError(
            f"get_backend expects a name or CustomSpec, got {type(name).__name__}"
        )
    return backend_info(name).factory()


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, sorted (deterministic listing order)."""
    return tuple(sorted(_registry()))


def is_symbolic_friendly(name: str) -> bool:
    """Whether ``name`` has native symbolic support (no backend is built)."""
    return backend_info(name).symbolic_friendly


def describe_backend(name: str) -> dict:
    """JSON-clean description of one registered backend.

    Served from the registry metadata captured at registration time (each
    factory is probe-built exactly once, when it enters the registry), so
    repeated listings construct nothing and ``symbolic_friendly`` is
    exactly the answer affinity routing will act on.
    """
    info = backend_info(name)
    return {
        "name": info.name,
        "family": info.family,
        "symbolic_friendly": info.symbolic_friendly,
        "power_watts": round(info.power_watts, 3),
        "schedulers": list(info.schedulers),
        "description": info.description,
    }


def describe_backends() -> list[dict]:
    """JSON-clean rows describing every registered backend, sorted by name."""
    return [describe_backend(name) for name in backend_names()]
