"""Iterative symbolic codebook factorization (the paper's Sec. IV-A).

Given an entangled query hypervector ``q`` produced by the neural front-end
and the per-factor codebooks ``X_1 .. X_F``, the factorizer recovers the one
codevector per factor whose binding best explains ``q`` — without ever
materialising the ``M_1 * ... * M_F`` product codebook.  Each iteration runs
the paper's three steps per factor:

1. *Factor unbinding*: remove the current estimates of all other factors
   from ``q``.
2. *Similarity search*: compare the unbound estimate against the factor's
   codebook (a matrix-vector product).
3. *Factor projection*: form the next estimate as the similarity-weighted
   combination of the codevectors, then project back onto the code manifold
   (``sign`` for bipolar spaces).

Stochasticity (``repro.core.stochastic``) can be injected into steps 2 and 3
to escape limit cycles.  When an attempt settles into a low-confidence fixed
point (the reconstructed product no longer resembles the query), the
factorizer restarts from a perturbed superposition, which is the interactive
search behaviour the paper relies on for accuracy.  The loop records an
operation count so the workload and hardware models can translate
factorization into kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceTracker
from repro.core.stochastic import NoiseSchedule, NoNoise
from repro.errors import FactorizationError
from repro.vsa.codebook import CodebookSet, ProductCodebook

__all__ = [
    "FactorizerConfig",
    "OperationCount",
    "FactorizationResult",
    "Factorizer",
    "ExhaustiveFactorizer",
]


@dataclass
class FactorizerConfig:
    """Tunable parameters of the iterative factorizer.

    Attributes
    ----------
    max_iterations:
        Hard cap on the number of unbind/search/project sweeps per attempt.
    convergence_patience:
        Number of consecutive identical decodings required to declare
        convergence (the paper's tunable convergence threshold).
    similarity_noise / projection_noise:
        Noise schedules applied to the similarity vector (step 2) and the
        projected estimate (step 3).  Defaults to no noise.
    max_restarts:
        How many additional attempts (from perturbed initial estimates) are
        allowed when an attempt converges to a low-confidence fixed point.
    confidence_threshold:
        Minimum similarity between the reconstructed product vector and the
        query for an attempt to be accepted without restarting.
    seed:
        Seed for the factorizer's private random generator (noise, restart
        perturbations).
    """

    max_iterations: int = 50
    convergence_patience: int = 2
    similarity_noise: NoiseSchedule = field(default_factory=NoNoise)
    projection_noise: NoiseSchedule = field(default_factory=NoNoise)
    max_restarts: int = 4
    confidence_threshold: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise FactorizationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.convergence_patience < 1:
            raise FactorizationError(
                f"convergence_patience must be >= 1, got {self.convergence_patience}"
            )
        if self.max_restarts < 0:
            raise FactorizationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise FactorizationError(
                f"confidence_threshold must be in [0, 1], got {self.confidence_threshold}"
            )


@dataclass
class OperationCount:
    """Kernel-level accounting of one factorization run.

    The counts let the workload models (``repro.workloads``) and the hardware
    simulator translate a factorization into circular convolutions,
    matrix-vector products and element-wise operations.
    """

    iterations: int = 0
    unbind_ops: int = 0
    matvec_ops: int = 0
    matvec_flops: int = 0
    elementwise_flops: int = 0

    def merge(self, other: "OperationCount") -> "OperationCount":
        """Return the element-wise sum of two counts."""
        return OperationCount(
            iterations=self.iterations + other.iterations,
            unbind_ops=self.unbind_ops + other.unbind_ops,
            matvec_ops=self.matvec_ops + other.matvec_ops,
            matvec_flops=self.matvec_flops + other.matvec_flops,
            elementwise_flops=self.elementwise_flops + other.elementwise_flops,
        )

    @property
    def total_flops(self) -> int:
        """All floating point operations attributed to the run."""
        return self.matvec_flops + self.elementwise_flops


@dataclass
class FactorizationResult:
    """Outcome of factorizing one query vector."""

    labels: dict[str, str]
    indices: dict[str, int]
    similarities: dict[str, float]
    iterations: int
    converged: bool
    cycle_detected: bool
    confidence: float
    restarts: int
    operations: OperationCount

    @property
    def label_tuple(self) -> tuple[str, ...]:
        """Decoded labels in factor order (insertion order of ``labels``)."""
        return tuple(self.labels.values())

    def matches(self, expected: dict[str, str]) -> bool:
        """True when the decoding equals ``expected`` on every shared factor."""
        return all(self.labels.get(name) == value for name, value in expected.items())


@dataclass
class _Attempt:
    """Internal record of one factorization attempt."""

    decoded: list[int]
    tracker: ConvergenceTracker
    operations: OperationCount
    confidence: float


class Factorizer:
    """Resonator-style iterative factorizer over a :class:`CodebookSet`."""

    def __init__(self, codebooks: CodebookSet, config: FactorizerConfig | None = None) -> None:
        self.codebooks = codebooks
        self.space = codebooks.space
        self.config = config or FactorizerConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # -- public API -----------------------------------------------------------
    def factorize(self, query: np.ndarray) -> FactorizationResult:
        """Decompose ``query`` into one label per factor."""
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.codebooks.dim,):
            raise FactorizationError(
                f"query has shape {query.shape}, expected ({self.codebooks.dim},)"
            )

        total_ops = OperationCount()
        best: _Attempt | None = None
        restarts_used = 0
        for attempt_index in range(self.config.max_restarts + 1):
            attempt = self._run_attempt(query, perturb=attempt_index > 0)
            total_ops = total_ops.merge(attempt.operations)
            if best is None or attempt.confidence > best.confidence:
                best = attempt
            if best.confidence >= self.config.confidence_threshold:
                break
            restarts_used = attempt_index + 1
        restarts_used = min(restarts_used, self.config.max_restarts)

        return self._build_result(query, best, restarts_used, total_ops)

    def factorize_batch(self, queries: np.ndarray) -> list[FactorizationResult]:
        """Factorize each row of ``queries`` independently."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.factorize(row) for row in queries]

    # -- internals -------------------------------------------------------------
    def _run_attempt(self, query: np.ndarray, perturb: bool) -> _Attempt:
        """Run one resonator sweep sequence from (possibly perturbed) init."""
        estimates = self._initial_estimates(perturb)
        tracker = ConvergenceTracker(patience=self.config.convergence_patience)
        count = OperationCount()
        decoded = [0] * len(self.codebooks)

        for iteration in range(self.config.max_iterations):
            decoded = []
            for idx, codebook in enumerate(self.codebooks):
                unbound = self._unbind_others(query, estimates, idx)
                similarities = codebook.vectors @ unbound
                similarities = self.config.similarity_noise.apply(
                    similarities, iteration, self._rng
                )
                projected = similarities @ codebook.vectors
                projected = self.config.projection_noise.apply(
                    projected, iteration, self._rng
                )
                # In-place (Gauss-Seidel style) update: later factors in the
                # same sweep immediately benefit from this factor's refined
                # estimate, which is what makes the resonator converge fast.
                estimates[idx] = self.space.cleanup(projected)
                decoded.append(int(np.argmax(similarities)))

                count.unbind_ops += len(self.codebooks) - 1
                count.matvec_ops += 2
                count.matvec_flops += 4 * len(codebook) * self.codebooks.dim
                count.elementwise_flops += self.codebooks.dim

            count.iterations += 1
            tracker.update(decoded)
            if tracker.converged:
                break

        confidence = self._reconstruction_confidence(query, decoded)
        return _Attempt(
            decoded=decoded, tracker=tracker, operations=count, confidence=confidence
        )

    def _initial_estimates(self, perturb: bool) -> list[np.ndarray]:
        """Start every factor from the superposition of its codevectors.

        The raw (un-normalised) superposition is deliberately kept: squashing
        it through the space's cleanup would correlate the initial estimates
        across factors and create spurious attractors.  On restarts the
        superposition is perturbed with random codevector weights so the new
        attempt explores a different basin.
        """
        estimates = []
        for codebook in self.codebooks:
            if perturb:
                weights = self._rng.uniform(0.25, 1.0, size=len(codebook))
                weights *= self._rng.choice([-1.0, 1.0], size=len(codebook))
                estimates.append(weights @ codebook.vectors)
            else:
                estimates.append(codebook.vectors.sum(axis=0))
        return estimates

    def _unbind_others(
        self, query: np.ndarray, estimates: list[np.ndarray], target: int
    ) -> np.ndarray:
        """Unbind every factor estimate except ``target`` from the query."""
        unbound = query
        for idx, estimate in enumerate(estimates):
            if idx == target:
                continue
            unbound = self.space.unbind(unbound, estimate)
        return unbound

    def _reconstruction_confidence(self, query: np.ndarray, decoded: list[int]) -> float:
        """Similarity between the decoded product vector and the query."""
        vectors = np.stack(
            [cb.vectors[index] for cb, index in zip(self.codebooks, decoded)]
        )
        reconstruction = self.space.bind_all(vectors)
        return self.space.similarity(reconstruction, query)

    def _build_result(
        self,
        query: np.ndarray,
        attempt: _Attempt,
        restarts: int,
        total_ops: OperationCount,
    ) -> FactorizationResult:
        labels: dict[str, str] = {}
        indices: dict[str, int] = {}
        similarities: dict[str, float] = {}
        decoded = attempt.decoded
        for position, (codebook, index) in enumerate(zip(self.codebooks, decoded)):
            labels[codebook.name] = codebook.labels[index]
            indices[codebook.name] = index
            # Report the similarity of the decoded codevector against the
            # query with all *other* decoded factors unbound, which is the
            # confidence score the reasoning stage consumes.
            unbound = query
            for other_position, other_codebook in enumerate(self.codebooks):
                if other_position == position:
                    continue
                unbound = self.space.unbind(
                    unbound, other_codebook.vectors[decoded[other_position]]
                )
            similarities[codebook.name] = self.space.similarity(
                unbound, codebook.vectors[index]
            )
        return FactorizationResult(
            labels=labels,
            indices=indices,
            similarities=similarities,
            iterations=total_ops.iterations,
            converged=attempt.tracker.converged,
            cycle_detected=attempt.tracker.cycle_detected,
            confidence=attempt.confidence,
            restarts=restarts,
            operations=total_ops,
        )


class ExhaustiveFactorizer:
    """Baseline that searches the materialised product codebook.

    This is the approach the paper's factorization strategy replaces: it
    requires ``O(M^F)`` storage and one similarity search over every
    combination, but it is exact.  Only feasible for small factor spaces.
    """

    def __init__(self, codebooks: CodebookSet, max_combinations: int = 200_000) -> None:
        self.codebooks = codebooks
        self.product = ProductCodebook(codebooks, max_combinations=max_combinations)

    def factorize(self, query: np.ndarray) -> FactorizationResult:
        """Return the best combination by exhaustive similarity search."""
        query = np.asarray(query, dtype=np.float64)
        combo, similarity = self.product.lookup(query)
        labels = dict(zip(self.codebooks.factor_names, combo))
        indices = {
            name: self.codebooks[name].index_of(label) for name, label in labels.items()
        }
        count = OperationCount(
            iterations=1,
            matvec_ops=1,
            matvec_flops=2 * len(self.product) * self.codebooks.dim,
        )
        return FactorizationResult(
            labels=labels,
            indices=indices,
            similarities={name: similarity for name in labels},
            iterations=1,
            converged=True,
            cycle_detected=False,
            confidence=similarity,
            restarts=0,
            operations=count,
        )
