"""Convergence and limit-cycle detection for iterative factorization.

The factorizer decodes, at every iteration, one winning codevector index per
factor.  Convergence means the decoded tuple stops changing; a limit cycle
means the iteration revisits a previously decoded tuple without settling.
The paper's stochasticity injection exists precisely to escape such cycles,
so the tracker also reports whether a cycle was observed.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ConvergenceTracker"]


class ConvergenceTracker:
    """Track decoded index tuples across factorization iterations."""

    def __init__(self, patience: int = 2) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = int(patience)
        self.history: list[tuple[int, ...]] = []
        self._cycle_detected = False

    def update(self, decoded: Sequence[int]) -> None:
        """Record the decoded tuple for the current iteration."""
        state = tuple(int(i) for i in decoded)
        if state in self.history and self.history[-1] != state:
            # Revisiting an earlier, non-consecutive state is a limit cycle.
            self._cycle_detected = True
        self.history.append(state)

    @property
    def iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.history)

    @property
    def converged(self) -> bool:
        """True when the last ``patience + 1`` decoded tuples are identical."""
        needed = self.patience + 1
        if len(self.history) < needed:
            return False
        tail = self.history[-needed:]
        return all(state == tail[0] for state in tail)

    @property
    def cycle_detected(self) -> bool:
        """True if the iteration revisited an earlier, non-adjacent state."""
        return self._cycle_detected

    @property
    def final_state(self) -> tuple[int, ...] | None:
        """The most recently decoded tuple, or None before the first update."""
        return self.history[-1] if self.history else None
