"""Stochasticity injection for the factorizer.

The paper (Sec. IV-B) observes that adding Gaussian noise to the similarity
and projection steps lets the factorization escape limit cycles and converge
in fewer iterations.  The classes here encapsulate *when* and *how much*
noise to add, so the factorizer itself stays deterministic when given
:class:`NoNoise`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import FactorizationError

__all__ = ["NoiseSchedule", "NoNoise", "ConstantGaussianNoise", "AnnealedGaussianNoise"]


class NoiseSchedule(abc.ABC):
    """Strategy deciding the noise amplitude at a given iteration."""

    @abc.abstractmethod
    def std_at(self, iteration: int) -> float:
        """Noise standard deviation (relative to signal scale) at ``iteration``."""

    def apply(
        self,
        values: np.ndarray,
        iteration: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return ``values`` perturbed according to the schedule.

        The noise amplitude is expressed relative to the standard deviation of
        ``values`` so one schedule works across similarity vectors of very
        different scales.
        """
        std = self.std_at(iteration)
        if std < 0:
            raise FactorizationError(f"noise std must be non-negative, got {std}")
        if std == 0:
            return values
        scale = float(np.std(values))
        if scale == 0.0:
            scale = 1.0
        return values + rng.normal(0.0, std * scale, size=values.shape)


class NoNoise(NoiseSchedule):
    """Disable stochasticity (the deterministic baseline factorizer)."""

    def std_at(self, iteration: int) -> float:
        return 0.0


class ConstantGaussianNoise(NoiseSchedule):
    """Inject a fixed relative amount of Gaussian noise every iteration."""

    def __init__(self, std: float = 0.05) -> None:
        if std < 0:
            raise FactorizationError(f"std must be non-negative, got {std}")
        self.std = float(std)

    def std_at(self, iteration: int) -> float:
        return self.std


class AnnealedGaussianNoise(NoiseSchedule):
    """Exponentially decaying noise: strong exploration early, none late."""

    def __init__(self, initial_std: float = 0.2, decay: float = 0.9, floor: float = 0.0) -> None:
        if initial_std < 0 or floor < 0:
            raise FactorizationError("noise std values must be non-negative")
        if not 0 < decay <= 1:
            raise FactorizationError(f"decay must be in (0, 1], got {decay}")
        self.initial_std = float(initial_std)
        self.decay = float(decay)
        self.floor = float(floor)

    def std_at(self, iteration: int) -> float:
        return max(self.floor, self.initial_std * self.decay**iteration)
