"""CogSys algorithm-level contribution.

This subpackage contains the paper's algorithmic optimizations (Sec. IV):

* :mod:`repro.core.factorizer` — the iterative symbolic-codebook factorizer
  (unbind → similarity search → projection), which replaces the exhaustive
  product codebook.
* :mod:`repro.core.stochastic` — stochasticity (additive Gaussian noise)
  injection schedules that help the factorizer escape limit cycles.
* :mod:`repro.core.convergence` — convergence and limit-cycle detection.
* :mod:`repro.core.quantization` — FP32/FP8/INT8 precision emulation.
* :mod:`repro.core.footprint` — memory footprint accounting for the
  exhaustive codebook versus the factorized representation.
"""

from repro.core.convergence import ConvergenceTracker
from repro.core.factorizer import (
    ExhaustiveFactorizer,
    FactorizationResult,
    Factorizer,
    FactorizerConfig,
    OperationCount,
)
from repro.core.footprint import (
    FootprintReport,
    codebook_footprint,
    codebook_set_footprint,
    compare_footprints,
    factorizer_footprint,
)
from repro.core.quantization import (
    Precision,
    QuantizedCodebook,
    QuantizedTensor,
    dequantize,
    quantize,
)
from repro.core.stochastic import (
    AnnealedGaussianNoise,
    ConstantGaussianNoise,
    NoNoise,
    NoiseSchedule,
)

__all__ = [
    "ConvergenceTracker",
    "ExhaustiveFactorizer",
    "FactorizationResult",
    "Factorizer",
    "FactorizerConfig",
    "OperationCount",
    "FootprintReport",
    "codebook_footprint",
    "codebook_set_footprint",
    "compare_footprints",
    "factorizer_footprint",
    "Precision",
    "QuantizedCodebook",
    "QuantizedTensor",
    "dequantize",
    "quantize",
    "NoiseSchedule",
    "NoNoise",
    "ConstantGaussianNoise",
    "AnnealedGaussianNoise",
]
