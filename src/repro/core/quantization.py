"""Precision emulation: FP32, FP8 (E4M3) and INT8.

The paper (Sec. IV-B, Tab. IX) quantizes both neural and symbolic operands
to 8-bit formats to shrink memory footprint, area and power.  This module
emulates those formats in numpy so the accuracy impact can be measured by
running the real factorization/reasoning pipelines on quantized codebooks,
while ``repro.hardware.energy`` uses the same :class:`Precision` enum for
area/power accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.vsa.codebook import Codebook

__all__ = ["Precision", "QuantizedTensor", "quantize", "dequantize", "QuantizedCodebook"]


class Precision(enum.Enum):
    """Supported arithmetic precisions."""

    FP32 = "fp32"
    FP8 = "fp8"
    INT8 = "int8"

    @property
    def bytes_per_element(self) -> int:
        """Storage bytes per element for footprint accounting."""
        return 4 if self is Precision.FP32 else 1

    @classmethod
    def parse(cls, value: "Precision | str") -> "Precision":
        """Accept either a :class:`Precision` or its string value."""
        if isinstance(value, Precision):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError) as exc:
            known = ", ".join(p.value for p in cls)
            raise QuantizationError(
                f"unknown precision '{value}'; known precisions: {known}"
            ) from exc


# E4M3: 4 exponent bits (bias 7), 3 mantissa bits, max finite value 448.
_FP8_MAX = 448.0
_FP8_MANTISSA_BITS = 3
_FP8_MIN_EXPONENT = -6


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized array together with the metadata needed to dequantize it."""

    data: np.ndarray
    scale: float
    precision: Precision

    @property
    def nbytes(self) -> int:
        """Storage footprint of the quantized payload."""
        return self.data.size * self.precision.bytes_per_element

    def dequantize(self) -> np.ndarray:
        """Recover the float32-domain values."""
        return dequantize(self)


def _quantize_int8(values: np.ndarray) -> QuantizedTensor:
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    scale = max_abs / 127.0 if max_abs > 0 else 1.0
    quantized = np.clip(np.round(values / scale), -127, 127).astype(np.int8)
    return QuantizedTensor(data=quantized, scale=scale, precision=Precision.INT8)


def _round_to_fp8(values: np.ndarray) -> np.ndarray:
    """Round float values to the nearest representable E4M3 number."""
    clipped = np.clip(values, -_FP8_MAX, _FP8_MAX)
    result = np.zeros_like(clipped)
    nonzero = clipped != 0
    if not np.any(nonzero):
        return result
    magnitude = np.abs(clipped[nonzero])
    exponent = np.floor(np.log2(magnitude))
    exponent = np.maximum(exponent, _FP8_MIN_EXPONENT)
    step = np.power(2.0, exponent - _FP8_MANTISSA_BITS)
    rounded = np.round(magnitude / step) * step
    result[nonzero] = np.sign(clipped[nonzero]) * rounded
    return result


def _quantize_fp8(values: np.ndarray) -> QuantizedTensor:
    return QuantizedTensor(
        data=_round_to_fp8(values).astype(np.float32),
        scale=1.0,
        precision=Precision.FP8,
    )


def quantize(values: np.ndarray, precision: Precision | str) -> QuantizedTensor:
    """Quantize an array to the requested precision.

    FP32 is a pass-through (kept so callers can treat precision uniformly),
    INT8 uses symmetric per-tensor scaling, and FP8 rounds to the E4M3 grid.
    """
    precision = Precision.parse(precision)
    values = np.asarray(values, dtype=np.float64)
    if precision is Precision.FP32:
        return QuantizedTensor(
            data=values.astype(np.float32), scale=1.0, precision=precision
        )
    if precision is Precision.INT8:
        return _quantize_int8(values)
    return _quantize_fp8(values)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Map a quantized tensor back to float64 values."""
    if tensor.precision is Precision.INT8:
        return tensor.data.astype(np.float64) * tensor.scale
    return tensor.data.astype(np.float64)


def quantization_error(values: np.ndarray, precision: Precision | str) -> float:
    """Root-mean-square error introduced by quantizing ``values``."""
    values = np.asarray(values, dtype=np.float64)
    restored = dequantize(quantize(values, precision))
    if values.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((values - restored) ** 2)))


class QuantizedCodebook:
    """A codebook whose vectors are stored (and searched) in low precision.

    Wrapping instead of subclassing keeps the original full-precision
    codebook available for accuracy comparisons.
    """

    def __init__(self, codebook: Codebook, precision: Precision | str) -> None:
        self.precision = Precision.parse(precision)
        self.codebook = codebook
        self._quantized = quantize(codebook.vectors, self.precision)
        self.vectors = dequantize(self._quantized)

    @property
    def name(self) -> str:
        """Name of the wrapped codebook."""
        return self.codebook.name

    @property
    def labels(self) -> list[str]:
        """Labels of the wrapped codebook."""
        return self.codebook.labels

    def __len__(self) -> int:
        return len(self.codebook)

    def nbytes(self) -> int:
        """Footprint at the quantized precision."""
        return self._quantized.nbytes

    def cleanup(self, query: np.ndarray) -> tuple[str, float]:
        """Nearest-label lookup using the quantized codevectors."""
        sims = self.codebook.space.similarity_matrix(
            np.asarray(query)[np.newaxis, :], self.vectors
        )[0]
        best = int(np.argmax(sims))
        return self.labels[best], float(sims[best])
